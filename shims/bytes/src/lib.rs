//! Offline shim of `bytes::Bytes`: a cheaply cloneable, immutable byte
//! buffer. Static slices are kept borrowed; owned data is reference
//! counted.

use std::ops::Deref;
use std::sync::Arc;

/// Immutable reference-counted byte buffer.
#[derive(Clone)]
pub struct Bytes {
    repr: Repr,
}

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared(Arc<Vec<u8>>),
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes {
            repr: Repr::Static(&[]),
        }
    }

    /// Wraps a static slice without copying.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            repr: Repr::Static(bytes),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// Copies the contents into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        match &self.repr {
            Repr::Static(s) => s,
            Repr::Shared(v) => v.as_slice(),
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            repr: Repr::Shared(Arc::new(v)),
        }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_equality() {
        let a = Bytes::from_static(b"hello");
        let b = Bytes::from(String::from("hello"));
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        assert!(!a.is_empty());
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn deref_and_clone_share() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert_eq!(&a[..], &[1, 2, 3]);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
    }
}
