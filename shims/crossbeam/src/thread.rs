//! Scoped threads with the `crossbeam::thread` API shape, layered on
//! `std::thread::scope`. The one behavioural difference from `std` is
//! intentional: a panic in an unjoined child surfaces as an `Err` from
//! [`scope`] instead of propagating, matching crossbeam.

use std::any::Any;

/// Spawns scoped threads; returns `Err` with the panic payload if any
/// unjoined child panicked.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

/// A scope handle mirroring `crossbeam::thread::Scope`.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread; the closure receives the scope so it can
    /// spawn further threads (crossbeam's signature).
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        ScopedJoinHandle {
            inner: inner.spawn(move || f(&Scope { inner })),
        }
    }
}

/// Handle to a scoped thread.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<T> ScopedJoinHandle<'_, T> {
    /// Waits for the thread; `Err` carries the panic payload.
    pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
        self.inner.join()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_joins_and_returns() {
        let mut data = vec![0u32; 4];
        let out = scope(|s| {
            let mut handles = Vec::new();
            for (i, slot) in data.iter_mut().enumerate() {
                handles.push(s.spawn(move |_| {
                    *slot = i as u32 + 1;
                    i
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum::<usize>()
        })
        .unwrap();
        assert_eq!(out, 6);
        assert_eq!(data, vec![1, 2, 3, 4]);
    }

    #[test]
    fn unjoined_panic_becomes_err() {
        let r = scope(|s| {
            s.spawn(|_| panic!("child failed"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn joined_panic_is_contained() {
        let r = scope(|s| {
            let h = s.spawn(|_| panic!("contained"));
            h.join().is_err()
        });
        assert!(r.unwrap());
    }

    #[test]
    fn nested_spawn_from_child() {
        let r = scope(|s| {
            let h = s.spawn(|s2| {
                let inner = s2.spawn(|_| 21);
                inner.join().unwrap() * 2
            });
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(r, 42);
    }
}
