//! Offline shim of the `crossbeam` API subset this workspace uses:
//! MPMC channels (`crossbeam::channel`) and scoped threads
//! (`crossbeam::thread::scope`), built on `std` primitives.

pub mod channel;
pub mod thread;
