//! An unbounded MPMC channel with the `crossbeam-channel` API shape:
//! cloneable senders *and* receivers, blocking/timeout/non-blocking
//! receives, and a blocking iterator.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Error returned by [`Sender::send`] when all receivers are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Receiver::recv`] when the channel is empty and
/// all senders are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// Channel currently empty.
    Empty,
    /// Channel empty and all senders dropped.
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived within the timeout.
    Timeout,
    /// Channel empty and all senders dropped.
    Disconnected,
}

struct Inner<T> {
    queue: Mutex<VecDeque<T>>,
    ready: Condvar,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

impl<T> Inner<T> {
    fn disconnected(&self) -> bool {
        self.senders.load(Ordering::SeqCst) == 0
    }
}

/// The sending half; cloning adds another producer.
pub struct Sender<T> {
    inner: Arc<Inner<T>>,
}

impl<T> std::fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Sender { .. }")
    }
}

/// The receiving half; cloning adds another consumer.
pub struct Receiver<T> {
    inner: Arc<Inner<T>>,
}

impl<T> std::fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

/// Creates an unbounded MPMC channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let inner = Arc::new(Inner {
        queue: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
    });
    (
        Sender {
            inner: Arc::clone(&inner),
        },
        Receiver { inner },
    )
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.inner.senders.fetch_add(1, Ordering::SeqCst);
        Sender {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.inner.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Last sender gone: wake blocked receivers so they observe
            // the disconnect.
            let _guard = self.inner.queue.lock().unwrap();
            self.inner.ready.notify_all();
        }
    }
}

impl<T> Sender<T> {
    /// Enqueues `msg`; fails only when every receiver is gone.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        if self.inner.receivers.load(Ordering::SeqCst) == 0 {
            return Err(SendError(msg));
        }
        let mut queue = self.inner.queue.lock().unwrap();
        queue.push_back(msg);
        drop(queue);
        self.inner.ready.notify_one();
        Ok(())
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.inner.receivers.fetch_add(1, Ordering::SeqCst);
        Receiver {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.inner.receivers.fetch_sub(1, Ordering::SeqCst);
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives or all senders disconnect.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut queue = self.inner.queue.lock().unwrap();
        loop {
            if let Some(msg) = queue.pop_front() {
                return Ok(msg);
            }
            if self.inner.disconnected() {
                return Err(RecvError);
            }
            queue = self.inner.ready.wait(queue).unwrap();
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut queue = self.inner.queue.lock().unwrap();
        if let Some(msg) = queue.pop_front() {
            Ok(msg)
        } else if self.inner.disconnected() {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Blocks up to `timeout` for a message.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut queue = self.inner.queue.lock().unwrap();
        loop {
            if let Some(msg) = queue.pop_front() {
                return Ok(msg);
            }
            if self.inner.disconnected() {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (q, timed_out) = self
                .inner
                .ready
                .wait_timeout(queue, deadline - now)
                .unwrap();
            queue = q;
            if timed_out.timed_out() && queue.is_empty() {
                return if self.inner.disconnected() {
                    Err(RecvTimeoutError::Disconnected)
                } else {
                    Err(RecvTimeoutError::Timeout)
                };
            }
        }
    }

    /// Blocking iterator: yields until all senders disconnect.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }

    /// Non-blocking iterator: yields currently queued messages, then
    /// stops without waiting.
    pub fn try_iter(&self) -> TryIter<'_, T> {
        TryIter { receiver: self }
    }
}

/// Blocking iterator over received messages.
pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

/// Non-blocking iterator over currently queued messages.
pub struct TryIter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for TryIter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.receiver.try_recv().ok()
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;

    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_order() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_on_sender_drop() {
        let (tx, rx) = unbounded::<u32>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn timeout_elapses() {
        let (_tx, rx) = unbounded::<u32>();
        let r = rx.recv_timeout(Duration::from_millis(10));
        assert_eq!(r, Err(RecvTimeoutError::Timeout));
    }

    #[test]
    fn multi_consumer_covers_all_items() {
        let (tx, rx) = unbounded::<u32>();
        let rx2 = rx.clone();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let h = std::thread::spawn(move || rx2.iter().count());
        let a = rx.iter().count();
        let b = h.join().unwrap();
        assert_eq!(a + b, 100);
    }

    #[test]
    fn iter_drains_then_stops() {
        let (tx, rx) = unbounded::<u32>();
        let producer = std::thread::spawn(move || {
            for i in 0..50 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<u32> = rx.iter().collect();
        producer.join().unwrap();
        assert_eq!(got.len(), 50);
    }
}
