//! Offline shim of the small `rand` 0.8 API surface this workspace uses.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a minimal, deterministic implementation: a
//! xoshiro256++ generator behind the familiar `StdRng` / `SeedableRng` /
//! `Rng` names. Streams differ from upstream `rand` (no test in this
//! repository depends on upstream's exact output), but all the
//! determinism guarantees — same seed, same stream — hold.

pub mod rngs {
    pub use crate::xoshiro::StdRng;
}

mod xoshiro {
    use crate::{RngCore, SeedableRng};

    /// xoshiro256++ PRNG seeded via SplitMix64 — the workspace's
    /// stand-in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Raw 64-bit generator interface.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform `f64` in `[0, 1)` with 53 random bits.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction (`rand::SeedableRng` subset).
pub trait SeedableRng: Sized {
    /// Deterministically builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their "standard" domain
/// (`rng.gen::<T>()`): `[0, 1)` for floats, the full domain for
/// integers and `bool`.
pub trait SampleStandard {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl SampleStandard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleStandard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}

impl SampleStandard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64() as f32
    }
}

impl SampleStandard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types with a uniform sampler over an interval. Implementing this
/// (rather than per-type `SampleRange` impls) keeps type inference
/// flowing through `gen_range(0..n)` the way upstream `rand` does.
pub trait Uniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_exclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl Uniform for $t {
            fn sample_exclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl Uniform for $t {
            fn sample_exclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "empty gen_range");
                lo + (rng.next_f64() as $t) * (hi - lo)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "empty gen_range");
                lo + (rng.next_f64() as $t) * (hi - lo)
            }
        }
    )*};
}
uniform_float!(f32, f64);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: Uniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_exclusive(self.start, self.end, rng)
    }
}

impl<T: Uniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// Convenience sampling methods (`rand::Rng` subset).
pub trait Rng: RngCore {
    /// One value over `T`'s standard domain.
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample(self)
    }

    /// One value uniform over `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        self.next_f64() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0..3.5f64);
            assert!((-2.0..3.5).contains(&f));
            let i = rng.gen_range(-1i64..=1);
            assert!((-1..=1).contains(&i));
        }
    }

    #[test]
    fn unit_floats() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.7)).count();
        assert!((6_500..7_500).contains(&hits), "got {hits}");
    }
}
