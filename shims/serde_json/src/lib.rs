//! Offline shim of the `serde_json` writer API this workspace uses:
//! [`to_string`] and [`to_string_pretty`] over the in-tree serde shim.

use serde::{Emitter, Serialize};

/// Serialization error type kept for API parity (the shim writer is
/// infallible, so this is never constructed).
#[derive(Debug)]
pub struct Error(());

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde_json shim error")
    }
}

impl std::error::Error for Error {}

/// Compact JSON for `value`.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut e = Emitter::new(false);
    value.serialize(&mut e);
    Ok(e.into_string())
}

/// Pretty-printed (two-space indented) JSON for `value`.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut e = Emitter::new(true);
    value.serialize(&mut e);
    Ok(e.into_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(serde::Serialize)]
    struct Point {
        x: u32,
        y: f64,
        label: String,
    }

    #[derive(serde::Serialize)]
    struct Wrapper(u64);

    #[test]
    fn derived_struct_round_trip() {
        let p = Point {
            x: 3,
            y: 1.25,
            label: "hi".into(),
        };
        assert_eq!(
            to_string(&p).unwrap(),
            "{\"x\":3,\"y\":1.25,\"label\":\"hi\"}"
        );
    }

    #[test]
    fn newtype_is_transparent() {
        assert_eq!(to_string(&Wrapper(9)).unwrap(), "9");
    }

    #[test]
    fn pretty_output_is_indented() {
        let p = Point {
            x: 1,
            y: 2.0,
            label: "a".into(),
        };
        let s = to_string_pretty(&p).unwrap();
        assert!(s.contains("\n  \"x\": 1"), "got: {s}");
        assert!(s.ends_with('}'));
    }

    #[test]
    fn nested_vectors() {
        #[derive(serde::Serialize)]
        struct Batch {
            items: Vec<Point>,
        }
        let b = Batch {
            items: vec![Point {
                x: 1,
                y: 0.5,
                label: "p".into(),
            }],
        };
        assert_eq!(
            to_string(&b).unwrap(),
            "{\"items\":[{\"x\":1,\"y\":0.5,\"label\":\"p\"}]}"
        );
    }
}
