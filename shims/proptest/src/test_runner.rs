//! Test-runner configuration and failing-case reporting.

/// Configuration for a `proptest!` block (`proptest::test_runner`
/// subset).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; the shim trims that to keep the
        // engine-level property tests fast while still exercising many
        // inputs.
        ProptestConfig { cases: 64 }
    }
}

/// Prints the generated inputs if the case body panics (the shim's
/// replacement for proptest's shrink-and-report machinery).
pub struct CaseGuard {
    description: String,
    armed: bool,
}

impl CaseGuard {
    /// Arms a guard describing the current case.
    pub fn new(description: String) -> Self {
        CaseGuard {
            description,
            armed: true,
        }
    }

    /// Disarms the guard — the case passed.
    pub fn disarm(mut self) {
        self.armed = false;
    }
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if self.armed {
            eprintln!("proptest shim failing {}", self.description);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_cases() {
        assert_eq!(ProptestConfig::with_cases(7).cases, 7);
        assert_eq!(ProptestConfig::default().cases, 64);
    }
}
