//! Offline shim of the `proptest` subset this workspace's property
//! tests use: the `proptest!` macro, `prop_assert*` macros, range and
//! collection strategies, and a tiny `[class]{m,n}` string-pattern
//! strategy. Cases are generated from a deterministic per-test seed
//! (derived from the test name), so failures reproduce; there is no
//! shrinking — the failing inputs are printed instead.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! The glob-import surface mirroring `proptest::prelude`.
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    pub mod prop {
        //! Mirrors `proptest::prelude::prop`.
        pub use crate::collection;
    }
}

/// FNV-1a hash of a test name, used as the base RNG seed so each test
/// explores its own deterministic stream.
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The `proptest!` macro: runs each contained test function over
/// `cases` deterministic random inputs drawn from its strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg); $($rest)*);
    };
    (@run ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let __base = $crate::seed_for(stringify!($name));
                for __case in 0..__cfg.cases {
                    let mut __rng = <::rand::rngs::StdRng as ::rand::SeedableRng>::seed_from_u64(
                        __base ^ (__case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    let __dbg = format!(
                        concat!("case ", "{}", $(" ", stringify!($arg), "={:?}",)+),
                        __case $(, $arg)+
                    );
                    let __guard = $crate::test_runner::CaseGuard::new(__dbg);
                    // The body runs in a closure so `prop_assume!` can
                    // skip the case with an early return.
                    #[allow(clippy::redundant_closure_call)]
                    (|| { $body })();
                    __guard.disarm();
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// `prop_assume!`: skips the current case when the assumption does not
/// hold (the shim discards it without counting).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// `prop_assert!`: assertion that reports the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// `prop_assert_eq!`: equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+);
    };
}

/// `prop_assert_ne!`: inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn ranges_generate_in_bounds(x in 2u32..10, f in -1.0..1.0f64) {
            prop_assert!((2..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_strategy_respects_len(v in prop::collection::vec(0u64..5, 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn string_pattern_strategy(s in "[a-c0-1 ]{0,12}") {
            prop_assert!(s.len() <= 12);
            prop_assert!(s.chars().all(|c| "abc01 ".contains(c)));
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(v in prop::collection::vec(
            prop::collection::vec(-5.0..5.0f64, 1..4), 1..4))
        {
            prop_assert!(!v.is_empty());
        }
    }

    #[test]
    fn seeds_differ_per_name() {
        assert_ne!(crate::seed_for("a"), crate::seed_for("b"));
        assert_eq!(crate::seed_for("a"), crate::seed_for("a"));
    }
}
