//! The [`Strategy`] trait and the range / string-pattern strategies.

use rand::rngs::StdRng;
use rand::Rng;

/// A generator of random values for one `proptest!` argument.
pub trait Strategy {
    /// The produced type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+)),* $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy!(
    (A / 0, B / 1),
    (A / 0, B / 1, C / 2),
    (A / 0, B / 1, C / 2, D / 3),
);

impl Strategy for bool {
    type Value = bool;

    fn generate(&self, rng: &mut StdRng) -> bool {
        // Mirrors proptest's `any::<bool>()` spirit: the literal is a
        // constant strategy.
        let _ = rng;
        *self
    }
}

/// String pattern strategy: supports the `[class]{m,n}` shape (char
/// class with ranges and literals, bounded repetition) that this
/// workspace's tests use; anything else panics with a clear message.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        let (alphabet, min, max) = parse_pattern(self)
            .unwrap_or_else(|| panic!("unsupported string pattern strategy: {self:?}"));
        let len = rng.gen_range(min..=max);
        (0..len)
            .map(|_| alphabet[rng.gen_range(0..alphabet.len())])
            .collect()
    }
}

fn parse_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class = &rest[..close];
    let rep = &rest[close + 1..];

    let mut alphabet = Vec::new();
    let chars: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            let (lo, hi) = (chars[i], chars[i + 2]);
            if lo > hi {
                return None;
            }
            for c in lo..=hi {
                alphabet.push(c);
            }
            i += 3;
        } else {
            alphabet.push(chars[i]);
            i += 1;
        }
    }
    if alphabet.is_empty() {
        return None;
    }

    let (min, max) = if rep.is_empty() {
        (1, 1)
    } else {
        let body = rep.strip_prefix('{')?.strip_suffix('}')?;
        match body.split_once(',') {
            Some((lo, hi)) => (lo.trim().parse().ok()?, hi.trim().parse().ok()?),
            None => {
                let n = body.trim().parse().ok()?;
                (n, n)
            }
        }
    };
    (min <= max).then_some((alphabet, min, max))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn pattern_parsing() {
        let (alpha, lo, hi) = parse_pattern("[a-c]{2,4}").unwrap();
        assert_eq!(alpha, vec!['a', 'b', 'c']);
        assert_eq!((lo, hi), (2, 4));
        let (alpha, lo, hi) = parse_pattern("[xy ]").unwrap();
        assert_eq!(alpha, vec!['x', 'y', ' ']);
        assert_eq!((lo, hi), (1, 1));
        assert!(parse_pattern("no-class").is_none());
    }

    #[test]
    fn range_strategies_generate() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let v = (5u64..9).generate(&mut rng);
            assert!((5..9).contains(&v));
            let f = (0.0..=1.0f64).generate(&mut rng);
            assert!((0.0..=1.0).contains(&f));
        }
    }
}
