//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// Length specification for [`vec()`]: a fixed size or a half-open range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Exclusive.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n + 1 }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec size range");
        SizeRange {
            min: *r.start(),
            max: *r.end() + 1,
        }
    }
}

/// Strategy producing `Vec`s whose elements come from `element` and
/// whose length lies in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.min..self.size.max);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn nested_vec_lengths() {
        let strat = vec(vec(0u32..3, 1..4), 2..5);
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..50 {
            let v = strat.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            for inner in v {
                assert!((1..4).contains(&inner.len()));
                assert!(inner.iter().all(|&x| x < 3));
            }
        }
    }

    #[test]
    fn fixed_size() {
        let strat = vec(0u8..10, 4usize);
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(strat.generate(&mut rng).len(), 4);
    }
}
