//! Offline shim of the `serde` serialization surface this workspace
//! uses. It is JSON-oriented by design: [`Serialize`] writes straight
//! into an [`Emitter`] that `serde_json::to_string{,_pretty}` drives.
//! `#[derive(Serialize)]` (from the sibling in-tree `serde_derive`
//! proc-macro) covers structs with named fields; enums and special
//! shapes implement [`Serialize`] by hand.

pub use serde_derive::Serialize;

use std::collections::{BTreeMap, HashMap};

/// A value serializable to JSON.
pub trait Serialize {
    /// Writes `self` into `out`.
    fn serialize(&self, out: &mut Emitter);
}

/// A streaming JSON writer with optional pretty-printing.
#[derive(Debug)]
pub struct Emitter {
    buf: String,
    pretty: bool,
    depth: usize,
    /// Stack entry = "current container already has an element".
    has_elem: Vec<bool>,
}

impl Emitter {
    /// Creates a writer; `pretty` enables two-space indentation.
    pub fn new(pretty: bool) -> Self {
        Emitter {
            buf: String::new(),
            pretty,
            depth: 0,
            has_elem: Vec::new(),
        }
    }

    /// The JSON produced so far.
    pub fn into_string(self) -> String {
        self.buf
    }

    fn newline_indent(&mut self) {
        if self.pretty {
            self.buf.push('\n');
            for _ in 0..self.depth {
                self.buf.push_str("  ");
            }
        }
    }

    fn elem_separator(&mut self) {
        if let Some(has) = self.has_elem.last_mut() {
            if *has {
                self.buf.push(',');
            }
            *has = true;
        }
        if self.depth > 0 {
            self.newline_indent();
        }
    }

    /// Starts a JSON object.
    pub fn begin_object(&mut self) {
        self.buf.push('{');
        self.depth += 1;
        self.has_elem.push(false);
    }

    /// Emits an object key; the caller serializes the value next.
    pub fn field(&mut self, name: &str) {
        self.elem_separator();
        self.string(name);
        self.buf.push(':');
        if self.pretty {
            self.buf.push(' ');
        }
    }

    /// Closes the current object.
    pub fn end_object(&mut self) {
        let had = self.has_elem.pop().unwrap_or(false);
        self.depth -= 1;
        if had {
            self.newline_indent();
        }
        self.buf.push('}');
    }

    /// Starts a JSON array.
    pub fn begin_array(&mut self) {
        self.buf.push('[');
        self.depth += 1;
        self.has_elem.push(false);
    }

    /// Marks the start of the next array element.
    pub fn element(&mut self) {
        self.elem_separator();
    }

    /// Closes the current array.
    pub fn end_array(&mut self) {
        let had = self.has_elem.pop().unwrap_or(false);
        self.depth -= 1;
        if had {
            self.newline_indent();
        }
        self.buf.push(']');
    }

    /// Emits a JSON string with escaping.
    pub fn string(&mut self, s: &str) {
        self.buf.push('"');
        for c in s.chars() {
            match c {
                '"' => self.buf.push_str("\\\""),
                '\\' => self.buf.push_str("\\\\"),
                '\n' => self.buf.push_str("\\n"),
                '\r' => self.buf.push_str("\\r"),
                '\t' => self.buf.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    self.buf.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => self.buf.push(c),
            }
        }
        self.buf.push('"');
    }

    /// Emits a finite float (non-finite values become `null`, as
    /// `serde_json` has no representation for them).
    pub fn float(&mut self, v: f64) {
        if v.is_finite() {
            let s = format!("{v}");
            self.buf.push_str(&s);
            // Keep floats recognisable as floats.
            if !s.contains(['.', 'e', 'E']) {
                self.buf.push_str(".0");
            }
        } else {
            self.buf.push_str("null");
        }
    }

    /// Emits raw text already known to be valid JSON (numbers, bools).
    pub fn raw(&mut self, s: &str) {
        self.buf.push_str(s);
    }
}

macro_rules! serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self, out: &mut Emitter) {
                out.raw(&self.to_string());
            }
        }
    )*};
}
serialize_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn serialize(&self, out: &mut Emitter) {
        out.raw(if *self { "true" } else { "false" });
    }
}

impl Serialize for f64 {
    fn serialize(&self, out: &mut Emitter) {
        out.float(*self);
    }
}

impl Serialize for f32 {
    fn serialize(&self, out: &mut Emitter) {
        out.float(*self as f64);
    }
}

impl Serialize for str {
    fn serialize(&self, out: &mut Emitter) {
        out.string(self);
    }
}

impl Serialize for String {
    fn serialize(&self, out: &mut Emitter) {
        out.string(self);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self, out: &mut Emitter) {
        (**self).serialize(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self, out: &mut Emitter) {
        match self {
            Some(v) => v.serialize(out),
            None => out.raw("null"),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self, out: &mut Emitter) {
        self.as_slice().serialize(out);
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self, out: &mut Emitter) {
        out.begin_array();
        for v in self {
            out.element();
            v.serialize(out);
        }
        out.end_array();
    }
}

impl<K: AsRef<str>, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self, out: &mut Emitter) {
        out.begin_object();
        for (k, v) in self {
            out.field(k.as_ref());
            v.serialize(out);
        }
        out.end_object();
    }
}

impl<K: AsRef<str> + Ord, V: Serialize> Serialize for HashMap<K, V> {
    fn serialize(&self, out: &mut Emitter) {
        // Deterministic output: sort keys.
        let mut entries: Vec<(&K, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        out.begin_object();
        for (k, v) in entries {
            out.field(k.as_ref());
            v.serialize(out);
        }
        out.end_object();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn to_json<T: Serialize>(v: &T) -> String {
        let mut e = Emitter::new(false);
        v.serialize(&mut e);
        e.into_string()
    }

    #[test]
    fn scalars() {
        assert_eq!(to_json(&3u32), "3");
        assert_eq!(to_json(&-4i64), "-4");
        assert_eq!(to_json(&true), "true");
        assert_eq!(to_json(&1.5f64), "1.5");
        assert_eq!(to_json(&2.0f64), "2.0");
        assert_eq!(to_json(&f64::NAN), "null");
        assert_eq!(to_json(&"a\"b\n"), "\"a\\\"b\\n\"");
    }

    #[test]
    fn containers() {
        assert_eq!(to_json(&vec![1u32, 2, 3]), "[1,2,3]");
        assert_eq!(to_json(&Option::<u32>::None), "null");
        assert_eq!(to_json(&Some(7u32)), "7");
        let mut m = BTreeMap::new();
        m.insert("b", 2u32);
        m.insert("a", 1u32);
        assert_eq!(to_json(&m), "{\"a\":1,\"b\":2}");
    }
}
