//! Offline shim of the `parking_lot` API subset this workspace uses:
//! `Mutex` and `RwLock` whose guards come back without a poison
//! `Result`. Built on `std::sync`; a poisoned std lock is transparently
//! recovered (parking_lot has no poisoning at all).

use std::sync::PoisonError;

/// Mutual exclusion with parking_lot's `lock() -> guard` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard for [`Mutex`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wraps `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Reader-writer lock with parking_lot's `read()`/`write()` signatures.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wraps `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, blocking.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires the exclusive write guard, blocking.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn mutex_usable_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(1);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
