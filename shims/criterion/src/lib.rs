//! Offline shim of the `criterion` API subset this workspace's
//! benchmarks use: `Criterion::bench_function`, `Bencher::iter`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros.
//! Measurement is a simple calibrated loop reporting mean ns/iter —
//! enough to compare orders of magnitude, with no statistics engine.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs `f` as the benchmark `id` and prints its mean time.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        // Calibrate: grow the iteration count until the measured window
        // is long enough to mean something.
        loop {
            b.elapsed = Duration::ZERO;
            f(&mut b);
            if b.elapsed >= Duration::from_millis(50) || b.iters >= 1 << 24 {
                break;
            }
            b.iters = (b.iters * 4).min(1 << 24);
        }
        let ns = b.elapsed.as_nanos() as f64 / b.iters as f64;
        println!("bench {id}: {ns:.1} ns/iter ({} iters)", b.iters);
        self
    }
}

/// Timing harness handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` over the calibrated iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declares a benchmark group function (criterion API shape).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut ran = false;
        c.bench_function("noop", |b| {
            ran = true;
            b.iter(|| 1 + 1)
        });
        assert!(ran);
    }
}
