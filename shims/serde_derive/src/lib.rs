//! `#[derive(Serialize)]` for the in-tree serde shim, written against
//! raw `proc_macro` tokens (the offline build has no syn/quote).
//!
//! Supported shapes:
//! * structs with named fields → JSON objects;
//! * newtype structs → the inner value;
//! * tuple structs → JSON arrays;
//! * enums whose variants are all unit variants → the variant name as a
//!   JSON string.
//!
//! Generics and `where` clauses are not supported — every serializable
//! type in this workspace is concrete. Unsupported inputs produce a
//! `compile_error!` naming the limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match expand(input) {
        Ok(out) => out,
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

fn expand(input: TokenStream) -> Result<TokenStream, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes (`#[...]`) and visibility.
    skip_attrs_and_vis(&tokens, &mut i);

    let kind = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => "struct",
        Some(TokenTree::Ident(id)) if id.to_string() == "enum" => "enum",
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;

    let name = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;

    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "derive(Serialize) shim does not support generics on `{name}`"
        ));
    }

    let body = match kind {
        "struct" => match &tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                named_struct_body(&name, g.stream())?
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                tuple_struct_body(g.stream())
            }
            _ => return Err(format!("unsupported struct shape for `{name}`")),
        },
        _ => match &tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                unit_enum_body(&name, g.stream())?
            }
            other => return Err(format!("expected enum body for `{name}`, found {other:?}")),
        },
    };

    let out = format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize(&self, out: &mut ::serde::Emitter) {{\n{body}\n}}\n\
         }}"
    );
    out.parse()
        .map_err(|e| format!("derive(Serialize) generated invalid code: {e:?}"))
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` + bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // `pub(crate)` etc.
                }
            }
            _ => return,
        }
    }
}

/// Field names of a named-field struct body.
fn field_names(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut names = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let name = match &tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected field name, found {other:?}")),
        };
        i += 1;
        match &tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected `:` after `{name}`, found {other:?}")),
        }
        names.push(name);
        // Skip the type: consume until a top-level `,` (angle brackets
        // tracked so `HashMap<K, V>` commas don't split the field).
        let mut angle = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    Ok(names)
}

fn named_struct_body(name: &str, body: TokenStream) -> Result<String, String> {
    let fields = field_names(body)?;
    if fields.is_empty() {
        return Err(format!("`{name}` has no fields to serialize"));
    }
    let mut out = String::from("out.begin_object();\n");
    for f in &fields {
        out.push_str(&format!(
            "out.field({f:?});\n::serde::Serialize::serialize(&self.{f}, out);\n"
        ));
    }
    out.push_str("out.end_object();");
    Ok(out)
}

fn tuple_struct_body(body: TokenStream) -> String {
    // Count top-level comma-separated fields.
    let mut angle = 0i32;
    let mut count = 0usize;
    let mut saw_any = false;
    for t in body.into_iter() {
        saw_any = true;
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => count += 1,
            _ => {}
        }
    }
    let fields = if saw_any { count + 1 } else { 0 };
    if fields == 1 {
        // Newtype: serialize transparently.
        "::serde::Serialize::serialize(&self.0, out);".to_string()
    } else {
        let mut out = String::from("out.begin_array();\n");
        for i in 0..fields {
            out.push_str(&format!(
                "out.element();\n::serde::Serialize::serialize(&self.{i}, out);\n"
            ));
        }
        out.push_str("out.end_array();");
        out
    }
}

fn unit_enum_body(name: &str, body: TokenStream) -> Result<String, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let variant = match &tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => {
                return Err(format!(
                    "expected variant name in `{name}`, found {other:?}"
                ))
            }
        };
        i += 1;
        match &tokens.get(i) {
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            _ => {
                return Err(format!(
                    "derive(Serialize) shim supports only unit variants; `{name}::{variant}` carries data"
                ))
            }
        }
        variants.push(variant);
    }
    if variants.is_empty() {
        return Err(format!("`{name}` has no variants"));
    }
    let mut out = String::from("match self {\n");
    for v in &variants {
        out.push_str(&format!("{name}::{v} => out.string({v:?}),\n"));
    }
    out.push('}');
    Ok(out)
}
