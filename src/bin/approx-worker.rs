//! The workspace's worker binary for the process backend.
//!
//! `approxhadoop run/serve/loadtest --backend process` starts `--workers N`
//! copies of this binary (resolved as a sibling of the CLI executable)
//! and dispatches map attempts to them over the pipe protocol. Every
//! job the process backend can run must be registered here by name —
//! the worker is a separate address space, so closures cannot cross;
//! only the job name and its `Wire`-encoded parameters do.

use approxhadoop::core::multistage::MultiStageMapper;
use approxhadoop::runtime::engine::process::{worker_main, JobRegistry};
use approxhadoop::workloads::join;
use approxhadoop::workloads::wikilog::LogEntry;

fn main() {
    let mut registry = JobRegistry::new();

    // The cross-crate differential suite: f64 values keyed mod 5,
    // shuffled as per-key `KeyStat` sums for the Eq. 1–3 estimators.
    registry.register("multistage-mod5-sum", |_params: &[u8]| {
        Ok(MultiStageMapper::new(
            |x: &f64, emit: &mut dyn FnMut(u8, f64)| emit((*x as u64 % 5) as u8, *x),
        ))
    });

    // Per-project byte totals over the synthetic Wikipedia access log —
    // the job `serve`/`loadtest` submit for every tenant.
    registry.register("wikilog-project-bytes", |_params: &[u8]| {
        Ok(MultiStageMapper::new(
            |e: &LogEntry, emit: &mut dyn FnMut(u64, f64)| emit(e.project, e.bytes as f64),
        ))
    });

    // The wikilog applications `approxhadoop run --backend process`
    // dispatches (same map functions as `workloads::apps`).
    registry.register("project-popularity", |_params: &[u8]| {
        Ok(MultiStageMapper::new(
            |e: &LogEntry, emit: &mut dyn FnMut(u64, f64)| emit(e.project, 1.0),
        ))
    });
    registry.register("page-popularity", |_params: &[u8]| {
        Ok(MultiStageMapper::new(
            |e: &LogEntry, emit: &mut dyn FnMut(u64, f64)| emit(e.page, 1.0),
        ))
    });
    registry.register("request-rate", |_params: &[u8]| {
        Ok(MultiStageMapper::new(
            |e: &LogEntry, emit: &mut dyn FnMut(u64, f64)| emit(e.timestamp / 3_600, 1.0),
        ))
    });
    registry.register("page-traffic", |_params: &[u8]| {
        Ok(MultiStageMapper::new(
            |e: &LogEntry, emit: &mut dyn FnMut(u64, f64)| emit(e.page, e.bytes as f64),
        ))
    });

    // The two-input join: the params blob carries the Wire-encoded
    // `PageCatalog`, from which the worker rebuilds a bit-identical
    // Bloom filter on its side of the process boundary.
    join::register_join_job(&mut registry);

    worker_main(registry);
}
