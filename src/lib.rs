//! ApproxHadoop-RS — approximation-enabled MapReduce with rigorous error
//! bounds.
//!
//! This is the facade crate of the workspace; it re-exports the public
//! API of every subsystem. See the README for a tour and `DESIGN.md` for
//! the system inventory.
//!
//! * [`stats`] — multi-stage sampling theory, extreme value theory,
//!   distributions, optimisers, samplers.
//! * [`obs`] — metrics registry, tracer and the live HTTP exporter.
//! * [`ipc`] — the `Wire` encoding and framed pipe protocol.
//! * [`dfs`] — the block-structured storage substrate.
//! * [`runtime`] — the multi-threaded MapReduce engine.
//! * [`core`] — the approximation mechanisms and error-bounded templates
//!   (the paper's contribution).
//! * [`cluster`] — the discrete-event cluster simulator (timing/energy).
//! * [`server`] — the multi-tenant job service: shared slot pool,
//!   weighted fair sharing, load-adaptive admission control.
//! * [`workloads`] — synthetic data generators and the paper's
//!   applications.

#![forbid(unsafe_code)]

pub use approxhadoop_cluster as cluster;
pub use approxhadoop_core as core;
pub use approxhadoop_dfs as dfs;
pub use approxhadoop_ipc as ipc;
pub use approxhadoop_obs as obs;
pub use approxhadoop_runtime as runtime;
pub use approxhadoop_server as server;
pub use approxhadoop_stats as stats;
pub use approxhadoop_workloads as workloads;
