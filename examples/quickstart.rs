//! Quickstart: the paper's ApproxWordCount (Figures 3 & 4).
//!
//! Counts word occurrences across a synthetic document corpus stored on
//! the in-process DFS, three ways:
//!
//! 1. precisely;
//! 2. with user-specified ratios (drop 25% of maps, sample 10% of lines);
//! 3. with a target error bound of ±2% at 95% confidence — ApproxHadoop
//!    picks the ratios itself.
//!
//! Run with: `cargo run --release --example quickstart`

use approxhadoop::core::job::AggregationJob;
use approxhadoop::core::spec::ApproxSpec;
use approxhadoop::dfs::{DfsCluster, DfsConfig};
use approxhadoop::runtime::engine::JobConfig;
use approxhadoop::runtime::text::TextSource;

fn main() {
    // A small synthetic corpus: Zipf-ish word frequencies.
    let words = [
        "ipsum", "lorem", "sit", "nisi", "ut", "laboris", "dolor", "amet",
    ];
    let lines: Vec<String> = (0..60_000)
        .map(|i| {
            (0..8)
                .map(|j| {
                    let r = (i * 31 + j * 17) % 64;
                    // Lower-index words appear far more often.
                    let w = if r < 24 {
                        0
                    } else {
                        (r as usize / 8) % words.len()
                    };
                    words[w]
                })
                .collect::<Vec<_>>()
                .join(" ")
        })
        .collect();

    // Store it on the DFS: 60 blocks of 1 000 lines.
    let mut dfs = DfsCluster::new(DfsConfig {
        datanodes: 4,
        replication: 2,
        block_records: 1_000,
    });
    dfs.write_lines("corpus", &lines).expect("write corpus");
    let input = TextSource::open(&dfs, "corpus").expect("open corpus");

    let config = JobConfig {
        reduce_tasks: 2,
        ..Default::default()
    };

    let word_count = |line: &String, emit: &mut dyn FnMut(String, f64)| {
        for w in line.split_whitespace() {
            emit(w.to_string(), 1.0);
        }
    };

    println!(
        "== ApproxWordCount ({} lines, {} blocks) ==\n",
        lines.len(),
        60
    );

    // 1. Precise.
    let precise = AggregationJob::count(word_count)
        .spec(ApproxSpec::Precise)
        .config(config.clone())
        .run(&input)
        .expect("precise job");
    println!(
        "precise ({:.2}s, {} maps):",
        precise.metrics.wall_secs, precise.metrics.executed_maps
    );
    for (w, iv) in &precise.outputs {
        println!("  {w:8} {:>9.0}", iv.estimate);
    }

    // 2. User-specified ratios: drop 25% of maps, sample 10% of lines.
    let ratios = AggregationJob::count(word_count)
        .spec(ApproxSpec::ratios(0.25, 0.10))
        .config(config.clone())
        .run(&input)
        .expect("ratio job");
    println!(
        "\ndrop 25% + sample 10% ({:.2}s, {} maps executed, {} dropped):",
        ratios.metrics.wall_secs, ratios.metrics.executed_maps, ratios.metrics.dropped_maps
    );
    for (w, iv) in &ratios.outputs {
        let truth = precise
            .outputs
            .iter()
            .find(|(pw, _)| pw == w)
            .map(|(_, piv)| piv.estimate)
            .unwrap_or(0.0);
        println!(
            "  {w:8} {:>9.0} ± {:>7.0}  (actual error {:.2}%)",
            iv.estimate,
            iv.half_width,
            iv.actual_error(truth) * 100.0
        );
    }

    // 3. Target error bound: ±2% at 95% confidence.
    let target = AggregationJob::count(word_count)
        .spec(ApproxSpec::target(0.02, 0.95))
        .config(config)
        .run(&input)
        .expect("target job");
    println!(
        "\ntarget ±2% @95% ({:.2}s, {} maps executed, {} dropped, sampling ratio {:.2}):",
        target.metrics.wall_secs,
        target.metrics.executed_maps,
        target.metrics.dropped_maps + target.metrics.killed_maps,
        target.metrics.effective_sampling_ratio()
    );
    for (w, iv) in &target.outputs {
        println!(
            "  {w:8} {:>9.0} ± {:>7.0}  (bound {:.2}%)",
            iv.estimate,
            iv.half_width,
            iv.relative_error() * 100.0
        );
    }
}
