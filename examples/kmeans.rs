//! K-means with input-data sampling (user-defined quality metric).
//!
//! Runs Lloyd's algorithm as repeated MapReduce jobs over synthetic
//! document vectors, sweeping the per-block sampling ratio. The quality
//! metric is inertia (total squared distance to assigned centroids),
//! compared against the sequential precise baseline.
//!
//! Run with: `cargo run --release --example kmeans`

use approxhadoop::runtime::engine::JobConfig;
use approxhadoop::workloads::apps::kmeans;
use approxhadoop::workloads::kmeans::{lloyd_baseline, DocVectors};

fn main() {
    let data = DocVectors {
        points: 60_000,
        points_per_block: 2_000,
        dims: 8,
        true_clusters: 6,
        seed: 11,
    };
    let k = 6;
    let iterations = 8;
    let config = JobConfig::default();

    println!(
        "== K-Means: {} points, k={k}, {iterations} iterations ==\n",
        data.points
    );

    let (_, baseline) = lloyd_baseline(&data, k, iterations);
    println!("sequential baseline inertia: {baseline:.0}\n");

    println!(
        "{:>9} | {:>8} | {:>12} | {:>10}",
        "sample%", "time(s)", "inertia", "vs base%"
    );
    for ratio in [1.0, 0.5, 0.25, 0.1, 0.05, 0.01] {
        let start = std::time::Instant::now();
        let r = kmeans(&data, k, iterations, ratio, config.clone()).expect("kmeans job");
        println!(
            "{:>8.0}% | {:>8.2} | {:>12.0} | {:>+9.2}%",
            ratio * 100.0,
            start.elapsed().as_secs_f64(),
            r.inertia,
            (r.inertia - baseline) / baseline * 100.0
        );
    }
    println!("\n(sampling a few percent of points still recovers near-baseline clusters)");
}
