//! Wikipedia log analytics with a target error bound (paper Figure 9a).
//!
//! Computes Project Popularity over a synthetic Wikipedia access log,
//! sweeping the target error bound and reporting how much work
//! ApproxHadoop saves while always meeting the bound.
//!
//! Run with: `cargo run --release --example wiki_popularity`

use approxhadoop::core::spec::ApproxSpec;
use approxhadoop::runtime::engine::JobConfig;
use approxhadoop::workloads::apps::project_popularity;
use approxhadoop::workloads::wikilog::WikiLog;

fn main() {
    let log = WikiLog {
        days: 7,
        entries_per_block: 8_000,
        blocks_per_day: 12,
        pages: 200_000,
        projects: 500,
        seed: 42,
    };
    let config = JobConfig {
        map_slots: 8,
        reduce_tasks: 2,
        ..Default::default()
    };

    println!(
        "== Project Popularity: {} blocks x {} entries ==\n",
        log.num_blocks(),
        log.entries_per_block
    );

    let precise = project_popularity(&log, ApproxSpec::Precise, config.clone()).expect("precise");
    let truth_en = precise
        .outputs
        .iter()
        .find(|(k, _)| *k == 1)
        .unwrap()
        .1
        .estimate;
    println!(
        "precise: {:.2}s, {} maps, en-project accesses = {:.0}\n",
        precise.metrics.wall_secs, precise.metrics.executed_maps, truth_en
    );

    println!(
        "{:>8} | {:>8} | {:>5} | {:>7} | {:>9} | {:>9}",
        "target%", "time(s)", "maps", "sample", "bound%", "actual%"
    );
    for target in [0.001, 0.005, 0.01, 0.02, 0.05, 0.10] {
        let r = project_popularity(&log, ApproxSpec::target(target, 0.95), config.clone())
            .expect("target job");
        let est = r.outputs.iter().find(|(k, _)| *k == 1).map(|(_, iv)| *iv);
        let (bound, actual) = est
            .map(|iv| {
                (
                    iv.relative_error() * 100.0,
                    iv.actual_error(truth_en) * 100.0,
                )
            })
            .unwrap_or((f64::NAN, f64::NAN));
        println!(
            "{:>7.1}% | {:>8.2} | {:>5} | {:>6.1}% | {:>8.3}% | {:>8.3}%",
            target * 100.0,
            r.metrics.wall_secs,
            r.metrics.executed_maps,
            r.metrics.effective_sampling_ratio() * 100.0,
            bound,
            actual
        );
    }
    println!("\n(bound% is the worst-key 95% confidence interval; it never exceeds target%)");
}
