//! Datacenter placement with GEV error bounds (paper Figure 8).
//!
//! Each map task runs independent simulated-annealing searches for the
//! cheapest placement of datacenters under a latency constraint; the
//! reduce fits a GEV to the per-map minima and estimates the true
//! minimum with a confidence interval. Dropping maps trades search
//! effort for wider intervals.
//!
//! Run with: `cargo run --release --example dc_placement`

use approxhadoop::core::spec::ApproxSpec;
use approxhadoop::runtime::engine::JobConfig;
use approxhadoop::workloads::apps::dc_placement;
use approxhadoop::workloads::dcgrid::{AnnealConfig, Grid};

fn main() {
    let grid = Grid::us_like(16, 7);
    let anneal = AnnealConfig {
        datacenters: 4,
        max_latency_ms: 50.0,
        iterations: 1_500,
    };
    let num_maps = 80;
    let config = JobConfig::default();

    println!("== DC Placement: {num_maps} maps, 50ms max latency ==\n");
    println!(
        "{:>10} | {:>8} | {:>10} | {:>22} | {:>8}",
        "maps run%", "time(s)", "best cost", "GEV estimate", "CI width%"
    );

    for executed_pct in [100, 80, 60, 50, 40, 30, 20] {
        let drop = 1.0 - executed_pct as f64 / 100.0;
        let spec = if drop == 0.0 {
            ApproxSpec::Precise
        } else {
            ApproxSpec::ratios(drop, 1.0)
        };
        let r = dc_placement(&grid, &anneal, num_maps, 2, spec, config.clone())
            .expect("dc placement job");
        let out = &r.outputs[0];
        let (est_str, width) = match out.estimated {
            Some(iv) => (
                format!("{:.1} ± {:.1}", iv.estimate, iv.half_width),
                iv.relative_error() * 100.0,
            ),
            None => ("(too few maps to fit)".to_string(), f64::NAN),
        };
        println!(
            "{:>9}% | {:>8.2} | {:>10.1} | {:>22} | {:>7.2}%",
            executed_pct, r.metrics.wall_secs, out.observed, est_str, width
        );
    }
    println!("\n(the GEV estimate stays near the best cost; fewer maps widen the interval)");
}
