//! Video encoding with user-defined approximation (the paper's third
//! mechanism).
//!
//! The user supplies two encoders: a precise one (fine quantisation)
//! and an approximate one (coarse quantisation). The framework runs a
//! chosen fraction of the map tasks with the approximate version; the
//! user-defined quality metric is PSNR.
//!
//! Run with: `cargo run --release --example video_encoding`

use approxhadoop::runtime::engine::JobConfig;
use approxhadoop::workloads::apps::video_encoding;

fn main() {
    let frame_size = 64;
    let chunks = 24;
    let frames_per_chunk = 6;
    let config = JobConfig::default();

    println!(
        "== Video Encoding: {chunks} chunks x {frames_per_chunk} frames of {frame_size}x{frame_size} ==\n"
    );
    println!(
        "{:>8} | {:>8} | {:>12} | {:>9}",
        "approx%", "time(s)", "coefficients", "PSNR(dB)"
    );

    for fraction in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let start = std::time::Instant::now();
        let r = video_encoding(
            frame_size,
            chunks,
            frames_per_chunk,
            fraction,
            3,
            config.clone(),
        )
        .expect("encode job");
        println!(
            "{:>7.0}% | {:>8.2} | {:>12} | {:>9.2}",
            r.approx_chunk_fraction * 100.0,
            start.elapsed().as_secs_f64(),
            r.coefficients,
            r.mean_psnr_db
        );
    }
    println!("\n(more approximate chunks -> smaller output, lower quality — the user decides)");
}
