//! Cluster-scale simulation: runtime and energy at the paper's scale
//! (Figures 12 & 13).
//!
//! Simulates the paper's 10-server Xeon cluster running one week of
//! Wikipedia log processing (740 maps) precisely and with a ±1% target
//! bound, then shows the ACPI-S3 energy savings of task dropping on a
//! single-wave job, and finally scales the input up to a year
//! (12.5 TB-equivalent) on the 60-server Atom cluster.
//!
//! Run with: `cargo run --release --example energy_sim`

use approxhadoop::cluster::{simulate, ClusterSpec, SimApprox, SimJobSpec};
use approxhadoop::workloads::wikilog::LOG_PERIODS;

fn main() {
    let xeon = ClusterSpec::xeon(10);

    // --- One week, precise vs 1% target (Figure 9a's headline). ---
    let week = SimJobSpec::log_processing(740, 2_600_000);
    let precise = simulate(&xeon, &week, SimApprox::Precise, 1).expect("precise sim");
    let target = simulate(
        &xeon,
        &week,
        SimApprox::Target {
            relative_error: 0.01,
        },
        1,
    )
    .expect("target sim");
    println!("== One week of Wikipedia logs on 10 Xeons ==");
    println!(
        "precise:    {:>7.0}s  {:>7.0}Wh  ({} maps)",
        precise.wall_secs, precise.energy_wh, precise.executed_maps
    );
    println!(
        "target ±1%: {:>7.0}s  {:>7.0}Wh  ({} maps run, {} dropped, bound {:.2}%, actual {:.2}%)",
        target.wall_secs,
        target.energy_wh,
        target.executed_maps,
        target.dropped_maps + target.killed_maps,
        target.bound_rel * 100.0,
        target.actual_error_rel * 100.0
    );
    println!("speedup: {:.1}x\n", precise.wall_secs / target.wall_secs);

    // --- S3 sleep: dropping inside a single wave saves energy, not time. ---
    println!("== Single-wave job (80 maps on 80 slots), drop 50% ==");
    let single_wave = SimJobSpec::log_processing(80, 2_600_000);
    let approx = SimApprox::Ratios {
        drop_ratio: 0.5,
        sampling_ratio: 1.0,
    };
    let no_s3 = simulate(&xeon, &single_wave, approx, 2).expect("no-s3 sim");
    let s3 = simulate(&xeon.with_s3(), &single_wave, approx, 2).expect("s3 sim");
    println!(
        "without S3: {:>6.0}s  {:>6.0}Wh",
        no_s3.wall_secs, no_s3.energy_wh
    );
    println!(
        "with S3:    {:>6.0}s  {:>6.0}Wh  (energy saved {:.0}%, runtime unchanged)\n",
        s3.wall_secs,
        s3.energy_wh,
        (1.0 - s3.energy_wh / no_s3.energy_wh) * 100.0
    );

    // --- Scaling to a year on the Atom cluster (Figure 13). ---
    println!("== Scaling on 60 Atoms (precise vs target ±1%) ==");
    println!(
        "{:>9} | {:>6} | {:>11} | {:>11} | {:>8}",
        "period", "maps", "precise(s)", "approx(s)", "speedup"
    );
    let atom = ClusterSpec::atom(60);
    for period in LOG_PERIODS
        .iter()
        .filter(|p| ["1 day", "1 week", "1 month", "1 year"].contains(&p.name))
    {
        let job = SimJobSpec::log_processing(period.num_maps() as usize, period.records_per_map());
        let p = simulate(&atom, &job, SimApprox::Precise, 3).expect("precise sim");
        let a = simulate(
            &atom,
            &job,
            SimApprox::Target {
                relative_error: 0.01,
            },
            3,
        )
        .expect("target sim");
        println!(
            "{:>9} | {:>6} | {:>11.0} | {:>11.0} | {:>7.1}x",
            period.name,
            period.num_maps(),
            p.wall_secs,
            a.wall_secs,
            p.wall_secs / a.wall_secs
        );
    }
    println!("\n(speedups grow with input size — the paper reports 32x at one year)");
}
