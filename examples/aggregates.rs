//! Tour of all supported aggregates on the Wikipedia workloads:
//! sum, count, mean, ratio (paper Section 3.1's four operations), and
//! three-stage sampling for per-pair means.
//!
//! Run with: `cargo run --release --example aggregates`

use approxhadoop::core::job::{AggregationJob, RatioJob};
use approxhadoop::core::spec::ApproxSpec;
use approxhadoop::runtime::engine::JobConfig;
use approxhadoop::workloads::apps;
use approxhadoop::workloads::wikidump::WikiDump;
use approxhadoop::workloads::wikilog::{LogEntry, WikiLog};

fn main() {
    let log = WikiLog {
        days: 3,
        entries_per_block: 5_000,
        blocks_per_day: 12,
        pages: 50_000,
        projects: 200,
        seed: 5,
    };
    let config = JobConfig::default();
    let spec = ApproxSpec::ratios(0.25, 0.10); // drop 25%, sample 10%

    println!(
        "== All aggregates over {} log entries (drop 25%, sample 10%) ==\n",
        log.total_entries()
    );

    // SUM: total bytes served.
    let sum =
        AggregationJob::sum(|e: &LogEntry, emit: &mut dyn FnMut(u8, f64)| emit(0, e.bytes as f64))
            .spec(spec)
            .config(config.clone())
            .run(&log.source())
            .expect("sum job");
    println!("sum   (total bytes):        {}", sum.outputs[0].1);

    // COUNT: total accesses.
    let count = AggregationJob::count(|_e: &LogEntry, emit: &mut dyn FnMut(u8, f64)| emit(0, 1.0))
        .spec(spec)
        .config(config.clone())
        .run(&log.source())
        .expect("count job");
    println!("count (accesses):           {}", count.outputs[0].1);

    // MEAN: mean bytes per log entry.
    let mean =
        AggregationJob::mean(|e: &LogEntry, emit: &mut dyn FnMut(u8, f64)| emit(0, e.bytes as f64))
            .spec(spec)
            .config(config.clone())
            .run(&log.source())
            .expect("mean job");
    println!("mean  (bytes per entry):    {}", mean.outputs[0].1);

    // RATIO: bytes per access for the top project.
    let ratio = RatioJob::new(|e: &LogEntry, emit: &mut dyn FnMut(u64, (f64, f64))| {
        emit(e.project, (e.bytes as f64, 1.0))
    })
    .spec(spec)
    .config(config.clone())
    .run(&log.source())
    .expect("ratio job");
    let en = ratio
        .outputs
        .iter()
        .find(|(k, _)| *k == 1)
        .expect("project en");
    println!("ratio (bytes/access, 'en'): {}", en.1);

    // THREE-STAGE: mean mentions per paragraph over the dump (the
    // population units are the intermediate pairs, not the articles).
    let dump = WikiDump {
        articles: 50_000,
        articles_per_block: 1_000,
        seed: 5,
    };
    let ts = apps::mentions_per_paragraph(&dump, 0.25, 0.10, config).expect("three-stage job");
    println!("3-stage (mentions/paragraph): {}", ts.outputs[0].1);
    println!("\n(each estimate is τ̂ ± ε at 95% confidence from two-/three-stage sampling theory)");
}
