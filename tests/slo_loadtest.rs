//! Process-backend load-test regression: the blind spot this PR fixes.
//!
//! The service's process-backend completion path used to report a
//! queue depth of `0` to the admission controller — backlog built on
//! the shared pool but the feedback loop never saw it, so jobs on the
//! process backend could never trigger backlog-driven degradation.
//! This test drives a short loadgen phase entirely on worker OS
//! processes and asserts the controller actually observed overload.

use approxhadoop_server::loadgen::{run_phase, LoadConfig};

/// Referencing the env var makes Cargo build the `approx-worker`
/// binary before this test runs; `WorkerSpec::sibling` then finds it
/// next to the test executable.
const _WORKER: &str = env!("CARGO_BIN_EXE_approx-worker");

#[test]
fn process_backend_backlog_feeds_the_admission_controller() {
    let config = LoadConfig {
        slots: 2,
        jobs: 6,
        // Slow enough that later arrivals are admitted after earlier
        // completions have fed the controller (process jobs here take
        // tens of milliseconds).
        arrival_rate: 3.0,
        blocks_per_job: 4,
        entries_per_block: 300,
        p99_target_secs: 1e-6, // every completion is over target
        process_workers: 1,
        seed: 11,
        ..Default::default()
    };
    let report = run_phase(&config, true);
    assert_eq!(report.jobs.len(), 6, "every job must complete");
    for o in &report.jobs {
        assert_eq!(o.total_maps, 4);
        assert_eq!(o.executed_maps + o.dropped_maps, 4);
    }
    // The regression: with the completion path reporting `queued = 0`
    // and an impossible latency target, overload was *only* visible
    // through the latency window. Now every process-backend completion
    // carries the real pool depth, and each over-target completion is
    // an overloaded observation.
    assert!(
        report.overloaded_observations > 0,
        "process-backend completions never registered overload: {:?}",
        report.decisions
    );
    // Overload observed before the last admission must degrade later
    // jobs (paced arrivals mean the tail admissions happen after some
    // completions under a 1µs target).
    assert!(
        report.decisions.iter().any(|d| d.degrade > 0.0),
        "controller observed overload but never degraded: {:?}",
        report.decisions
    );
}
