//! End-to-end fault-tolerance tests: injected failures flow through the
//! whole stack (DFS replica failover → engine retry → degrade-to-drop →
//! multi-stage interval widening) and the statistics stay honest.

use approxhadoop::core::job::AggregationJob;
use approxhadoop::core::spec::ApproxSpec;
use approxhadoop::dfs::{DfsCluster, DfsConfig};
use approxhadoop::runtime::engine::JobConfig;
use approxhadoop::runtime::fault::{FaultPlan, FaultPolicy};
use approxhadoop::runtime::input::VecSource;
use approxhadoop::runtime::metrics::TaskOutcome;
use approxhadoop::runtime::text::TextSource;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn value_blocks(n_blocks: usize, per_block: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n_blocks)
        .map(|_| (0..per_block).map(|_| rng.gen_range(0.0..10.0)).collect())
        .collect()
}

#[allow(clippy::type_complexity)]
fn sum_job() -> AggregationJob<f64, u8, impl Fn(&f64, &mut dyn FnMut(u8, f64)) + Send + Sync> {
    AggregationJob::sum(|x: &f64, emit: &mut dyn FnMut(u8, f64)| emit(0, *x))
}

/// A task that exhausts its retries becomes a dropped cluster: the
/// interval widens exactly as it would for a deliberately dropped map,
/// and still contains the precise run's answer.
#[test]
fn degraded_interval_contains_the_precise_answer() {
    let n_blocks = 40;
    let blocks = value_blocks(n_blocks, 100, 11);
    let truth: f64 = blocks.iter().flatten().sum();
    let input = VecSource::new(blocks);

    // Faulty run: ~30% of first attempts fail, zero retries, degrade.
    let degraded = sum_job()
        .spec(ApproxSpec::ratios(0.0, 1.0))
        .config(JobConfig {
            map_slots: 4,
            seed: 7,
            fault_plan: Some(FaultPlan::parse("io=0.3,seed=7").unwrap()),
            fault_policy: FaultPolicy::tolerant(0),
            ..Default::default()
        })
        .run(&input)
        .unwrap();
    let d = degraded.metrics.degraded_to_drop;
    assert!(d > 0, "the plan must degrade some tasks");
    assert_eq!(degraded.metrics.killed_maps, 0);
    assert_eq!(degraded.metrics.executed_maps + d, n_blocks);
    let div = degraded.outputs[0].1;
    assert!(div.half_width > 0.0 && div.half_width.is_finite());
    assert!(
        div.contains(truth),
        "degraded interval {} ± {} must contain {truth}",
        div.estimate,
        div.half_width
    );

    // Equivalent run dropping the same *number* of maps deliberately at
    // the same seed: the degraded interval must be in the same regime
    // (degraded tasks are ordinary dropped clusters, nothing worse).
    let dropped = sum_job()
        .spec(ApproxSpec::ratios(d as f64 / n_blocks as f64, 1.0))
        .config(JobConfig {
            map_slots: 4,
            seed: 7,
            ..Default::default()
        })
        .run(&input)
        .unwrap();
    assert_eq!(dropped.metrics.dropped_maps, d, "same number of drops");
    let riv = dropped.outputs[0].1;
    assert!(riv.contains(truth));
    let ratio = div.half_width / riv.half_width;
    assert!(
        (0.25..=4.0).contains(&ratio),
        "degraded half-width {} vs dropped half-width {} (ratio {ratio})",
        div.half_width,
        riv.half_width
    );
}

/// Acceptance matrix: per-attempt failure probability 0.2 across three
/// seeds — every job completes with finite error bounds, no fatal
/// errors, and exhausted tasks are degraded, never recorded as Killed.
#[test]
fn three_seed_fault_matrix_yields_finite_bounds() {
    let n_blocks = 30;
    for seed in [1u64, 2, 3] {
        let blocks = value_blocks(n_blocks, 80, seed);
        let truth: f64 = blocks.iter().flatten().sum();
        let input = VecSource::new(blocks);
        let result = sum_job()
            .spec(ApproxSpec::ratios(0.0, 1.0))
            .config(JobConfig {
                map_slots: 4,
                servers: 2,
                seed,
                fault_plan: Some(
                    FaultPlan::parse(&format!("io=0.15,panic=0.05,seed={seed}")).unwrap(),
                ),
                fault_policy: FaultPolicy::tolerant(3),
                ..Default::default()
            })
            .run(&input)
            .unwrap_or_else(|e| panic!("seed {seed}: job must complete, got {e}"));
        let m = &result.metrics;
        assert!(m.failed_maps > 0, "seed {seed}: faults must fire");
        assert_eq!(
            m.executed_maps + m.degraded_to_drop,
            n_blocks,
            "seed {seed}"
        );
        assert_eq!(m.killed_maps, 0, "seed {seed}");
        assert!(
            m.task_outcomes
                .iter()
                .all(|r| r.outcome != TaskOutcome::Killed),
            "seed {seed}: exhausted tasks must be Failed, never Killed"
        );
        let iv = result.outputs[0].1;
        assert!(
            iv.half_width.is_finite() && iv.estimate.is_finite(),
            "seed {seed}: bounds must be finite"
        );
        assert!(
            (iv.estimate - truth).abs() / truth < 0.25,
            "seed {seed}: estimate {} too far from {truth}",
            iv.estimate
        );
    }
}

/// A dead datanode: every block still has a live replica (replication 2
/// on 3 nodes), so the DFS fails over and the job completes exactly,
/// counting the failovers.
#[test]
fn dead_datanode_fails_over_to_replicas() {
    let lines: Vec<String> = (0..3_000)
        .map(|i| format!("user{} {}", i % 13, (i * 7) % 100))
        .collect();
    let mut dfs = DfsCluster::new(DfsConfig {
        datanodes: 3,
        replication: 2,
        block_records: 150,
    });
    dfs.write_lines("log", &lines).unwrap();

    let plan = FaultPlan::parse("dead=0,seed=5").unwrap();
    dfs.set_read_faults(plan.read_faults());
    let input = TextSource::open(&dfs, "log").unwrap();

    let result = AggregationJob::count(|line: &String, emit: &mut dyn FnMut(String, f64)| {
        emit(line.split_whitespace().next().unwrap().to_string(), 1.0)
    })
    .spec(ApproxSpec::Precise)
    .config(JobConfig {
        map_slots: 4,
        reduce_tasks: 2,
        fault_policy: FaultPolicy::tolerant(2),
        ..Default::default()
    })
    .run(&input)
    .unwrap();

    assert_eq!(result.metrics.executed_maps, 20);
    let total: f64 = result.outputs.iter().map(|(_, iv)| iv.estimate).sum();
    assert_eq!(total, lines.len() as f64, "failover must not lose data");
    for (_, iv) in &result.outputs {
        assert_eq!(iv.half_width, 0.0, "precise run despite faults");
    }
    let stats = dfs.fault_stats();
    assert!(
        stats.failed_replica_reads > 0,
        "the dead node must be asked for blocks"
    );
    assert!(
        stats.failovers > 0,
        "failed replica reads must fail over, got {stats:?}"
    );
}
