//! End-to-end integration tests spanning every crate: DFS → engine →
//! approximation templates → statistics, plus the cluster simulator.

use approxhadoop::cluster::{simulate, ClusterSpec, SimApprox, SimJobSpec};
use approxhadoop::core::job::AggregationJob;
use approxhadoop::core::spec::{ApproxSpec, PilotSpec};
use approxhadoop::dfs::{DfsCluster, DfsConfig};
use approxhadoop::runtime::engine::JobConfig;
use approxhadoop::runtime::text::TextSource;
use approxhadoop::workloads::apps;
use approxhadoop::workloads::dcgrid::{AnnealConfig, Grid};
use approxhadoop::workloads::deptlog::DeptLog;
use approxhadoop::workloads::wikilog::WikiLog;

use std::collections::HashMap;

fn small_config() -> JobConfig {
    JobConfig {
        map_slots: 4,
        reduce_tasks: 2,
        ..Default::default()
    }
}

/// DFS-stored text through the whole stack: the precise run must equal a
/// directly computed ground truth.
#[test]
fn dfs_to_estimate_pipeline_is_exact_when_precise() {
    let lines: Vec<String> = (0..5_000)
        .map(|i| format!("user{} {}", i % 13, (i * 7) % 100))
        .collect();
    let mut truth: HashMap<String, f64> = HashMap::new();
    for l in &lines {
        let user = l.split_whitespace().next().unwrap().to_string();
        *truth.entry(user).or_default() += 1.0;
    }

    let mut dfs = DfsCluster::new(DfsConfig {
        datanodes: 3,
        replication: 2,
        block_records: 250,
    });
    dfs.write_lines("log", &lines).unwrap();
    let input = TextSource::open(&dfs, "log").unwrap();

    let result = AggregationJob::count(|line: &String, emit: &mut dyn FnMut(String, f64)| {
        emit(line.split_whitespace().next().unwrap().to_string(), 1.0)
    })
    .spec(ApproxSpec::Precise)
    .config(small_config())
    .run(&input)
    .unwrap();

    assert_eq!(result.outputs.len(), truth.len());
    for (k, iv) in &result.outputs {
        assert_eq!(iv.half_width, 0.0);
        assert_eq!(iv.estimate, truth[k], "key {k}");
    }
    assert_eq!(result.metrics.executed_maps, 20);
}

/// Statistical validity: across seeds, the 95% interval of an
/// approximated run must contain the truth the vast majority of the time.
#[test]
fn sampled_intervals_cover_truth_across_seeds() {
    let log = WikiLog {
        days: 3,
        entries_per_block: 2_000,
        blocks_per_day: 10,
        pages: 20_000,
        projects: 100,
        seed: 5,
    };
    let precise = apps::project_popularity(&log, ApproxSpec::Precise, small_config()).unwrap();
    let truth: HashMap<u64, f64> = precise
        .outputs
        .iter()
        .map(|(k, iv)| (*k, iv.estimate))
        .collect();

    let mut covered = 0;
    let mut total = 0;
    for seed in 0..10 {
        let mut config = small_config();
        config.seed = seed;
        let approx = apps::project_popularity(&log, ApproxSpec::ratios(0.2, 0.25), config).unwrap();
        // Check the 5 most popular projects (popular keys have reliable
        // intervals; rare keys are the documented limitation).
        for k in 1..=5u64 {
            if let Some((_, iv)) = approx.outputs.iter().find(|(ak, _)| *ak == k) {
                total += 1;
                if iv.contains(truth[&k]) {
                    covered += 1;
                }
            }
        }
    }
    assert!(total >= 40, "most runs must see the top projects");
    let rate = covered as f64 / total as f64;
    assert!(rate >= 0.85, "coverage {rate} too low ({covered}/{total})");
}

/// Target-error mode never reports a bound above the target, across
/// applications and targets.
#[test]
fn target_mode_always_meets_reported_bounds() {
    let log = DeptLog {
        weeks: 40,
        requests_per_week: 2_000,
        clients: 3_000,
        attack_fraction: 1e-3,
        seed: 9,
    };
    for target in [0.01, 0.03, 0.10] {
        let r = apps::total_size(&log, ApproxSpec::target(target, 0.95), small_config()).unwrap();
        let iv = r.outputs[0].1;
        assert!(
            iv.relative_error() <= target + 1e-9,
            "target {target}: bound {} exceeded",
            iv.relative_error()
        );
    }
}

/// The pilot wave allows approximation even when the job would fit in a
/// single wave.
#[test]
fn pilot_wave_enables_single_wave_approximation() {
    let log = WikiLog {
        days: 1,
        entries_per_block: 5_000,
        blocks_per_day: 16,
        pages: 10_000,
        projects: 50,
        seed: 3,
    };
    // 16 maps on 16 slots = one wave: without a pilot everything runs
    // precisely before stats exist.
    let config = JobConfig {
        map_slots: 16,
        reduce_tasks: 1,
        ..Default::default()
    };
    let spec = ApproxSpec::target(0.05, 0.95).with_pilot(PilotSpec {
        tasks: 3,
        sampling_ratio: 0.05,
    });
    let r = apps::project_popularity(&log, spec, config).unwrap();
    assert!(
        r.metrics.effective_sampling_ratio() < 1.0,
        "pilot must enable sampling (ratio {})",
        r.metrics.effective_sampling_ratio()
    );
    let worst = r
        .outputs
        .iter()
        .map(|(_, iv)| iv.relative_error())
        .fold(0.0f64, f64::max);
    assert!(worst.is_finite());
}

/// GEV path end-to-end: dropping maps still produces an interval that
/// brackets the best cost any full run would find.
#[test]
fn dc_placement_gev_interval_brackets_optimum() {
    let grid = Grid::us_like(10, 17);
    let anneal = AnnealConfig {
        datacenters: 3,
        max_latency_ms: 60.0,
        iterations: 400,
    };
    let full =
        apps::dc_placement(&grid, &anneal, 40, 1, ApproxSpec::Precise, small_config()).unwrap();
    let best_known = full.outputs[0].observed;
    let dropped = apps::dc_placement(
        &grid,
        &anneal,
        40,
        1,
        ApproxSpec::ratios(0.5, 1.0),
        small_config(),
    )
    .unwrap();
    let out = &dropped.outputs[0];
    assert!(out.observed >= best_known, "subset cannot beat full search");
    if let Some(iv) = out.estimated {
        // The GEV estimate of the minimum should be at or below what the
        // dropped run observed, and near the full search's best.
        assert!(iv.estimate <= out.observed + 1e-9);
        assert!(
            iv.lo() <= best_known * 1.02,
            "interval [{}, {}] should reach down to {best_known}",
            iv.lo(),
            iv.hi()
        );
    }
}

/// The simulator and the real engine agree on the bookkeeping of
/// dropping/sampling (executed counts, sampling ratio) for the same
/// specification.
#[test]
fn simulator_matches_engine_bookkeeping() {
    let num_maps = 40;
    // Real engine.
    let log = WikiLog {
        days: 4,
        entries_per_block: 1_000,
        blocks_per_day: 10,
        pages: 5_000,
        projects: 20,
        seed: 21,
    };
    let real =
        apps::project_popularity(&log, ApproxSpec::ratios(0.25, 0.5), small_config()).unwrap();
    assert_eq!(real.metrics.dropped_maps, 10);
    assert_eq!(real.metrics.executed_maps, 30);
    assert!((real.metrics.effective_sampling_ratio() - 0.5).abs() < 0.02);

    // Simulator with the same shape.
    let job = SimJobSpec::log_processing(num_maps, 1_000);
    let sim = simulate(
        &ClusterSpec::xeon(2),
        &job,
        SimApprox::Ratios {
            drop_ratio: 0.25,
            sampling_ratio: 0.5,
        },
        21,
    )
    .unwrap();
    assert_eq!(sim.dropped_maps, 10);
    assert_eq!(sim.executed_maps, 30);
    assert!((sim.effective_sampling_ratio - 0.5).abs() < 0.02);
}

/// Actual errors stay within the same order as the predicted bounds for
/// the simulator's synthetic statistics (95% interval sanity).
#[test]
fn simulator_bounds_are_honest() {
    let job = SimJobSpec::log_processing(200, 50_000);
    let cluster = ClusterSpec::xeon(5);
    let mut violations = 0;
    for seed in 0..10 {
        let r = simulate(
            &cluster,
            &job,
            SimApprox::Ratios {
                drop_ratio: 0.3,
                sampling_ratio: 0.2,
            },
            seed,
        )
        .unwrap();
        assert!(r.bound_rel.is_finite());
        if r.actual_error_rel > r.bound_rel {
            violations += 1;
        }
    }
    // 95% confidence: allow at most a few violations out of 10.
    assert!(violations <= 2, "{violations}/10 bound violations");
}

/// Dropping reduces runtime more than sampling, but widens intervals —
/// the paper's core qualitative claim (Section 5.2).
#[test]
fn dropping_vs_sampling_tradeoff_shape() {
    let job = SimJobSpec::log_processing(320, 100_000);
    let cluster = ClusterSpec::xeon(10);
    let sampled = simulate(
        &cluster,
        &job,
        SimApprox::Ratios {
            drop_ratio: 0.0,
            sampling_ratio: 0.1,
        },
        4,
    )
    .unwrap();
    let dropped = simulate(
        &cluster,
        &job,
        SimApprox::Ratios {
            drop_ratio: 0.5,
            sampling_ratio: 1.0,
        },
        4,
    )
    .unwrap();
    // Dropping eliminates whole waves: faster than sampling (which still
    // pays the per-record read cost).
    assert!(
        dropped.wall_secs < sampled.wall_secs,
        "dropped {} vs sampled {}",
        dropped.wall_secs,
        sampled.wall_secs
    );
    // But block-level locality makes dropped intervals wider.
    assert!(
        dropped.bound_rel > sampled.bound_rel,
        "dropped bound {} vs sampled bound {}",
        dropped.bound_rel,
        sampled.bound_rel
    );
}

/// The DFS → TextSource → engine locality path: with one server per
/// datanode, most maps should be scheduled on a replica holder.
#[test]
fn dfs_locality_flows_to_the_scheduler() {
    use approxhadoop::workloads::deptlog::{DeptLog, Request};

    // Render a departmental log to DFS text and parse it back through
    // the full engine path.
    let log = DeptLog {
        weeks: 24,
        requests_per_week: 200,
        clients: 500,
        attack_fraction: 0.01,
        seed: 33,
    };
    let lines: Vec<String> = (0..log.weeks)
        .flat_map(|w| log.block(w).iter().map(|r| r.to_line()).collect::<Vec<_>>())
        .collect();
    let mut dfs = DfsCluster::new(DfsConfig {
        datanodes: 4,
        replication: 2,
        block_records: 200, // one block per week
    });
    dfs.write_lines("dept", &lines).unwrap();
    let input = TextSource::open(&dfs, "dept").unwrap();

    let config = JobConfig {
        map_slots: 4,
        servers: 4, // one server per datanode
        reduce_tasks: 2,
        ..Default::default()
    };
    let result = AggregationJob::count(|line: &String, emit: &mut dyn FnMut(u32, f64)| {
        if let Some(r) = Request::parse(line) {
            emit(r.hour % 24, 1.0);
        }
    })
    .spec(ApproxSpec::ratios(0.0, 0.5))
    .config(config)
    .run(&input)
    .unwrap();

    assert_eq!(result.metrics.executed_maps, 24);
    // With replication 2 on 4 nodes, locality should be achievable for
    // well over half the maps.
    assert!(
        result.metrics.local_maps >= 12,
        "local maps {} too few",
        result.metrics.local_maps
    );
    let total: f64 = result.outputs.iter().map(|(_, iv)| iv.estimate).sum();
    let truth = (log.weeks as u64 * log.requests_per_week) as f64;
    assert!(
        (total - truth).abs() / truth < 0.1,
        "total {total} vs {truth}"
    );
}

/// Distinct-key extrapolation recovers part of the gap left by missed
/// rare keys (the paper's §3.1 extension) on a real application.
#[test]
fn distinct_key_extrapolation_on_page_popularity() {
    let log = WikiLog {
        days: 2,
        entries_per_block: 2_000,
        blocks_per_day: 10,
        pages: 30_000,
        projects: 100,
        seed: 44,
    };
    let precise = apps::page_popularity(&log, ApproxSpec::Precise, small_config()).unwrap();
    let approx = apps::page_popularity(&log, ApproxSpec::ratios(0.0, 0.1), small_config()).unwrap();
    let truth = precise.outputs.len() as f64;
    let observed = approx.outputs.len() as f64;
    let est = approx.distinct_keys_estimate.expect("estimate");
    assert!(observed < truth, "sampling must miss pages");
    assert!(est > observed, "extrapolation exceeds the observed count");
    assert!(
        (est - truth).abs() < (observed - truth).abs(),
        "chao1 {est} should beat observed {observed} vs truth {truth}"
    );
}
