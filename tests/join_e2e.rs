//! End-to-end acceptance matrix for the two-input approximate join
//! (access log × page catalogue):
//!
//! 1. Under sampling + dropping on the log side, every per-stratum
//!    interval covers the precise join aggregate for its category, and
//!    the quadrature-combined interval covers the precise total — over
//!    a three-seed matrix.
//! 2. The Bloom pre-filter's discard counters are visible in the
//!    metrics registry, including when the filtering happened inside
//!    worker OS processes (the telemetry piggyback path).
//! 3. The join submits through the multi-tenant `JobService` with
//!    per-dataset ratios in the `JobSpec`, on both the shared-pool and
//!    process paths, and the serviced outcome matches a direct run.

use std::sync::Arc;

use approxhadoop::obs::Obs;
use approxhadoop::runtime::control::DatasetRatios;
use approxhadoop::runtime::engine::{JobConfig, WorkerSpec};
use approxhadoop::server::{AdmissionConfig, JobService, JobSpec};
use approxhadoop::workloads::join::{
    self, finish_join, JoinMapper, JoinReducer, JoinWorkload, PageCatalog,
};
use approxhadoop::workloads::wikilog::WikiLog;

fn workload(seed: u64) -> JoinWorkload {
    JoinWorkload {
        log: WikiLog {
            days: 1,
            entries_per_block: 400,
            blocks_per_day: 16,
            pages: 3_000,
            projects: 12,
            seed,
        },
        catalog: PageCatalog {
            pages: 1_800,
            pages_per_block: 600,
            categories: 5,
            seed,
            fpr: 0.01,
        },
    }
}

const RATIOS: DatasetRatios = DatasetRatios {
    sampling_ratio: 0.5,
    drop_ratio: 0.25,
};

/// Acceptance: per-stratum (estimate, interval) rows cover the precise
/// join aggregate per category, and the combined interval covers the
/// precise total, across a 3-seed matrix with sampling AND dropping
/// engaged on the probe side.
#[test]
fn sampled_join_strata_cover_precise_truth_across_seeds() {
    for seed in [11u64, 42, 77] {
        let w = workload(seed);
        let truth = w.precise_by_category();
        let total: f64 = truth.values().sum();
        let outcome = join::join_category_traffic(
            &w,
            RATIOS,
            JobConfig {
                reduce_tasks: 3,
                seed,
                ..Default::default()
            },
            0.95,
        )
        .unwrap();
        assert!(
            outcome.metrics.dropped_maps > 0,
            "seed {seed}: dropping must be engaged"
        );
        assert!(
            outcome.metrics.effective_sampling_ratio() < 1.0,
            "seed {seed}: sampling must be engaged"
        );
        assert_eq!(
            outcome.categories.len(),
            truth.len(),
            "seed {seed}: every category with precise traffic must be estimated"
        );
        for (category, interval) in &outcome.categories {
            assert!(
                interval.half_width > 0.0 && interval.half_width.is_finite(),
                "seed {seed}: stratum {category} must carry a real bound"
            );
            assert!(
                interval.contains(truth[category]),
                "seed {seed}: stratum {category} {} ± {} misses precise {}",
                interval.estimate,
                interval.half_width,
                truth[category]
            );
        }
        assert!(
            outcome.combined.contains(total),
            "seed {seed}: combined {} ± {} misses precise total {total}",
            outcome.combined.estimate,
            outcome.combined.half_width
        );
    }
}

/// The Bloom pre-filter runs inside worker OS processes, yet its
/// discard/pass counters land in the *parent's* metrics registry via
/// the worker-telemetry piggyback — so `/metrics` shows the filtering
/// regardless of backend.
#[test]
fn bloom_discard_counters_flow_back_from_worker_processes() {
    let w = workload(3);
    let obs = Obs::shared();
    let worker = WorkerSpec::new(env!("CARGO_BIN_EXE_approx-worker"), join::JOIN_JOB);
    let outcome = join::join_category_traffic_process(
        &w,
        DatasetRatios::precise(),
        JobConfig {
            reduce_tasks: 2,
            workers: 2,
            seed: 3,
            obs: Some(Arc::clone(&obs)),
            ..Default::default()
        },
        0.95,
        &worker,
    )
    .unwrap();
    let snap = obs.registry.snapshot();
    let discarded = snap.counter_total("join_filter_discarded_total");
    let passed = snap.counter_total("join_filter_passed_total");
    assert!(
        discarded > 0,
        "worker-side Bloom discards must reach the parent registry"
    );
    assert!(passed > 0, "joining traffic must be counted as passed");
    // Pages above the catalogue's range cannot pass (no false negatives
    // in the other direction): everything the filter let through plus
    // everything it discarded is exactly the log's record count.
    let log_records = w.log.num_blocks() * w.log.entries_per_block;
    assert_eq!(
        discarded + passed,
        log_records,
        "every access must be either passed or discarded on a precise run"
    );
    assert!(!outcome.categories.is_empty());
}

/// The join goes through the multi-tenant service: `JobSpec.datasets`
/// carries the per-dataset ratios, the tracker builds the
/// dataset-aware coordinator, and the serviced outcome is identical to
/// a direct run with the same seed — on both the shared-pool and the
/// process submission paths.
#[test]
fn join_submits_through_job_service_on_both_paths() {
    let seed = 9u64;
    let w = workload(seed);
    let direct = join::join_category_traffic(
        &w,
        RATIOS,
        JobConfig {
            reduce_tasks: 2,
            seed,
            ..Default::default()
        },
        0.95,
    )
    .unwrap();

    let spec = JobSpec {
        name: "join-tenant".into(),
        reduce_tasks: 2,
        seed,
        datasets: w.dataset_ratios(RATIOS),
        ..Default::default()
    };

    // Shared-pool path.
    let service = JobService::new(2, AdmissionConfig::default());
    let handle = service
        .submit(
            spec.clone(),
            Arc::new(w.source().unwrap()),
            Arc::new(join::tagged_join_mapper(&w.catalog)),
            |_| JoinReducer::new(),
        )
        .unwrap();
    let pooled = finish_join(handle.wait().unwrap(), w.log_clusters(), 0.95).unwrap();
    assert_eq!(
        direct.categories, pooled.categories,
        "serviced pool run must match the direct run"
    );
    assert_eq!(direct.combined, pooled.combined);

    // Process path: the worker rebuilds the mapper from the catalogue
    // in the params blob.
    let worker = WorkerSpec::new(env!("CARGO_BIN_EXE_approx-worker"), join::JOIN_JOB)
        .with_params(approxhadoop::ipc::Wire::to_bytes(&w.catalog));
    let handle = service
        .submit_process(spec, Arc::new(w.source().unwrap()), worker, |_| {
            JoinReducer::new()
        })
        .unwrap();
    let processed = finish_join(handle.wait().unwrap(), w.log_clusters(), 0.95).unwrap();
    assert_eq!(
        direct.categories, processed.categories,
        "serviced process run must match the direct run"
    );
    assert_eq!(direct.combined, processed.combined);
}

/// Target-error (goal) submission is single-input by design: a spec
/// carrying per-dataset ratios must be rejected up front, not silently
/// mis-planned.
#[test]
fn goal_jobs_reject_multi_input_specs() {
    use approxhadoop::core::multistage::{Aggregation, MultiStageMapper, MultiStageReducer};
    use approxhadoop::runtime::input::VecSource;
    use approxhadoop::server::ErrorGoal;

    let service = JobService::new(1, AdmissionConfig::default());
    let spec = JobSpec {
        datasets: vec![DatasetRatios::precise()],
        ..Default::default()
    };
    let err = service
        .submit_with_goal(
            spec,
            ErrorGoal::relative(0.05),
            Arc::new(VecSource::new(vec![vec![1.0f64]])),
            Arc::new(MultiStageMapper::new(
                |x: &f64, emit: &mut dyn FnMut(u8, f64)| emit(0, *x),
            )),
            |_, _| MultiStageReducer::<u8>::new(Aggregation::Sum, 0.95),
        )
        .map(|_| ())
        .unwrap_err();
    assert!(
        err.to_string().contains("single-input"),
        "unexpected error: {err}"
    );
}

#[allow(dead_code)]
fn assert_mapper_types(catalog: &PageCatalog) {
    // Compile-time check that the public mapper type is usable
    // standalone (e.g. for custom submissions).
    let _ = JoinMapper::new(catalog);
}
