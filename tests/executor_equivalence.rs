//! Cross-crate differential tests for the unified scheduler.
//!
//! 1. The multi-stage estimator (core, paper Eq. 1–3) produces
//!    **identical confidence intervals** whether the job ran on
//!    job-private task-tracker threads or on a shared slot pool — the
//!    statistics cannot tell the backends apart.
//! 2. A job that loses clusters three different ways at once —
//!    deliberately dropped, degraded after fault-retry exhaustion, and
//!    killed mid-flight — widens its interval **exactly** as a clean
//!    job that deliberately drops the same cluster set: every terminal
//!    non-completion is one dropped cluster to Eq. 1–3, regardless of
//!    how it died.

use std::collections::HashSet;
use std::sync::Arc;
use std::time::Duration;

use approxhadoop::core::multistage::{Aggregation, MultiStageMapper, MultiStageReducer};
use approxhadoop::runtime::control::{Coordinator, JobControl, MapDirective};
use approxhadoop::runtime::engine::{
    run_job_on_pool, run_job_process, run_job_with_coordinator, run_job_with_session, JobConfig,
    WorkerSpec,
};
use approxhadoop::runtime::fault::{FaultDecision, FaultPlan, FaultPolicy};
use approxhadoop::runtime::input::{SplitMeta, VecSource};
use approxhadoop::runtime::metrics::{MapStats, TaskOutcome};
use approxhadoop::runtime::pool::SlotPool;
use approxhadoop::runtime::{FixedCoordinator, JobId, JobSession, TaskId};
use approxhadoop::stats::sampling::random_order;
use approxhadoop::stats::Interval;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn value_blocks(n_blocks: usize, per_block: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n_blocks)
        .map(|_| (0..per_block).map(|_| rng.gen_range(0.0..10.0)).collect())
        .collect()
}

/// Serial deterministic config shared by both backends: one slot on one
/// server, zero retry backoff, sampling + dropping + io faults engaged.
fn serial_config(seed: u64) -> JobConfig {
    JobConfig {
        map_slots: 1,
        servers: 1,
        reduce_tasks: 2,
        seed,
        fault_plan: Some(FaultPlan {
            seed,
            map_io_error_prob: 0.15,
            ..Default::default()
        }),
        fault_policy: FaultPolicy {
            max_task_retries: 2,
            retry_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            degrade_to_drop: true,
            blacklist_after: 0,
            ..Default::default()
        },
        ..Default::default()
    }
}

fn ms_map(x: &f64, emit: &mut dyn FnMut(u8, f64)) {
    emit((*x as u64 % 5) as u8, *x)
}

/// The two backends feed the multi-stage estimator identical cluster
/// data in identical order, so the resulting intervals must be equal to
/// the last bit — estimate, half-width and confidence alike.
#[test]
fn multistage_intervals_are_identical_across_backends() {
    let n_blocks = 30;
    for seed in [5u64, 23, 91] {
        let blocks = value_blocks(n_blocks, 80, seed);
        let cfg = serial_config(seed);

        let mut c1 = FixedCoordinator::new(n_blocks, 0.6, 0.25, seed);
        let s1 = JobSession::new(JobId(7));
        let scoped = run_job_with_session(
            &VecSource::new(blocks.clone()),
            &MultiStageMapper::new(ms_map),
            |_| MultiStageReducer::<u8>::new(Aggregation::Sum, 0.95),
            cfg.clone(),
            &mut c1,
            &s1,
        )
        .unwrap();

        let pool = SlotPool::new(1);
        let tenant = pool.register_tenant(1.0);
        let mut c2 = FixedCoordinator::new(n_blocks, 0.6, 0.25, seed);
        let s2 = JobSession::new(JobId(7));
        let pooled = run_job_on_pool(
            Arc::new(VecSource::new(blocks.clone())),
            Arc::new(MultiStageMapper::new(ms_map)),
            |_| MultiStageReducer::<u8>::new(Aggregation::Sum, 0.95),
            cfg.clone(),
            &mut c2,
            &pool,
            tenant,
            &s2,
        )
        .unwrap();
        pool.unregister_tenant(tenant);

        // Third leg: the same job on worker OS processes. The mapper
        // lives in the `approx-worker` binary (same map function, same
        // KeyStat shuffle), so identical intervals prove the wire
        // protocol, mmap'd block reads and spill-capable shuffle are
        // invisible to the estimators.
        let spec = WorkerSpec::new(env!("CARGO_BIN_EXE_approx-worker"), "multistage-mod5-sum");
        let mut c3 = FixedCoordinator::new(n_blocks, 0.6, 0.25, seed);
        let s3 = JobSession::new(JobId(7));
        let processed = run_job_process(
            &VecSource::new(blocks),
            &spec,
            |_| MultiStageReducer::<u8>::new(Aggregation::Sum, 0.95),
            JobConfig { workers: 1, ..cfg },
            &mut c3,
            &s3,
        )
        .unwrap();

        let mut a: Vec<(u8, Interval)> = scoped.outputs;
        let mut b: Vec<(u8, Interval)> = pooled.outputs;
        let mut c: Vec<(u8, Interval)> = processed.outputs;
        a.sort_by_key(|(k, _)| *k);
        b.sort_by_key(|(k, _)| *k);
        c.sort_by_key(|(k, _)| *k);
        assert_eq!(a, b, "seed {seed}: intervals diverged between backends");
        assert_eq!(
            a, c,
            "seed {seed}: process-backend intervals diverged from in-process"
        );
        assert_eq!(
            scoped.metrics.dropped_maps, processed.metrics.dropped_maps,
            "seed {seed}: process backend dropped a different cluster set"
        );
        assert_eq!(
            scoped.metrics.degraded_to_drop, processed.metrics.degraded_to_drop,
            "seed {seed}: process backend degraded differently"
        );
        assert!(
            a.iter().any(|(_, iv)| iv.half_width > 0.0),
            "seed {seed}: the approximate run must have nonzero error bounds"
        );
        assert_eq!(
            scoped.metrics.dropped_maps, pooled.metrics.dropped_maps,
            "seed {seed}"
        );
        assert!(
            scoped.metrics.dropped_maps > 0,
            "seed {seed}: drops must be exercised"
        );
        assert_eq!(
            scoped.metrics.degraded_to_drop, pooled.metrics.degraded_to_drop,
            "seed {seed}"
        );
    }
}

/// The two-input join leg of the differential suite: the tagged
/// multi-dataset scheduler, the Bloom pre-filter and the per-stratum
/// estimators produce **bit-identical** outcomes on scoped threads,
/// the shared slot pool, and worker OS processes — the process leg
/// additionally proves the catalogue survives the params blob and the
/// worker rebuilds the same Bloom filter in another address space.
#[test]
fn join_outcomes_are_identical_across_backends() {
    use approxhadoop::runtime::control::DatasetRatios;
    use approxhadoop::workloads::join::{self, JoinWorkload, PageCatalog};
    use approxhadoop::workloads::wikilog::WikiLog;

    for seed in [5u64, 23, 91] {
        let w = JoinWorkload {
            log: WikiLog {
                days: 1,
                entries_per_block: 250,
                blocks_per_day: 10,
                pages: 2_000,
                projects: 10,
                seed,
            },
            catalog: PageCatalog {
                pages: 1_200,
                pages_per_block: 400,
                categories: 4,
                seed,
                fpr: 0.01,
            },
        };
        let ratios = DatasetRatios {
            sampling_ratio: 0.6,
            drop_ratio: 0.25,
        };
        // Faults only on the log side's schedule positions would be
        // ideal, but the plan is task-indexed and the catalogue must
        // complete — keep retries generous so io faults never degrade
        // a build-side cluster to a drop.
        let cfg = JobConfig {
            fault_policy: FaultPolicy {
                max_task_retries: 6,
                retry_backoff: Duration::ZERO,
                max_backoff: Duration::ZERO,
                degrade_to_drop: true,
                blacklist_after: 0,
                ..Default::default()
            },
            ..serial_config(seed)
        };

        let scoped = join::join_category_traffic(&w, ratios, cfg.clone(), 0.95).unwrap();
        let pooled = join::join_category_traffic_pooled(&w, ratios, cfg.clone(), 0.95, 1).unwrap();
        let spec = WorkerSpec::new(env!("CARGO_BIN_EXE_approx-worker"), join::JOIN_JOB);
        let processed = join::join_category_traffic_process(
            &w,
            ratios,
            JobConfig { workers: 1, ..cfg },
            0.95,
            &spec,
        )
        .unwrap();

        assert_eq!(
            scoped.categories, pooled.categories,
            "seed {seed}: join strata diverged between scoped and pooled"
        );
        assert_eq!(
            scoped.categories, processed.categories,
            "seed {seed}: join strata diverged between scoped and process"
        );
        assert_eq!(scoped.combined, pooled.combined, "seed {seed}");
        assert_eq!(scoped.combined, processed.combined, "seed {seed}");
        assert_eq!(
            scoped.metrics.dropped_maps, pooled.metrics.dropped_maps,
            "seed {seed}"
        );
        assert_eq!(
            scoped.metrics.dropped_maps, processed.metrics.dropped_maps,
            "seed {seed}"
        );
        assert!(
            scoped.metrics.dropped_maps > 0,
            "seed {seed}: log-side drops must be exercised"
        );
        assert!(
            scoped
                .categories
                .iter()
                .all(|(_, iv)| iv.half_width > 0.0 && iv.half_width.is_finite()),
            "seed {seed}: sampled strata must carry real bounds"
        );
    }
}

/// Run-A policy: deliberately drop a planned set at schedule time, then
/// request that everything still outstanding be dropped once enough
/// maps have completed (killing whatever is mid-flight).
struct PlannedStopCoordinator {
    planned: HashSet<usize>,
    completions: usize,
    stop_after: usize,
}

impl Coordinator for PlannedStopCoordinator {
    fn directive(&mut self, task: TaskId, _meta: &SplitMeta) -> MapDirective {
        if self.planned.contains(&task.0) {
            MapDirective::Drop
        } else {
            MapDirective::Run {
                sampling_ratio: 1.0,
            }
        }
    }

    fn on_map_complete(&mut self, _stats: &MapStats) {
        self.completions += 1;
    }

    fn want_drop_remaining(&mut self, _control: &JobControl) -> bool {
        self.completions >= self.stop_after
    }
}

/// Run-B policy: deliberately drop exactly the given set, run the rest
/// precisely.
struct SetDropCoordinator {
    drop: HashSet<usize>,
}

impl Coordinator for SetDropCoordinator {
    fn directive(&mut self, task: TaskId, _meta: &SplitMeta) -> MapDirective {
        if self.drop.contains(&task.0) {
            MapDirective::Drop
        } else {
            MapDirective::Run {
                sampling_ratio: 1.0,
            }
        }
    }
}

/// Finds a fault seed whose io plan spares the slow task's first attempt
/// (so it stays alive long enough to be killed) while failing at least
/// one task that is dispatched early (so the degrade path fires).
fn pick_fault_seed(base: u64, slow: usize, early: &[usize]) -> u64 {
    for fs in base.. {
        let plan = FaultPlan {
            seed: fs,
            map_io_error_prob: 0.2,
            ..Default::default()
        };
        let slow_clean = plan.decide(slow, 0) == FaultDecision::None;
        let some_early_fault = early
            .iter()
            .any(|t| plan.decide(*t, 0) == FaultDecision::IoError);
        if slow_clean && some_early_fault {
            return fs;
        }
    }
    unreachable!("some seed satisfies the predicate")
}

/// Satellite acceptance test: dropped + degraded + killed clusters in
/// ONE job widen the interval exactly like the same set of deliberate
/// drops — across a three-seed matrix.
#[test]
fn mixed_loss_modes_widen_exactly_like_deliberate_drops() {
    let n_blocks = 36;
    let per_block = 50;
    for seed in [1u64, 2, 3] {
        // Replicate the tracker's dispatch order so we can pick a slow
        // task that is guaranteed to be launched first (and therefore
        // still running when the stop fires) and a planned-drop set
        // right behind it.
        let mut order_rng = StdRng::seed_from_u64(seed);
        let order = random_order(&mut order_rng, n_blocks);
        let slow = order[0];
        let planned: HashSet<usize> = order[1..4].iter().copied().collect();
        let fault_seed = pick_fault_seed(seed + 100, slow, &order[4..16]);

        // Items carry their block id so the mapper can stall only the
        // designated slow cluster (the estimator only sees the value).
        let raw = value_blocks(n_blocks, per_block, seed);
        let blocks: Vec<Vec<(usize, f64)>> = raw
            .iter()
            .enumerate()
            .map(|(b, vs)| vs.iter().map(|v| (b, *v)).collect())
            .collect();
        let map_fn = move |item: &(usize, f64), emit: &mut dyn FnMut(u8, f64)| {
            if item.0 == slow {
                std::thread::sleep(Duration::from_millis(3));
            }
            emit(0, item.1)
        };

        // Run A: planned drops + io-fault degrades + a mid-flight kill.
        let mut coord_a = PlannedStopCoordinator {
            planned: planned.clone(),
            completions: 0,
            stop_after: 20,
        };
        let a = run_job_with_coordinator(
            &VecSource::new(blocks.clone()),
            &MultiStageMapper::new(map_fn),
            |_| MultiStageReducer::<u8>::new(Aggregation::Sum, 0.95),
            JobConfig {
                map_slots: 2,
                servers: 1,
                seed,
                fault_plan: Some(FaultPlan {
                    seed: fault_seed,
                    map_io_error_prob: 0.2,
                    ..Default::default()
                }),
                fault_policy: FaultPolicy::tolerant(0),
                ..Default::default()
            },
            &mut coord_a,
        )
        .unwrap();
        let ma = &a.metrics;
        assert!(ma.dropped_maps > 0, "seed {seed}: no deliberate drops");
        assert!(ma.degraded_to_drop > 0, "seed {seed}: no degraded tasks");
        assert!(ma.killed_maps > 0, "seed {seed}: no mid-flight kill");
        assert_eq!(
            ma.executed_maps + ma.dropped_maps + ma.killed_maps + ma.degraded_to_drop,
            n_blocks,
            "seed {seed}: every task must reach a terminal state"
        );

        // Every non-completed task, however it died, is one lost cluster.
        let lost: HashSet<usize> = ma
            .task_outcomes
            .iter()
            .filter(|r| r.outcome != TaskOutcome::Completed)
            .map(|r| r.task.0)
            .collect();
        assert!(lost.contains(&slow), "seed {seed}: slow task must be lost");
        assert!(
            planned.iter().all(|t| lost.contains(t)),
            "seed {seed}: planned drops must be lost"
        );
        assert_eq!(n_blocks - lost.len(), ma.executed_maps, "seed {seed}");

        // Run B: a clean job deliberately dropping exactly the same set.
        let mut coord_b = SetDropCoordinator { drop: lost.clone() };
        let b = run_job_with_coordinator(
            &VecSource::new(blocks.clone()),
            &MultiStageMapper::new(move |item: &(usize, f64), emit: &mut dyn FnMut(u8, f64)| {
                emit(0, item.1)
            }),
            |_| MultiStageReducer::<u8>::new(Aggregation::Sum, 0.95),
            JobConfig {
                map_slots: 1,
                servers: 1,
                seed,
                ..Default::default()
            },
            &mut coord_b,
        )
        .unwrap();
        let mb = &b.metrics;
        assert_eq!(mb.dropped_maps, lost.len(), "seed {seed}");
        assert_eq!(mb.executed_maps, ma.executed_maps, "seed {seed}");
        assert_eq!(mb.killed_maps, 0, "seed {seed}");
        assert_eq!(mb.degraded_to_drop, 0, "seed {seed}");

        // Eq. 1–3 see the same n executed clusters out of N: identical
        // widening, up to float summation order across the two slots.
        let (_, iva) = a.outputs[0];
        let (_, ivb) = b.outputs[0];
        assert!(
            iva.half_width > 0.0 && iva.half_width.is_finite(),
            "seed {seed}: lossy run must carry a real bound"
        );
        let est_tol = 1e-9 * iva.estimate.abs().max(1.0);
        let hw_tol = 1e-9 * iva.half_width.max(1.0);
        assert!(
            (iva.estimate - ivb.estimate).abs() <= est_tol,
            "seed {seed}: estimates diverged: {} vs {}",
            iva.estimate,
            ivb.estimate
        );
        assert!(
            (iva.half_width - ivb.half_width).abs() <= hw_tol,
            "seed {seed}: widening diverged: {} vs {}",
            iva.half_width,
            ivb.half_width
        );
        // And the mixed-loss interval still contains the truth over the
        // executed clusters' population estimate target: the full sum.
        let truth: f64 = raw.iter().flatten().sum();
        assert!(
            iva.contains(truth),
            "seed {seed}: {} ± {} must contain {truth}",
            iva.estimate,
            iva.half_width
        );
    }
}
