//! A dependency-free HTTP exporter for live observability.
//!
//! [`serve_metrics`] binds a [`std::net::TcpListener`] and serves three
//! read-only endpoints off a background thread, hand-rolling just
//! enough HTTP/1.1 (request-line parsing, `Content-Length`,
//! `Connection: close`) to satisfy `curl`, Prometheus scrapers, and
//! browsers — the same no-framework discipline as the rest of the
//! crate:
//!
//! * `GET /metrics` — the registry's Prometheus text exposition;
//! * `GET /trace` — the tracer's Chrome-trace JSON (load it in
//!   `chrome://tracing` / Perfetto while the job still runs);
//! * `GET /jobs` — per-job bound-convergence series recorded on the
//!   [`JobsBoard`], as JSON.
//!
//! The returned [`ObsServer`] owns the thread; dropping it stops the
//! listener (a self-connect unblocks the pending `accept`).

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::Obs;

/// One point of a job's bound-convergence series: the worst relative
/// 95%-confidence bound some reducer reported after `maps_processed`
/// map outputs, `t_secs` into the job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundSample {
    /// Seconds since the job started.
    pub t_secs: f64,
    /// Reducer index that reported the bound.
    pub reducer: usize,
    /// Map outputs the reducer had consumed at report time.
    pub maps_processed: u64,
    /// Relative half-width of the interval (0 = exact).
    pub relative_bound: f64,
}

/// Per-job bound-convergence series, keyed by job label — the data
/// behind the `/jobs` endpoint. Bounded per job so a long-running
/// service cannot grow without limit.
#[derive(Debug, Default)]
pub struct JobsBoard {
    series: Mutex<std::collections::BTreeMap<String, Vec<BoundSample>>>,
}

/// Points kept per job; older points are discarded front-first.
const MAX_POINTS_PER_JOB: usize = 4096;

impl JobsBoard {
    /// Appends one sample to `job`'s series.
    pub fn record(&self, job: &str, sample: BoundSample) {
        let mut series = self.series.lock();
        let points = series.entry(job.to_string()).or_default();
        if points.len() >= MAX_POINTS_PER_JOB {
            points.remove(0);
        }
        points.push(sample);
    }

    /// The recorded series for `job` (empty if unknown).
    pub fn series(&self, job: &str) -> Vec<BoundSample> {
        self.series.lock().get(job).cloned().unwrap_or_default()
    }

    /// Renders every job's series as one JSON document:
    /// `{"jobs":{"job_0001":[{"t_secs":…,…},…],…}}`.
    pub fn render_json(&self) -> String {
        let series = self.series.lock();
        let mut out = String::from("{\"jobs\":{");
        for (i, (job, points)) in series.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&crate::trace::arg_str("", job).json);
            out.push_str(":[");
            for (j, p) in points.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"t_secs\":{},\"reducer\":{},\"maps_processed\":{},\"relative_bound\":{}}}",
                    json_num(p.t_secs),
                    p.reducer,
                    p.maps_processed,
                    json_num(p.relative_bound)
                ));
            }
            out.push(']');
        }
        out.push_str("}}");
        out
    }
}

/// JSON number rendering: non-finite values become `null`.
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Handle to a running exporter; dropping it shuts the listener down.
#[derive(Debug)]
pub struct ObsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ObsServer {
    /// The address the listener actually bound (port 0 resolves here).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for ObsServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop so the thread observes the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Starts the HTTP exporter on `addr` (e.g. `127.0.0.1:9090`; port `0`
/// picks a free one — read it back from [`ObsServer::local_addr`]).
/// Requests are served from a single background thread; every response
/// is rendered fresh from `obs` at request time.
pub fn serve_metrics(addr: &str, obs: Arc<Obs>) -> std::io::Result<ObsServer> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let thread = std::thread::Builder::new()
        .name("obs-http".to_string())
        .spawn(move || {
            for conn in listener.incoming() {
                if stop_flag.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let _ = serve_one(stream, &obs);
            }
        })?;
    Ok(ObsServer {
        addr,
        stop,
        thread: Some(thread),
    })
}

/// Writes a complete `Connection: close` HTTP/1.1 response.
fn respond(
    stream: &mut TcpStream,
    status: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// How one request head was (or failed to be) read.
enum HeadRead {
    /// Complete head, terminated by `\r\n\r\n`.
    Complete(usize),
    /// Peer closed before sending any byte — nothing to answer.
    Empty,
    /// Peer closed (or went silent past the read timeout) mid-head.
    Truncated,
    /// The head outgrew the buffer without a terminator.
    Oversized,
}

/// Reads the request head into `buf`: up to the `\r\n\r\n` terminator,
/// the buffer's capacity, EOF, or the socket read timeout — whichever
/// comes first. Never spins: every iteration either makes progress or
/// classifies the request as unanswerable.
fn read_head(stream: &mut TcpStream, buf: &mut [u8]) -> std::io::Result<HeadRead> {
    let mut len = 0;
    loop {
        if len == buf.len() {
            return Ok(HeadRead::Oversized);
        }
        match stream.read(&mut buf[len..]) {
            Ok(0) => {
                return Ok(if len == 0 {
                    HeadRead::Empty
                } else {
                    HeadRead::Truncated
                });
            }
            Ok(n) => {
                // Only rescan the tail: the terminator can span at most 3
                // bytes of the previous read.
                let from = len.saturating_sub(3);
                len += n;
                if buf[from..len].windows(4).any(|w| w == b"\r\n\r\n") {
                    return Ok(HeadRead::Complete(len));
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Slow or stalled client: classify instead of erroring so
                // it still gets a 4xx before the close.
                return Ok(HeadRead::Truncated);
            }
            Err(e) => return Err(e),
        }
    }
}

fn serve_one(mut stream: TcpStream, obs: &Obs) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(10)))?;
    // Read until the end of the request head; only the request line is
    // interpreted. 8 KiB is plenty for any GET we answer.
    let mut buf = [0u8; 8192];
    let len = match read_head(&mut stream, &mut buf)? {
        HeadRead::Complete(len) => len,
        // Clean close: the peer never sent anything to answer.
        HeadRead::Empty => return Ok(()),
        HeadRead::Truncated => {
            return respond(
                &mut stream,
                "400 Bad Request",
                "text/plain; charset=utf-8",
                "request head ended before \\r\\n\\r\\n\n",
            );
        }
        HeadRead::Oversized => {
            return respond(
                &mut stream,
                "431 Request Header Fields Too Large",
                "text/plain; charset=utf-8",
                "request head exceeds 8 KiB\n",
            );
        }
    };
    let head = String::from_utf8_lossy(&buf[..len]);
    let request_line = head.lines().next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or_default();
    let path = parts.next().unwrap_or_default();
    let path = path.split('?').next().unwrap_or(path);

    let (status, content_type, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "only GET is supported\n".to_string(),
        )
    } else {
        match path {
            "/metrics" => (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                obs.registry.render_prometheus(),
            ),
            "/trace" => (
                "200 OK",
                "application/json",
                obs.tracer.render_chrome_trace(),
            ),
            "/jobs" => ("200 OK", "application/json", obs.jobs.render_json()),
            _ => (
                "404 Not Found",
                "text/plain; charset=utf-8",
                "try /metrics, /trace or /jobs\n".to_string(),
            ),
        }
    };
    respond(&mut stream, status, content_type, &body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut s = TcpStream::connect(addr).expect("connect");
        write!(s, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut response = String::new();
        s.read_to_string(&mut response).expect("read response");
        let (head, body) = response.split_once("\r\n\r\n").expect("head/body split");
        (head.to_string(), body.to_string())
    }

    #[test]
    fn endpoints_serve_metrics_trace_and_jobs() {
        let obs = Obs::shared();
        obs.registry
            .counter("approx_worker_records_total", &[("job", "job_0001")])
            .add(42);
        obs.tracer
            .complete("map 0", "task", 0, 100, 1, 1, None, vec![]);
        obs.jobs.record(
            "job_0001",
            BoundSample {
                t_secs: 0.5,
                reducer: 0,
                maps_processed: 3,
                relative_bound: 0.02,
            },
        );
        let server = serve_metrics("127.0.0.1:0", Arc::clone(&obs)).expect("bind");
        let addr = server.local_addr();

        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(body.contains("approx_worker_records_total{job=\"job_0001\"} 42"));

        let (head, body) = get(addr, "/trace");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        let v = json::parse(&body).expect("trace endpoint returns JSON");
        assert!(v.get("traceEvents").is_some());

        let (head, body) = get(addr, "/jobs");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        let v = json::parse(&body).expect("jobs endpoint returns JSON");
        let series = v
            .get("jobs")
            .and_then(|j| j.get("job_0001"))
            .and_then(|s| s.as_array())
            .expect("series for job_0001");
        assert_eq!(series.len(), 1);
        assert_eq!(series[0].get("maps_processed").unwrap().as_f64(), Some(3.0));

        let (head, _) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");
    }

    #[test]
    fn server_stops_on_drop() {
        let obs = Obs::shared();
        let server = serve_metrics("127.0.0.1:0", obs).expect("bind");
        let addr = server.local_addr();
        drop(server);
        // The port is released: either connect fails or the peer closes
        // without answering.
        let answered = TcpStream::connect(addr)
            .map(|mut s| {
                let _ = write!(s, "GET /metrics HTTP/1.1\r\n\r\n");
                let mut out = String::new();
                s.read_to_string(&mut out)
                    .map(|_| !out.is_empty())
                    .unwrap_or(false)
            })
            .unwrap_or(false);
        assert!(!answered, "server answered after drop");
    }

    #[test]
    fn oversized_request_head_gets_431() {
        let obs = Obs::shared();
        let server = serve_metrics("127.0.0.1:0", obs).expect("bind");
        let mut s = TcpStream::connect(server.local_addr()).expect("connect");
        // A request line followed by a header that never ends: exactly
        // the 8 KiB head buffer, no `\r\n\r\n` anywhere. Sending exactly
        // the buffer size lets the server consume every byte before it
        // answers, so the close is a clean FIN rather than an RST that
        // could discard the response.
        let prefix = "GET /metrics HTTP/1.1\r\nX-Pad: ";
        write!(s, "{prefix}").unwrap();
        let pad = vec![b'a'; 8192 - prefix.len()];
        s.write_all(&pad).unwrap();
        s.shutdown(std::net::Shutdown::Write).unwrap();
        let mut response = String::new();
        s.read_to_string(&mut response).expect("read response");
        assert!(
            response.starts_with("HTTP/1.1 431"),
            "expected 431, got: {}",
            response.lines().next().unwrap_or_default()
        );
    }

    #[test]
    fn eof_before_head_terminator_gets_400() {
        let obs = Obs::shared();
        let server = serve_metrics("127.0.0.1:0", obs).expect("bind");
        let mut s = TcpStream::connect(server.local_addr()).expect("connect");
        // Half a request, then shut down our write side: the server sees
        // EOF before `\r\n\r\n` and must answer 400, not hang or die.
        write!(s, "GET /metrics HTT").unwrap();
        s.shutdown(std::net::Shutdown::Write).unwrap();
        let mut response = String::new();
        s.read_to_string(&mut response).expect("read response");
        assert!(
            response.starts_with("HTTP/1.1 400"),
            "expected 400, got: {}",
            response.lines().next().unwrap_or_default()
        );
    }

    #[test]
    fn immediate_close_is_served_cleanly() {
        let obs = Obs::shared();
        let server = serve_metrics("127.0.0.1:0", Arc::clone(&obs)).expect("bind");
        let addr = server.local_addr();
        // Connect-and-close without sending a byte: no response expected,
        // and the server must keep serving afterwards.
        {
            let s = TcpStream::connect(addr).expect("connect");
            s.shutdown(std::net::Shutdown::Write).unwrap();
            let mut resp = String::new();
            let mut s = s;
            s.read_to_string(&mut resp).expect("read");
            assert!(resp.is_empty(), "unexpected response: {resp}");
        }
        let (head, _) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    }

    #[test]
    fn jobs_board_caps_series_length() {
        let board = JobsBoard::default();
        for i in 0..(MAX_POINTS_PER_JOB + 10) {
            board.record(
                "j",
                BoundSample {
                    t_secs: i as f64,
                    reducer: 0,
                    maps_processed: i as u64,
                    relative_bound: 0.1,
                },
            );
        }
        let series = board.series("j");
        assert_eq!(series.len(), MAX_POINTS_PER_JOB);
        assert_eq!(series[0].maps_processed, 10, "oldest points evicted");
    }
}
