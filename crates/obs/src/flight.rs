//! A per-job flight recorder: a small bounded ring of recent events
//! and scheduler decisions, dumped as structured JSON when a job ends
//! badly (job failure, worker crash, degrade budget exhausted), so
//! postmortems do not require rerunning the job with tracing enabled.
//!
//! The recorder is deliberately cheap — one mutex-guarded `VecDeque`
//! of preformatted strings — so it can stay on unconditionally.

use std::collections::VecDeque;

use parking_lot::Mutex;

/// One recorded entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEntry {
    /// Microseconds since the recorder was created.
    pub ts_us: u64,
    /// Entry kind, e.g. `"event"`, `"dispatch"`, `"retry"`, `"degrade"`.
    pub kind: String,
    /// Human-readable detail (usually a `Display`-rendered event).
    pub detail: String,
}

/// Entries kept; older entries are evicted front-first.
const DEFAULT_CAPACITY: usize = 256;

/// A bounded ring of recent [`FlightEntry`]s for one job.
#[derive(Debug)]
pub struct FlightRecorder {
    epoch: std::time::Instant,
    ring: Mutex<Ring>,
}

#[derive(Debug)]
struct Ring {
    entries: VecDeque<FlightEntry>,
    capacity: usize,
    dropped: u64,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::with_capacity(DEFAULT_CAPACITY)
    }
}

impl FlightRecorder {
    /// A recorder keeping at most `capacity` recent entries.
    pub fn with_capacity(capacity: usize) -> Self {
        FlightRecorder {
            epoch: std::time::Instant::now(),
            ring: Mutex::new(Ring {
                entries: VecDeque::with_capacity(capacity.min(DEFAULT_CAPACITY)),
                capacity: capacity.max(1),
                dropped: 0,
            }),
        }
    }

    /// Records one entry, evicting the oldest when full.
    pub fn record(&self, kind: &str, detail: impl Into<String>) {
        let entry = FlightEntry {
            ts_us: self.epoch.elapsed().as_micros() as u64,
            kind: kind.to_string(),
            detail: detail.into(),
        };
        let mut ring = self.ring.lock();
        if ring.entries.len() >= ring.capacity {
            ring.entries.pop_front();
            ring.dropped += 1;
        }
        ring.entries.push_back(entry);
    }

    /// Number of entries currently held.
    pub fn len(&self) -> usize {
        self.ring.lock().entries.len()
    }

    /// True when nothing has been recorded (or everything was evicted).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Renders the ring as a structured JSON document:
    /// `{"job":…,"reason":…,"dropped":…,"entries":[{"ts_us":…,"kind":…,"detail":…},…]}`.
    pub fn dump_json(&self, job: &str, reason: &str) -> String {
        let ring = self.ring.lock();
        let mut out = String::from("{\"job\":");
        out.push_str(&crate::trace::arg_str("", job).json);
        out.push_str(",\"reason\":");
        out.push_str(&crate::trace::arg_str("", reason).json);
        out.push_str(&format!(",\"dropped\":{},\"entries\":[", ring.dropped));
        for (i, e) in ring.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"ts_us\":{},\"kind\":{},\"detail\":{}}}",
                e.ts_us,
                crate::trace::arg_str("", &e.kind).json,
                crate::trace::arg_str("", &e.detail).json
            ));
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let rec = FlightRecorder::with_capacity(3);
        for i in 0..5 {
            rec.record("event", format!("e{i}"));
        }
        assert_eq!(rec.len(), 3);
        let v = json::parse(&rec.dump_json("job_0001", "test")).expect("valid JSON");
        assert_eq!(v.get("dropped").unwrap().as_f64(), Some(2.0));
        let entries = v.get("entries").unwrap().as_array().unwrap();
        assert_eq!(entries.len(), 3);
        assert_eq!(
            entries[0].get("detail").unwrap().as_str(),
            Some("e2"),
            "oldest surviving entry is e2"
        );
        assert_eq!(entries[2].get("detail").unwrap().as_str(), Some("e4"));
    }

    #[test]
    fn dump_escapes_and_labels() {
        let rec = FlightRecorder::default();
        rec.record("decision", "kill \"task 3\"\nreason: slow");
        let dump = rec.dump_json("job with \"quotes\"", "WorkerLost");
        let v = json::parse(&dump).expect("valid JSON despite quotes/newlines");
        assert_eq!(v.get("job").unwrap().as_str(), Some("job with \"quotes\""));
        assert_eq!(v.get("reason").unwrap().as_str(), Some("WorkerLost"));
        let entries = v.get("entries").unwrap().as_array().unwrap();
        assert_eq!(
            entries[0].get("detail").unwrap().as_str(),
            Some("kill \"task 3\"\nreason: slow")
        );
        assert!(entries[0].get("ts_us").unwrap().as_f64().is_some());
    }

    #[test]
    fn timestamps_are_monotonic() {
        let rec = FlightRecorder::default();
        rec.record("a", "first");
        std::thread::sleep(std::time::Duration::from_millis(2));
        rec.record("b", "second");
        let v = json::parse(&rec.dump_json("j", "r")).unwrap();
        let entries = v.get("entries").unwrap().as_array().unwrap();
        let t0 = entries[0].get("ts_us").unwrap().as_f64().unwrap();
        let t1 = entries[1].get("ts_us").unwrap().as_f64().unwrap();
        assert!(t1 > t0);
    }
}
