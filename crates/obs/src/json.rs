//! A minimal recursive-descent JSON parser used to *validate* exporter
//! output. The in-tree `serde_json` shim is writer-only, so tests and
//! the CI smoke check need an independent reader; this one builds a
//! tiny DOM ([`Value`]) sufficient for structural assertions (object
//! member lookup, array iteration) without any external dependency.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object. Duplicate keys keep the last value.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on objects; `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The array elements, or `None` for non-arrays.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The number, or `None` for non-numbers.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string slice, or `None` for non-strings.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }
}

/// Parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses `input` into a [`Value`]; the whole input must be one JSON
/// document (trailing whitespace allowed).
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after document"));
    }
    Ok(v)
}

/// Validates that `input` is well-formed JSON (discards the DOM).
pub fn validate(input: &str) -> Result<(), ParseError> {
    parse(input).map(|_| ())
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(out));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut out = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            out.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(out));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by `\uXXXX` with a low surrogate.
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(c).ok_or_else(|| self.err("bad code point"))?
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&cp) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("bad code point"))?
                            };
                            out.push(ch);
                            continue; // hex4 already advanced pos
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(self.err("unescaped control character in string"))
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input came from &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Reads exactly four hex digits, advancing past them.
    fn hex4(&mut self) -> Result<u32, ParseError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let slice = &self.bytes[self.pos..self.pos + 4];
        let s = std::str::from_utf8(slice).map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: `0` or non-zero digit followed by digits.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit required after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit required in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number slice is ASCII");
        let n: f64 = text.parse().map_err(|_| self.err("number out of range"))?;
        Ok(Value::Number(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("-1.5e2").unwrap(), Value::Number(-150.0));
        assert_eq!(
            parse("\"a\\nb\\u0041\"").unwrap(),
            Value::String("a\nbA".to_string())
        );
        let v = parse("{\"xs\": [1, 2, {\"y\": null}]}").unwrap();
        let xs = v.get("xs").unwrap().as_array().unwrap();
        assert_eq!(xs.len(), 3);
        assert_eq!(xs[0].as_f64(), Some(1.0));
        assert_eq!(xs[2].get("y"), Some(&Value::Null));
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(
            parse("\"\\ud83d\\ude00\"").unwrap(),
            Value::String("😀".to_string())
        );
        assert!(parse("\"\\ud83d\"").is_err());
        assert!(parse("\"\\ude00\"").is_err());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "01",
            "1.",
            "1e",
            "tru",
            "\"\u{1}\"",
            "{} {}",
            "{'a': 1}",
            "[1 2]",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn roundtrips_shim_writer_output() {
        // The serde_json shim writes; we must read what it writes.
        #[derive(serde::Serialize)]
        struct S {
            name: String,
            n: u64,
            x: f64,
            opt: Option<f64>,
            xs: Vec<u32>,
        }
        let s = S {
            name: "a\"b".to_string(),
            n: 7,
            x: 1.25,
            opt: None,
            xs: vec![1, 2],
        };
        let compact = serde_json::to_string(&s).unwrap();
        let pretty = serde_json::to_string_pretty(&s).unwrap();
        let v = parse(&compact).unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("a\"b"));
        assert_eq!(v.get("n").unwrap().as_f64(), Some(7.0));
        assert_eq!(v.get("opt"), Some(&Value::Null));
        assert_eq!(parse(&pretty).unwrap(), v);
    }
}
