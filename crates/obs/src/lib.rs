//! Observability substrate for ApproxHadoop-RS.
//!
//! The paper's target-error mode works because the JobTracker can *see*
//! per-task statistics and error bounds as the job runs; this crate
//! gives the reproduction the same visibility. It bundles:
//!
//! * [`Registry`] — a lock-cheap metrics registry (atomic counters,
//!   gauges, fixed-bucket histograms with p50/p95/p99 snapshots),
//!   rendered either as a Prometheus text exposition
//!   ([`Registry::render_prometheus`]) or a JSON-serializable
//!   [`RegistrySnapshot`].
//! * [`Tracer`] — a bounded ring buffer of span/instant/counter events
//!   with parent links, rendered as Chrome-trace-format JSON
//!   ([`Tracer::render_chrome_trace`]) for `chrome://tracing`.
//! * [`json`] — a small JSON parser for validating exporter output
//!   (the in-tree `serde_json` shim is writer-only).
//! * [`serve_metrics`] — a dependency-free HTTP exporter serving
//!   `/metrics`, `/trace` and `/jobs` live while jobs run.
//! * [`FlightRecorder`] — a bounded ring of recent per-job events,
//!   dumped as JSON when a job ends badly.
//!
//! Everything is in-tree (no external deps beyond the workspace shims)
//! and instrumentation is optional: the runtime threads an
//! `Option<Arc<Obs>>` through, so uninstrumented runs pay nothing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flight;
pub mod http;
pub mod json;
pub mod registry;
pub mod trace;

pub use flight::{FlightEntry, FlightRecorder};
pub use http::{serve_metrics, BoundSample, JobsBoard, ObsServer};
pub use registry::{
    Counter, CounterDelta, CounterSample, DeltaCursor, Gauge, GaugeSample, Histogram,
    HistogramSample, HistogramSnapshot, Label, Registry, RegistrySnapshot,
};
pub use trace::{arg_num, arg_str, SpanId, TraceArg, TraceEvent, Tracer};

use std::sync::Arc;

/// One observability context: a metrics registry plus a tracer, shared
/// by every component of a service or job run.
#[derive(Debug, Default)]
pub struct Obs {
    /// Metrics registry.
    pub registry: Registry,
    /// Span/event tracer.
    pub tracer: Tracer,
    /// Per-job bound-convergence series for the `/jobs` endpoint.
    pub jobs: JobsBoard,
}

impl Obs {
    /// Creates a fresh context behind an `Arc`, ready to clone into
    /// pools, controllers and job configs.
    pub fn shared() -> Arc<Obs> {
        Arc::new(Obs::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_context_feeds_both_sides() {
        let obs = Obs::shared();
        obs.registry.counter("events_total", &[]).inc();
        obs.tracer.instant("boot", "test", 1, 0, vec![]);
        assert_eq!(obs.registry.snapshot().counter_total("events_total"), 1);
        assert_eq!(obs.tracer.events().len(), 1);
    }

    #[test]
    fn concurrent_histogram_increments_are_deterministic() {
        // Satellite: concurrent increments from crossbeam threads must
        // produce a deterministic final count (no lost updates).
        let obs = Obs::shared();
        let h = obs
            .registry
            .histogram_with_bounds("latency_secs", &[], vec![0.25, 0.5, 1.0]);
        const THREADS: usize = 8;
        const PER_THREAD: usize = 2_000;
        crossbeam::thread::scope(|s| {
            for t in 0..THREADS {
                let h = Arc::clone(&h);
                s.spawn(move |_| {
                    for i in 0..PER_THREAD {
                        // Deterministic values spread across buckets.
                        let v = ((t * PER_THREAD + i) % 4) as f64 * 0.3;
                        h.observe(v);
                    }
                });
            }
        })
        .expect("threads join");
        let snap = h.snapshot();
        assert_eq!(snap.count, (THREADS * PER_THREAD) as u64);
        assert_eq!(
            snap.counts.iter().sum::<u64>(),
            (THREADS * PER_THREAD) as u64
        );
        // 0.0 and 0.3 exceed no bound / first bound... bucket split is
        // exact: values cycle 0.0, 0.3, 0.6, 0.9 in equal proportion.
        let quarter = (THREADS * PER_THREAD / 4) as u64;
        assert_eq!(snap.counts, vec![quarter, quarter, 2 * quarter, 0]);
    }

    #[test]
    fn prometheus_render_parses_and_is_stable() {
        // Satellite: line-by-line parse of names/labels/TYPE headers,
        // stable across two renders.
        let obs = Obs::shared();
        obs.registry
            .counter("jobs_total", &[("tenant", "a\"b\\c\nd")])
            .add(3);
        obs.registry.gauge("queue_depth", &[]).set(2.0);
        let h = obs
            .registry
            .histogram_with_bounds("wait_secs", &[("tenant", "a")], vec![0.5, 1.0]);
        h.observe(0.4);
        h.observe(2.0);

        let text = obs.registry.render_prometheus();
        assert_eq!(text, obs.registry.render_prometheus(), "render not stable");

        let mut type_headers = Vec::new();
        let mut samples = Vec::new();
        for line in text.lines() {
            assert!(!line.trim().is_empty(), "no blank lines expected");
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut it = rest.split_whitespace();
                let name = it.next().expect("metric name");
                let kind = it.next().expect("metric kind");
                assert!(matches!(kind, "counter" | "gauge" | "histogram"));
                type_headers.push((name.to_string(), kind.to_string()));
            } else {
                // Sample line: name{labels} value
                let (series, value) = line.rsplit_once(' ').expect("sample line has a value");
                assert!(
                    value.parse::<f64>().is_ok() || value == "+Inf",
                    "unparsable value {value:?} in {line:?}"
                );
                let name = series.split('{').next().expect("series name");
                assert!(
                    name.chars()
                        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                    "bad metric name {name:?}"
                );
                samples.push(series.to_string());
            }
        }
        assert_eq!(
            type_headers,
            vec![
                ("jobs_total".to_string(), "counter".to_string()),
                ("queue_depth".to_string(), "gauge".to_string()),
                ("wait_secs".to_string(), "histogram".to_string()),
            ]
        );
        // Label escaping: quote, backslash and newline escaped.
        assert!(text.contains("jobs_total{tenant=\"a\\\"b\\\\c\\nd\"} 3"));
        // Histogram exposition: cumulative buckets, +Inf, _sum, _count.
        assert!(samples.contains(&"wait_secs_bucket{tenant=\"a\",le=\"0.5\"}".to_string()));
        assert!(samples.contains(&"wait_secs_bucket{tenant=\"a\",le=\"+Inf\"}".to_string()));
        assert!(text.contains("wait_secs_bucket{tenant=\"a\",le=\"0.5\"} 1"));
        assert!(text.contains("wait_secs_bucket{tenant=\"a\",le=\"+Inf\"} 2"));
        assert!(text.contains("wait_secs_count{tenant=\"a\"} 2"));
    }

    #[test]
    fn registry_snapshot_serializes_to_valid_json() {
        let obs = Obs::shared();
        obs.registry.counter("a_total", &[("k", "v")]).inc();
        obs.registry.histogram("h_secs", &[]).observe(0.01);
        let snap = obs.registry.snapshot();
        let text = serde_json::to_string(&snap).expect("snapshot serializes");
        let v = json::parse(&text).expect("snapshot JSON parses");
        let counters = v.get("counters").unwrap().as_array().unwrap();
        assert_eq!(counters[0].get("name").unwrap().as_str(), Some("a_total"));
        let hists = v.get("histograms").unwrap().as_array().unwrap();
        assert_eq!(hists[0].get("count").unwrap().as_f64(), Some(1.0));
    }
}
