//! Lightweight span tracing with a bounded ring buffer and a
//! Chrome-trace-format (`chrome://tracing` / Perfetto) exporter.
//!
//! Spans are recorded *retroactively*: callers time a region however
//! they like and then log one complete event with start + duration.
//! That keeps the hot path to a single short mutex hold per finished
//! span instead of two, and means a span can be recorded from a thread
//! other than the one that ran it (the engine logs task spans from the
//! coordinator thread using the worker-reported timings).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use parking_lot::Mutex;
use serde::{Emitter, Serialize};

/// Identifier of a recorded span, usable as a parent link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(pub u64);

/// One `(key, value)` argument attached to a trace event; values are
/// pre-rendered JSON fragments (see [`arg_str`]/[`arg_num`]).
#[derive(Debug, Clone)]
pub struct TraceArg {
    /// Argument name.
    pub key: String,
    /// Raw JSON for the value (already escaped/encoded).
    pub json: String,
}

/// Renders a string argument (escapes into a JSON string literal).
pub fn arg_str(key: &str, value: &str) -> TraceArg {
    let mut json = String::with_capacity(value.len() + 2);
    json.push('"');
    for c in value.chars() {
        match c {
            '"' => json.push_str("\\\""),
            '\\' => json.push_str("\\\\"),
            '\n' => json.push_str("\\n"),
            '\r' => json.push_str("\\r"),
            '\t' => json.push_str("\\t"),
            c if (c as u32) < 0x20 => json.push_str(&format!("\\u{:04x}", c as u32)),
            c => json.push(c),
        }
    }
    json.push('"');
    TraceArg {
        key: key.to_string(),
        json,
    }
}

/// Renders a numeric argument (non-finite values become `null`).
pub fn arg_num(key: &str, value: f64) -> TraceArg {
    TraceArg {
        key: key.to_string(),
        json: if value.is_finite() {
            format!("{value}")
        } else {
            "null".to_string()
        },
    }
}

/// One event in the ring buffer, closely mirroring the Chrome trace
/// event format.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Chrome phase: `X` complete, `i` instant, `C` counter, `M` metadata.
    pub phase: char,
    /// Event name.
    pub name: String,
    /// Category string (shown as a filterable tag).
    pub category: String,
    /// Microseconds since the tracer's epoch.
    pub ts_us: u64,
    /// Duration in microseconds (complete events only).
    pub dur_us: u64,
    /// Process lane (we use it as a job lane).
    pub pid: u64,
    /// Thread lane (we use it as a slot/worker lane).
    pub tid: u64,
    /// Id of this span, if it is one.
    pub span: Option<SpanId>,
    /// Parent span link, rendered as an `args.parent` value.
    pub parent: Option<SpanId>,
    /// Extra arguments.
    pub args: Vec<TraceArg>,
}

#[derive(Debug)]
struct Ring {
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

/// Span/event recorder (see the module docs). Cheap to share via
/// `Arc`; all recording methods take `&self`.
#[derive(Debug)]
pub struct Tracer {
    epoch: Instant,
    capacity: usize,
    next_span: AtomicU64,
    ring: Mutex<Ring>,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new(Tracer::DEFAULT_CAPACITY)
    }
}

impl Tracer {
    /// Default ring capacity — comfortably holds a loadtest run
    /// (tasks + waves + controller actions) without unbounded growth.
    pub const DEFAULT_CAPACITY: usize = 65_536;

    /// Creates a tracer whose ring keeps at most `capacity` events;
    /// older events are evicted (and counted) once full.
    pub fn new(capacity: usize) -> Self {
        Tracer {
            epoch: Instant::now(),
            capacity: capacity.max(1),
            next_span: AtomicU64::new(1),
            ring: Mutex::new(Ring {
                events: VecDeque::new(),
                dropped: 0,
            }),
        }
    }

    /// Allocates a fresh span id (no event is recorded yet).
    pub fn new_span_id(&self) -> SpanId {
        SpanId(self.next_span.fetch_add(1, Ordering::Relaxed))
    }

    /// Microseconds elapsed since the tracer was created.
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    fn push(&self, ev: TraceEvent) {
        let mut ring = self.ring.lock();
        if ring.events.len() >= self.capacity {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        ring.events.push_back(ev);
    }

    /// Records a completed span (`ph: "X"`). `ts_us`/`dur_us` are in
    /// microseconds relative to [`Tracer::now_us`]'s clock. Returns the
    /// span's id for parent links.
    #[allow(clippy::too_many_arguments)]
    pub fn complete(
        &self,
        name: &str,
        category: &str,
        ts_us: u64,
        dur_us: u64,
        pid: u64,
        tid: u64,
        parent: Option<SpanId>,
        args: Vec<TraceArg>,
    ) -> SpanId {
        let span = self.new_span_id();
        self.complete_as(span, name, category, ts_us, dur_us, pid, tid, parent, args);
        span
    }

    /// Like [`Tracer::complete`], but records under a pre-allocated
    /// span id (from [`Tracer::new_span_id`]). This lets a caller hand
    /// out a span's id as a parent link *before* the span's duration is
    /// known — e.g. tasks inside a wave are logged as they finish,
    /// while the wave span itself is logged once the wave closes.
    #[allow(clippy::too_many_arguments)]
    pub fn complete_as(
        &self,
        span: SpanId,
        name: &str,
        category: &str,
        ts_us: u64,
        dur_us: u64,
        pid: u64,
        tid: u64,
        parent: Option<SpanId>,
        args: Vec<TraceArg>,
    ) {
        self.push(TraceEvent {
            phase: 'X',
            name: name.to_string(),
            category: category.to_string(),
            ts_us,
            dur_us: dur_us.max(1),
            pid,
            tid,
            span: Some(span),
            parent,
            args,
        });
    }

    /// Records an instant event (`ph: "i"`) at the current time.
    pub fn instant(&self, name: &str, category: &str, pid: u64, tid: u64, args: Vec<TraceArg>) {
        let ts_us = self.now_us();
        self.push(TraceEvent {
            phase: 'i',
            name: name.to_string(),
            category: category.to_string(),
            ts_us,
            dur_us: 0,
            pid,
            tid,
            span: None,
            parent: None,
            args,
        });
    }

    /// Records a counter sample (`ph: "C"`) — renders as a stacked
    /// area track in the trace viewer.
    pub fn counter(&self, name: &str, pid: u64, series: &[(&str, f64)]) {
        let ts_us = self.now_us();
        let args = series.iter().map(|(k, v)| arg_num(k, *v)).collect();
        self.push(TraceEvent {
            phase: 'C',
            name: name.to_string(),
            category: "counter".to_string(),
            ts_us,
            dur_us: 0,
            pid,
            tid: 0,
            span: None,
            parent: None,
            args,
        });
    }

    /// Names a `pid` lane in the viewer (`ph: "M"`, `process_name`).
    pub fn name_process(&self, pid: u64, name: &str) {
        self.push(TraceEvent {
            phase: 'M',
            name: "process_name".to_string(),
            category: "__metadata".to_string(),
            ts_us: 0,
            dur_us: 0,
            pid,
            tid: 0,
            span: None,
            parent: None,
            args: vec![arg_str("name", name)],
        });
    }

    /// Names a `tid` lane within a `pid` (`ph: "M"`, `thread_name`).
    pub fn name_thread(&self, pid: u64, tid: u64, name: &str) {
        self.push(TraceEvent {
            phase: 'M',
            name: "thread_name".to_string(),
            category: "__metadata".to_string(),
            ts_us: 0,
            dur_us: 0,
            pid,
            tid,
            span: None,
            parent: None,
            args: vec![arg_str("name", name)],
        });
    }

    /// Number of events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.ring.lock().dropped
    }

    /// Copies the current ring contents (oldest first).
    pub fn events(&self) -> Vec<TraceEvent> {
        self.ring.lock().events.iter().cloned().collect()
    }

    /// Takes the current ring contents (oldest first), leaving the ring
    /// empty. Used by workers that ship completed spans to their parent
    /// after each attempt: every span is delivered exactly once.
    pub fn drain(&self) -> Vec<TraceEvent> {
        self.ring.lock().events.drain(..).collect()
    }

    /// Renders the ring as Chrome trace JSON:
    /// `{"traceEvents": [...], "displayTimeUnit": "ms"}`.
    pub fn render_chrome_trace(&self) -> String {
        let events = self.events();
        let mut out = String::with_capacity(events.len() * 96 + 64);
        out.push_str("{\"traceEvents\":[");
        for (i, ev) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            render_event(&mut out, ev);
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}");
        out
    }
}

fn render_event(out: &mut String, ev: &TraceEvent) {
    out.push_str("{\"ph\":\"");
    out.push(ev.phase);
    out.push_str("\",\"name\":");
    out.push_str(&arg_str("", &ev.name).json);
    out.push_str(",\"cat\":");
    out.push_str(&arg_str("", &ev.category).json);
    out.push_str(&format!(
        ",\"ts\":{},\"pid\":{},\"tid\":{}",
        ev.ts_us, ev.pid, ev.tid
    ));
    if ev.phase == 'X' {
        out.push_str(&format!(",\"dur\":{}", ev.dur_us));
    }
    if ev.phase == 'i' {
        // Instant scope: thread.
        out.push_str(",\"s\":\"t\"");
    }
    let mut args: Vec<&TraceArg> = ev.args.iter().collect();
    let span_arg;
    let parent_arg;
    if let Some(span) = ev.span {
        span_arg = arg_num("span", span.0 as f64);
        args.push(&span_arg);
    }
    if let Some(parent) = ev.parent {
        parent_arg = arg_num("parent", parent.0 as f64);
        args.push(&parent_arg);
    }
    if !args.is_empty() {
        out.push_str(",\"args\":{");
        for (i, a) in args.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&arg_str("", &a.key).json);
            out.push(':');
            out.push_str(&a.json);
        }
        out.push('}');
    }
    out.push('}');
}

impl Serialize for TraceEvent {
    fn serialize(&self, emitter: &mut Emitter) {
        let mut s = String::new();
        render_event(&mut s, self);
        emitter.raw(&s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let t = Tracer::new(3);
        for i in 0..5 {
            t.instant(&format!("e{i}"), "test", 1, 0, vec![]);
        }
        let events = t.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].name, "e2");
        assert_eq!(t.dropped(), 2);
    }

    #[test]
    fn complete_links_parent_and_renders_json() {
        let t = Tracer::new(16);
        let job = t.complete("job", "job", 0, 1000, 1, 0, None, vec![]);
        let wave = t.complete("wave 0", "wave", 0, 400, 1, 0, Some(job), vec![]);
        t.complete(
            "map 3",
            "task",
            10,
            200,
            1,
            1,
            Some(wave),
            vec![arg_num("records", 42.0), arg_str("outcome", "completed")],
        );
        let json = t.render_chrome_trace();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"map 3\""));
        assert!(json.contains("\"outcome\":\"completed\""));
        assert!(json.contains("\"parent\":2"));
        crate::json::validate(&json).expect("chrome trace must be valid JSON");
    }

    #[test]
    fn counter_and_metadata_events_render() {
        let t = Tracer::new(16);
        t.name_process(7, "job_0007");
        t.name_thread(7, 2, "slot 2");
        t.counter("pool", 0, &[("queued", 3.0), ("busy", 2.0)]);
        let json = t.render_chrome_trace();
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"queued\":3"));
        crate::json::validate(&json).expect("valid JSON");
    }

    #[test]
    fn drain_empties_the_ring_exactly_once() {
        let t = Tracer::new(8);
        t.instant("a", "test", 0, 0, vec![]);
        t.instant("b", "test", 0, 0, vec![]);
        let first = t.drain();
        assert_eq!(first.len(), 2);
        assert!(t.drain().is_empty(), "second drain must be empty");
        t.instant("c", "test", 0, 0, vec![]);
        assert_eq!(t.drain().len(), 1);
    }

    #[test]
    fn string_args_escape_control_characters() {
        let a = arg_str("k", "a\"b\\c\nd\u{1}");
        assert_eq!(a.json, "\"a\\\"b\\\\c\\nd\\u0001\"");
        assert_eq!(arg_num("k", f64::NAN).json, "null");
    }
}
