//! A lock-cheap metrics registry: counters, gauges and fixed-bucket
//! histograms.
//!
//! Registration (name + label set → handle) takes a mutex once; the
//! returned [`Counter`]/[`Gauge`]/[`Histogram`] handles are `Arc`s whose
//! hot-path operations are single atomic instructions, so instrumented
//! code never contends on the registry itself. Snapshots and the
//! Prometheus text rendering walk the registry under the same mutex.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge holding one `f64` (stored as bits in an atomic, so reads and
/// writes are lock-free).
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Adds `delta` (compare-and-swap loop; gauges are low-frequency).
    pub fn add(&self, delta: f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self
                .bits
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket histogram. Bucket `i` counts observations `<=
/// bounds[i]`; one implicit `+Inf` bucket catches the rest. All updates
/// are relaxed atomics — concurrent observers never lock.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// One slot per bound plus the `+Inf` overflow slot.
    counts: Vec<AtomicU64>,
    /// Sum of all observations, as f64 bits (CAS loop).
    sum_bits: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// Default latency-oriented buckets, in seconds: 1 ms … 10 s,
    /// roughly ×2.5 per step.
    pub fn default_bounds() -> Vec<f64> {
        vec![
            0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
        ]
    }

    /// Creates a histogram with the given upper bounds (must be finite,
    /// strictly increasing and non-empty).
    ///
    /// # Panics
    ///
    /// Panics on an empty, non-finite or non-increasing bound list.
    pub fn new(bounds: Vec<f64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        for w in bounds.windows(2) {
            assert!(w[0] < w[1], "histogram bounds must be strictly increasing");
        }
        assert!(
            bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite (the +Inf bucket is implicit)"
        );
        let counts = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds,
            counts,
            sum_bits: AtomicU64::new(0f64.to_bits()),
            count: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn observe(&self, v: f64) {
        // partition_point: first bound >= v, i.e. the lowest bucket that
        // contains v; equal-to-bound lands in that bucket (`le` semantics).
        let idx = self.bounds.partition_point(|b| *b < v);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// The configured upper bounds (without the implicit `+Inf`).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// A consistent-enough snapshot for reporting (individual loads are
    /// relaxed; exactness under concurrent writers is not required).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts,
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time view of a [`Histogram`].
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Upper bounds, aligned with the first `bounds.len()` counts.
    pub bounds: Vec<f64>,
    /// Per-bucket (non-cumulative) counts; the last entry is `+Inf`.
    pub counts: Vec<u64>,
    /// Sum of all observations.
    pub sum: f64,
    /// Number of observations.
    pub count: u64,
}

impl HistogramSnapshot {
    /// Estimated `q`-quantile (`q` in `[0, 1]`) by linear interpolation
    /// inside the bucket holding the target rank; `None` when empty.
    /// Observations beyond the last bound clamp to that bound.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            let prev_cum = cum;
            cum += c;
            if cum >= target {
                let hi = self
                    .bounds
                    .get(i)
                    .copied()
                    .unwrap_or_else(|| *self.bounds.last().expect("non-empty bounds"));
                let lo = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                if *c == 0 {
                    return Some(hi);
                }
                let frac = (target - prev_cum) as f64 / *c as f64;
                return Some(lo + frac * (hi - lo));
            }
        }
        self.bounds.last().copied()
    }

    /// Median estimate.
    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.50)
    }

    /// 95th percentile estimate.
    pub fn p95(&self) -> Option<f64> {
        self.quantile(0.95)
    }

    /// 99th percentile estimate.
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }

    /// Mean observation; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum / self.count as f64)
        }
    }
}

/// One `key="value"` label.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, serde::Serialize)]
pub struct Label {
    /// Label name.
    pub key: String,
    /// Label value.
    pub value: String,
}

/// Metric identity: name plus sorted labels.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct MetricKey {
    name: String,
    labels: Vec<Label>,
}

fn metric_key(name: &str, labels: &[(&str, &str)]) -> MetricKey {
    let mut labels: Vec<Label> = labels
        .iter()
        .map(|(k, v)| Label {
            key: (*k).to_string(),
            value: (*v).to_string(),
        })
        .collect();
    labels.sort();
    MetricKey {
        name: name.to_string(),
        labels,
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<MetricKey, Arc<Counter>>,
    gauges: BTreeMap<MetricKey, Arc<Gauge>>,
    histograms: BTreeMap<MetricKey, Arc<Histogram>>,
}

/// The metrics registry (see the module docs).
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<RegistryInner>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Gets or creates the counter `name{labels}`.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        Arc::clone(
            self.inner
                .lock()
                .counters
                .entry(metric_key(name, labels))
                .or_default(),
        )
    }

    /// Gets or creates the gauge `name{labels}`.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        Arc::clone(
            self.inner
                .lock()
                .gauges
                .entry(metric_key(name, labels))
                .or_default(),
        )
    }

    /// Gets or creates the histogram `name{labels}` with
    /// [`Histogram::default_bounds`].
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        self.histogram_with_bounds(name, labels, Histogram::default_bounds())
    }

    /// Gets or creates the histogram `name{labels}`; `bounds` applies
    /// only on first creation.
    pub fn histogram_with_bounds(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        bounds: Vec<f64>,
    ) -> Arc<Histogram> {
        Arc::clone(
            self.inner
                .lock()
                .histograms
                .entry(metric_key(name, labels))
                .or_insert_with(|| Arc::new(Histogram::new(bounds))),
        )
    }

    /// Renders every metric in the Prometheus text exposition format.
    /// Output is deterministic: metrics sort by name, then labels.
    pub fn render_prometheus(&self) -> String {
        let inner = self.inner.lock();
        let mut out = String::new();
        let mut last_type_header = String::new();
        let mut type_header = |out: &mut String, name: &str, kind: &str| {
            let header = format!("# TYPE {name} {kind}\n");
            if header != last_type_header {
                out.push_str(&header);
                last_type_header = header;
            }
        };
        for (key, c) in &inner.counters {
            type_header(&mut out, &key.name, "counter");
            out.push_str(&format!(
                "{}{} {}\n",
                key.name,
                render_labels(&key.labels, None),
                c.get()
            ));
        }
        for (key, g) in &inner.gauges {
            type_header(&mut out, &key.name, "gauge");
            out.push_str(&format!(
                "{}{} {}\n",
                key.name,
                render_labels(&key.labels, None),
                render_float(g.get())
            ));
        }
        for (key, h) in &inner.histograms {
            type_header(&mut out, &key.name, "histogram");
            let snap = h.snapshot();
            let mut cum = 0u64;
            for (i, c) in snap.counts.iter().enumerate() {
                cum += c;
                let le = snap
                    .bounds
                    .get(i)
                    .map(|b| render_float(*b))
                    .unwrap_or_else(|| "+Inf".to_string());
                out.push_str(&format!(
                    "{}_bucket{} {}\n",
                    key.name,
                    render_labels(&key.labels, Some(("le", &le))),
                    cum
                ));
            }
            out.push_str(&format!(
                "{}_sum{} {}\n",
                key.name,
                render_labels(&key.labels, None),
                render_float(snap.sum)
            ));
            out.push_str(&format!(
                "{}_count{} {}\n",
                key.name,
                render_labels(&key.labels, None),
                snap.count
            ));
        }
        out
    }

    /// Counter increments since `cursor` last saw this registry,
    /// high-water-mark style: each call returns only the growth since
    /// the previous call with the same cursor, so successive deltas sum
    /// to the counter totals. Only counters travel — gauges and
    /// histograms stay process-local (gauges are absolute values that
    /// cannot be merged additively, and histogram buckets would need
    /// bound negotiation).
    pub fn counter_deltas(&self, cursor: &mut DeltaCursor) -> Vec<CounterDelta> {
        let inner = self.inner.lock();
        let mut out = Vec::new();
        for (key, c) in &inner.counters {
            let now = c.get();
            let seen = cursor.seen.get(key).copied().unwrap_or(0);
            if now > seen {
                cursor.seen.insert(key.clone(), now);
                out.push(CounterDelta {
                    name: key.name.clone(),
                    labels: key
                        .labels
                        .iter()
                        .map(|l| (l.key.clone(), l.value.clone()))
                        .collect(),
                    delta: now - seen,
                });
            }
        }
        out
    }

    /// Applies counter deltas produced by another registry's
    /// [`Registry::counter_deltas`] — e.g. shipped from a worker
    /// process. Counters are additive, so merging is order-insensitive
    /// and idempotent-per-delta: each delta bumps the matching counter
    /// here (creating it on first sight).
    pub fn merge_delta(&self, deltas: &[CounterDelta]) {
        for d in deltas {
            let labels: Vec<(&str, &str)> = d
                .labels
                .iter()
                .map(|(k, v)| (k.as_str(), v.as_str()))
                .collect();
            self.counter(&d.name, &labels).add(d.delta);
        }
    }

    /// A JSON-serializable snapshot of every metric.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let inner = self.inner.lock();
        RegistrySnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, c)| CounterSample {
                    name: k.name.clone(),
                    labels: k.labels.clone(),
                    value: c.get(),
                })
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, g)| GaugeSample {
                    name: k.name.clone(),
                    labels: k.labels.clone(),
                    value: g.get(),
                })
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, h)| {
                    let snap = h.snapshot();
                    HistogramSample {
                        name: k.name.clone(),
                        labels: k.labels.clone(),
                        count: snap.count,
                        sum: snap.sum,
                        p50: snap.p50(),
                        p95: snap.p95(),
                        p99: snap.p99(),
                    }
                })
                .collect(),
        }
    }
}

/// Prometheus float formatting: plain decimal, `+Inf`/`-Inf`/`NaN`.
fn render_float(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Escapes a Prometheus label value: backslash, double-quote, newline.
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn render_labels(labels: &[Label], extra: Option<(&str, &str)>) -> String {
    if labels.is_empty() && extra.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|l| format!("{}=\"{}\"", l.key, escape_label(&l.value)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{}\"", escape_label(v)));
    }
    format!("{{{}}}", parts.join(","))
}

/// One counter's growth since a [`DeltaCursor`] last observed it —
/// the unit shipped across the worker process boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterDelta {
    /// Metric name.
    pub name: String,
    /// Sorted `(key, value)` labels.
    pub labels: Vec<(String, String)>,
    /// Increment since the cursor's previous read.
    pub delta: u64,
}

/// High-water marks for [`Registry::counter_deltas`]: remembers the
/// last value seen per counter so repeated reads ship only growth.
#[derive(Debug, Default)]
pub struct DeltaCursor {
    seen: BTreeMap<MetricKey, u64>,
}

impl DeltaCursor {
    /// Creates a cursor that has seen nothing (first read ships
    /// every counter's full value).
    pub fn new() -> Self {
        DeltaCursor::default()
    }
}

/// JSON snapshot of one counter.
#[derive(Debug, Clone, serde::Serialize)]
pub struct CounterSample {
    /// Metric name.
    pub name: String,
    /// Labels.
    pub labels: Vec<Label>,
    /// Value at snapshot time.
    pub value: u64,
}

/// JSON snapshot of one gauge.
#[derive(Debug, Clone, serde::Serialize)]
pub struct GaugeSample {
    /// Metric name.
    pub name: String,
    /// Labels.
    pub labels: Vec<Label>,
    /// Value at snapshot time.
    pub value: f64,
}

/// JSON snapshot of one histogram: count, sum and headline quantiles.
#[derive(Debug, Clone, serde::Serialize)]
pub struct HistogramSample {
    /// Metric name.
    pub name: String,
    /// Labels.
    pub labels: Vec<Label>,
    /// Observations recorded.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Estimated median.
    pub p50: Option<f64>,
    /// Estimated 95th percentile.
    pub p95: Option<f64>,
    /// Estimated 99th percentile.
    pub p99: Option<f64>,
}

/// Whole-registry JSON snapshot.
#[derive(Debug, Clone, Default, serde::Serialize)]
pub struct RegistrySnapshot {
    /// All counters.
    pub counters: Vec<CounterSample>,
    /// All gauges.
    pub gauges: Vec<GaugeSample>,
    /// All histograms.
    pub histograms: Vec<HistogramSample>,
}

impl RegistrySnapshot {
    /// Finds a counter by name, summing across label sets.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|c| c.name == name)
            .map(|c| c.value)
            .sum()
    }

    /// Finds the first gauge with `name`.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let r = Registry::new();
        let c = r.counter("requests_total", &[("tenant", "a")]);
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same identity → same handle.
        assert_eq!(r.counter("requests_total", &[("tenant", "a")]).get(), 5);
        // Labels in a different order are the same identity.
        let c2 = r.counter("multi", &[("a", "1"), ("b", "2")]);
        c2.inc();
        assert_eq!(r.counter("multi", &[("b", "2"), ("a", "1")]).get(), 1);

        let g = r.gauge("depth", &[]);
        g.set(3.5);
        g.add(-1.0);
        assert!((g.get() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        let h = Histogram::new(vec![1.0, 2.0, 4.0]);
        // Exactly on a bound lands in that bucket (Prometheus `le`).
        h.observe(1.0);
        h.observe(2.0);
        h.observe(4.0);
        // Strictly inside.
        h.observe(0.5);
        h.observe(3.0);
        // Beyond the last bound → +Inf bucket.
        h.observe(100.0);
        let s = h.snapshot();
        assert_eq!(s.counts, vec![2, 1, 2, 1]);
        assert_eq!(s.count, 6);
        assert!((s.sum - 110.5).abs() < 1e-9);
    }

    #[test]
    fn empty_snapshot_quantiles_are_none() {
        let s = Histogram::new(vec![1.0]).snapshot();
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.p50(), None);
        assert_eq!(s.p99(), None);
        assert_eq!(s.mean(), None);
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let h = Histogram::new(vec![1.0, 2.0]);
        for _ in 0..50 {
            h.observe(0.5); // first bucket
        }
        for _ in 0..50 {
            h.observe(1.5); // second bucket
        }
        let s = h.snapshot();
        // p50 = rank 50 = last obs of first bucket → its upper bound.
        assert_eq!(s.quantile(0.50), Some(1.0));
        // p99 = rank 99, 49/50 through bucket (1, 2].
        let p99 = s.quantile(0.99).unwrap();
        assert!(p99 > 1.9 && p99 <= 2.0, "p99 = {p99}");
        // q = 0 clamps to the first occupied rank.
        assert!(s.quantile(0.0).unwrap() <= 1.0);
        // Everything in +Inf clamps to the last bound.
        let h2 = Histogram::new(vec![1.0]);
        h2.observe(10.0);
        assert_eq!(h2.snapshot().quantile(0.5), Some(1.0));
    }

    #[test]
    #[should_panic]
    fn histogram_rejects_unordered_bounds() {
        Histogram::new(vec![2.0, 1.0]);
    }

    #[test]
    fn counter_deltas_are_high_water_marked() {
        let r = Registry::new();
        let c = r.counter("spill_bytes_total", &[("job", "j1")]);
        let mut cursor = DeltaCursor::new();
        assert!(r.counter_deltas(&mut cursor).is_empty(), "nothing yet");
        c.add(10);
        let d = r.counter_deltas(&mut cursor);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].delta, 10);
        assert_eq!(d[0].labels, vec![("job".to_string(), "j1".to_string())]);
        // No growth → no delta.
        assert!(r.counter_deltas(&mut cursor).is_empty());
        c.add(5);
        let d = r.counter_deltas(&mut cursor);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].delta, 5, "only the growth ships");
    }

    #[test]
    fn merge_delta_accumulates_into_matching_counters() {
        let worker = Registry::new();
        worker.counter("records_total", &[("job", "j")]).add(7);
        worker.counter("spill_runs_total", &[("job", "j")]).add(2);
        let mut cursor = DeltaCursor::new();
        let first = worker.counter_deltas(&mut cursor);
        worker.counter("records_total", &[("job", "j")]).add(3);
        let second = worker.counter_deltas(&mut cursor);

        let parent = Registry::new();
        parent.counter("records_total", &[("job", "j")]).add(100);
        // Order-insensitive: merging in either order yields the totals.
        parent.merge_delta(&second);
        parent.merge_delta(&first);
        let s = parent.snapshot();
        assert_eq!(s.counter_total("records_total"), 110);
        assert_eq!(s.counter_total("spill_runs_total"), 2);
    }

    #[test]
    fn snapshot_lookup_helpers() {
        let r = Registry::new();
        r.counter("x_total", &[("t", "a")]).add(2);
        r.counter("x_total", &[("t", "b")]).add(3);
        r.gauge("depth", &[]).set(7.0);
        let s = r.snapshot();
        assert_eq!(s.counter_total("x_total"), 5);
        assert_eq!(s.gauge("depth"), Some(7.0));
        assert_eq!(s.gauge("missing"), None);
    }
}
