//! Integration tests for the CLI subcommands.

use approxhadoop_cli::args::Args;
use approxhadoop_cli::run;

fn args(s: &str) -> Args {
    Args::parse(s.split_whitespace().map(String::from)).unwrap()
}

#[test]
fn run_rejects_unknown_app() {
    let e = run::run_app(&args("run no-such-app")).unwrap_err();
    assert!(e.to_string().contains("no-such-app"));
}

#[test]
fn run_requires_app_name() {
    assert!(run::run_app(&args("run")).is_err());
}

#[test]
fn run_small_apps_succeed() {
    run::run_app(&args("run total-size --drop 0.25 --sample 0.5 --top 3")).unwrap();
    run::run_app(&args("run client-browser --sample 0.2")).unwrap();
    run::run_app(&args("run bytes-per-access --drop 0.25 --top 3")).unwrap();
}

#[test]
fn run_target_mode_succeeds() {
    run::run_app(&args("run project-popularity --target 5% --top 3")).unwrap();
}

#[test]
fn kmeans_rejects_target_mode() {
    assert!(run::run_app(&args("run kmeans --target 1%")).is_err());
}

#[test]
fn simulate_runs_and_validates() {
    run::simulate(&args("simulate --maps 40 --records 10000 --servers 2")).unwrap();
    run::simulate(&args("simulate --maps 40 --records 10000 --target 2%")).unwrap();
    assert!(run::simulate(&args("simulate --maps 0")).is_err());
}

#[test]
fn bad_scale_is_reported() {
    assert!(run::run_app(&args("run total-size --scale enormous")).is_err());
}
