//! `approxhadoop` — command-line front end for ApproxHadoop-RS.
//!
//! ```text
//! approxhadoop list
//! approxhadoop run <app> [--drop R] [--sample R] [--target X%]
//!                        [--confidence C] [--pilot-tasks N] [--pilot-sample R]
//!                        [--scale small|medium|large] [--seed N]
//!                        [--reduce-tasks N] [--top K]
//! approxhadoop simulate [--maps N] [--records M] [--servers S]
//!                        [--atom] [--s3] [--drop R] [--sample R]
//!                        [--target X%] [--seed N]
//! ```

use approxhadoop_cli::args::{Args, UsageError};
use approxhadoop_cli::run;

const USAGE: &str = "approxhadoop — approximation-enabled MapReduce (ASPLOS'15 reproduction)

USAGE:
  approxhadoop list
      Print the application inventory (paper Table 1).

  approxhadoop run <app> [options]
      Run one application on its synthetic dataset.
      apps: wiki-length | wiki-page-rank | project-popularity |
            page-popularity | request-rate | page-traffic |
            bytes-per-access | total-size | request-size | clients |
            client-browser | attack-frequencies | dept-request-rate |
            mentions-per-paragraph | dc-placement | video-encoding | kmeans
      options:
        --drop R             fraction of map tasks to drop (0..1)
        --sample R           within-block sampling ratio (0..1]
        --target X[%]        target error bound (selects target mode)
        --confidence C       confidence level (default 0.95)
        --pilot-tasks N      pilot wave size (target mode)
        --pilot-sample R     pilot sampling ratio (target mode)
        --scale small|medium|large   dataset size (default small)
        --seed N             RNG seed (default 0)
        --reduce-tasks N     reduce tasks (default 2)
        --top K              keys to print (default 10)
        --fault-plan SPEC    inject faults, e.g. io=0.2,panic=0.05,seed=3
        --max-task-retries N retry failed maps N times, then degrade the
                             task to a dropped cluster (default 0 = abort)
        --fault-bound B      fail a degraded job whose final relative
                             error bound exceeds B (e.g. 0.05)
        --backend B          threads (default) or process: run map
                             attempts in separate worker OS processes
                             (wikilog apps: project-popularity,
                             page-popularity, request-rate, page-traffic)
        --workers N          worker processes (process backend, default 2)
        --shuffle-mem MIB    per-worker shuffle memory budget in MiB
                             before map output spills to disk (default 64)
        --trace-out FILE     write a Chrome trace (job→wave→task→worker
                             spans; worker spans come from the process
                             backend's telemetry frames)
        --metrics-out FILE   write Prometheus text metrics
        --obs-addr HOST:PORT serve GET /metrics (Prometheus text),
                             /trace (Chrome trace JSON) and /jobs
                             (bound-convergence series) live over HTTP
                             while the command runs
        --flight-dir DIR     write a flight-recorder dump (the
                             scheduler's recent decisions as JSON) on
                             job failure or worker crash; the
                             APPROX_FLIGHT_DIR env var is the fallback

  approxhadoop simulate [options]
      Discrete-event cluster simulation (runtime + energy).
      options:
        --maps N --records M --servers S --atom --s3
        --drop R --sample R --target X[%] --seed N

  approxhadoop serve [options]
      Run the multi-tenant job service against a Poisson arrival
      stream of aggregation jobs, printing job events live.
      options:
        --slots N            shared map slots (default 4)
        --jobs N             jobs to fire (default 8)
        --rate R             mean arrivals per second (default 6)
        --blocks N           map tasks per job (default 32)
        --entries N          records per map (default 800)
        --p99-target SECS    admission p99 latency target (default 0.4)
        --controller MODE    admission feedback law: slo (default, the
                             SLO-driven dual controller) or aimd (the
                             legacy additive-increase loop)
        --slo-bound B        accuracy SLO: worst relative interval
                             half-width the controller holds (e.g. 0.05);
                             omit for latency-only control
        --max-drop R         per-job degradation budget (default 0.7)
        --min-sample R       per-job sampling floor (default 0.25)
        --fault-plan SPEC    inject faults into every job's map path
        --max-task-retries N per-task retries before degrade-to-drop
        --fault-bound B      error-bound budget for degraded jobs
        --backend B          threads (default) or process: each job runs
                             on its own worker OS processes instead of
                             the shared slot pool
        --workers N          worker processes per job (process backend)
        --shuffle-mem MIB    per-worker shuffle budget in MiB (default 64)
        --seed N             RNG seed (default 0)
        --trace-out FILE     write a Chrome trace of every tenant
        --metrics-out FILE   write Prometheus text metrics
        --obs-addr HOST:PORT serve /metrics, /trace and /jobs live
                             over HTTP while the service runs

  approxhadoop loadtest [options]
      Fire the same Poisson job stream twice — admission controller
      off, then on — and print a JSON comparison report (throughput,
      p50/p99 latency, per-job error bounds, degradation decisions).
      options: same as serve, but the defaults are heavier so the
      shared pool saturates: --jobs 16, --rate 8, --blocks 48,
      --entries 50000. Also accepts --backend process / --workers N
      (run every job on worker OS processes), --trace-out FILE
      (Chrome trace of both phases), --metrics-out FILE
      (Prometheus text) and --obs-addr HOST:PORT (live /metrics,
      /trace and /jobs over HTTP while the test runs).

      With --find-max-tps the harness searches instead of replaying:
      it hill-climbs the offered arrival rate (double until the SLO
      breaks, then binary refinement) to the maximum sustainable TPS
      at the stated SLO, detects underpowered-generator saturation,
      measures the SLO and AIMD controllers at the knee with the same
      seeds, and prints a SaturationReport as JSON (exit 2 if no
      stable operating point exists).
      search options:
        --slo-p99 SECS       latency SLO held during the search
                             (default: --p99-target)
        --slo-bound B        accuracy SLO (worst relative half-width)
        --slo-tolerance F    fraction of a step's jobs allowed over the
                             latency SLO (default 0.1)
        --start-rate R       first offered rate, jobs/s (default 1)
        --jobs-per-step N    jobs fired per measurement (default 12)
        --max-steps N        step budget (default 12)
        --precision F        stop once the bracket narrows to this
                             fraction of the knee (default 0.15)
        --no-knee-compare    skip the at-the-knee SLO-vs-AIMD phase
        --smoke              seconds-scale search for CI (tiny jobs,
                             6 jobs/step, 7 steps)
";

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(raw) {
        Ok(()) => {}
        Err(e) => {
            eprintln!("error: {e}\n");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    }
}

fn dispatch(raw: Vec<String>) -> Result<(), UsageError> {
    let args = Args::parse(raw)?;
    match args.command.as_str() {
        "" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        "list" => {
            run::list();
            Ok(())
        }
        "run" => run::run_app(&args),
        "simulate" => run::simulate(&args),
        "serve" => run::serve(&args),
        "loadtest" => run::loadtest(&args),
        other => Err(UsageError(format!("unknown command `{other}`"))),
    }
}
