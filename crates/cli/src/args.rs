//! A small, dependency-free argument parser for the CLI.

use std::collections::HashMap;

use approxhadoop_core::spec::{ApproxSpec, PilotSpec};

/// Parsed command line: a subcommand, positional arguments, and
/// `--key value` / `--flag` options.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// The subcommand (first positional token).
    pub command: String,
    /// Remaining positional arguments.
    pub positional: Vec<String>,
    options: HashMap<String, String>,
    flags: Vec<String>,
}

/// A CLI usage error with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UsageError(pub String);

impl std::fmt::Display for UsageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for UsageError {}

impl Args {
    /// Parses raw arguments (without the program name).
    ///
    /// `--key value` pairs become options; a `--key` followed by another
    /// `--…` token (or nothing) becomes a boolean flag.
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Args, UsageError> {
        let mut args = Args::default();
        let mut it = raw.into_iter().peekable();
        while let Some(tok) = it.next() {
            if let Some(key) = tok.strip_prefix("--") {
                if key.is_empty() {
                    return Err(UsageError("empty option name `--`".into()));
                }
                match it.peek() {
                    Some(next) if !next.starts_with("--") => {
                        let value = it.next().expect("peeked");
                        args.options.insert(key.to_string(), value);
                    }
                    _ => args.flags.push(key.to_string()),
                }
            } else if args.command.is_empty() {
                args.command = tok;
            } else {
                args.positional.push(tok);
            }
        }
        Ok(args)
    }

    /// String option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// Whether a boolean flag was given.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }

    /// Typed option with a default.
    pub fn get_parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, UsageError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| UsageError(format!("invalid value for --{key}: `{v}`"))),
        }
    }

    /// Builds the [`ApproxSpec`] from `--drop`, `--sample`, `--target`,
    /// `--confidence`, `--pilot-tasks`, `--pilot-sample`.
    ///
    /// Precedence: `--target` selects target-error mode; otherwise any of
    /// `--drop`/`--sample` selects ratio mode; otherwise precise.
    pub fn approx_spec(&self) -> Result<ApproxSpec, UsageError> {
        let confidence: f64 = self.get_parsed("confidence", 0.95)?;
        if let Some(t) = self.get("target") {
            let target: f64 = t
                .trim_end_matches('%')
                .parse()
                .map_err(|_| UsageError(format!("invalid --target `{t}`")))?;
            // Accept either a fraction (0.01) or a percentage (1%).
            let target = if t.ends_with('%') {
                target / 100.0
            } else {
                target
            };
            let mut spec = ApproxSpec::Target {
                target: approxhadoop_core::spec::ErrorTarget::Relative(target),
                confidence,
                pilot: None,
            };
            if self.get("pilot-tasks").is_some() || self.get("pilot-sample").is_some() {
                spec = spec.with_pilot(PilotSpec {
                    tasks: self.get_parsed("pilot-tasks", 4usize)?,
                    sampling_ratio: self.get_parsed("pilot-sample", 0.01f64)?,
                });
            }
            return Ok(spec);
        }
        let drop: f64 = self.get_parsed("drop", 0.0)?;
        let sample: f64 = self.get_parsed("sample", 1.0)?;
        // Reject out-of-range ratios here, at the user boundary: a typo'd
        // `--sample 0` used to be clamped deep in the sampler to a
        // 1-in-a-billion sample, yielding a garbage interval instead of
        // an error.
        if !(sample > 0.0 && sample <= 1.0) {
            return Err(UsageError(format!(
                "--sample must lie in (0, 1], got `{sample}`"
            )));
        }
        if !(0.0..1.0).contains(&drop) {
            return Err(UsageError(format!(
                "--drop must lie in [0, 1), got `{drop}`"
            )));
        }
        if drop == 0.0 && sample >= 1.0 {
            Ok(ApproxSpec::Precise)
        } else {
            Ok(ApproxSpec::ratios(drop, sample))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use approxhadoop_core::spec::ErrorTarget;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from)).unwrap()
    }

    #[test]
    fn parses_command_positionals_options_flags() {
        let a = parse("run project-popularity --drop 0.25 --json --seed 7");
        assert_eq!(a.command, "run");
        assert_eq!(a.positional, vec!["project-popularity"]);
        assert_eq!(a.get("drop"), Some("0.25"));
        assert!(a.flag("json"));
        assert_eq!(a.get_parsed::<u64>("seed", 0).unwrap(), 7);
        assert_eq!(a.get_parsed::<u64>("missing", 42).unwrap(), 42);
    }

    #[test]
    fn default_spec_is_precise() {
        assert_eq!(parse("run x").approx_spec().unwrap(), ApproxSpec::Precise);
    }

    #[test]
    fn ratio_spec_from_options() {
        let s = parse("run x --drop 0.25 --sample 0.1")
            .approx_spec()
            .unwrap();
        assert_eq!(s, ApproxSpec::ratios(0.25, 0.1));
    }

    #[test]
    fn target_spec_accepts_percent_and_fraction() {
        let s = parse("run x --target 1%").approx_spec().unwrap();
        match s {
            ApproxSpec::Target {
                target: ErrorTarget::Relative(t),
                ..
            } => {
                assert!((t - 0.01).abs() < 1e-12)
            }
            _ => panic!("expected target spec"),
        }
        let s = parse("run x --target 0.05 --confidence 0.99")
            .approx_spec()
            .unwrap();
        match s {
            ApproxSpec::Target {
                target: ErrorTarget::Relative(t),
                confidence,
                ..
            } => {
                assert!((t - 0.05).abs() < 1e-12);
                assert!((confidence - 0.99).abs() < 1e-12);
            }
            _ => panic!("expected target spec"),
        }
    }

    #[test]
    fn pilot_options() {
        let s = parse("run x --target 1% --pilot-tasks 6 --pilot-sample 0.05")
            .approx_spec()
            .unwrap();
        match s {
            ApproxSpec::Target { pilot: Some(p), .. } => {
                assert_eq!(p.tasks, 6);
                assert!((p.sampling_ratio - 0.05).abs() < 1e-12);
            }
            _ => panic!("expected pilot"),
        }
    }

    #[test]
    fn bad_values_are_reported() {
        assert!(parse("run x --target nope").approx_spec().is_err());
        let a = parse("run x --seed abc");
        assert!(a.get_parsed::<u64>("seed", 0).is_err());
        assert!(Args::parse(vec!["--".to_string()]).is_err());
    }

    #[test]
    fn out_of_range_ratios_are_rejected() {
        // Regression: `--sample 0` used to silently clamp to a 1e-9
        // sampling ratio instead of erroring out.
        assert!(parse("run x --sample 0").approx_spec().is_err());
        assert!(parse("run x --sample -0.5").approx_spec().is_err());
        assert!(parse("run x --sample 1.5").approx_spec().is_err());
        assert!(parse("run x --sample nan").approx_spec().is_err());
        assert!(parse("run x --drop 1").approx_spec().is_err());
        assert!(parse("run x --drop -0.1").approx_spec().is_err());
        // Boundary values stay accepted.
        assert_eq!(
            parse("run x --sample 1 --drop 0").approx_spec().unwrap(),
            ApproxSpec::Precise
        );
        assert_eq!(
            parse("run x --sample 0.01").approx_spec().unwrap(),
            ApproxSpec::ratios(0.0, 0.01)
        );
    }
}
