//! Library surface of the `approxhadoop` CLI (exposed so the command
//! logic is integration-testable).

#![forbid(unsafe_code)]

pub mod args;
pub mod run;
