//! Subcommand implementations.

use approxhadoop_cluster::{simulate as sim, ClusterSpec, SimApprox, SimJobSpec};
use approxhadoop_core::job::ApproxResult;
use approxhadoop_core::spec::{ApproxSpec, ErrorTarget};
use approxhadoop_runtime::engine::JobConfig;
use approxhadoop_runtime::fault::{FaultPlan, FaultPolicy};
use approxhadoop_runtime::metrics::JobMetrics;
use approxhadoop_stats::Interval;
use approxhadoop_workloads::apps;
use approxhadoop_workloads::dcgrid::{AnnealConfig, Grid};
use approxhadoop_workloads::deptlog::DeptLog;
use approxhadoop_workloads::kmeans::DocVectors;
use approxhadoop_workloads::wikidump::WikiDump;
use approxhadoop_workloads::wikilog::WikiLog;
use approxhadoop_workloads::APPLICATIONS;

use crate::args::{Args, UsageError};

/// Observability sinks requested on the command line: `--trace-out`
/// writes Chrome trace-format JSON (load it at `chrome://tracing` or
/// in Perfetto), `--metrics-out` writes the Prometheus text
/// exposition of the metrics registry, and `--obs-addr HOST:PORT`
/// serves both live over HTTP (`GET /metrics`, `/trace`, `/jobs`)
/// for the duration of the command.
struct ObsSinks {
    obs: std::sync::Arc<approxhadoop_obs::Obs>,
    trace_out: Option<String>,
    metrics_out: Option<String>,
    /// Keeps the HTTP exporter alive until the command finishes.
    _server: Option<approxhadoop_obs::ObsServer>,
}

/// `Some` only when at least one sink flag was given — uninstrumented
/// runs stay uninstrumented.
fn obs_sinks(args: &Args) -> Result<Option<ObsSinks>, UsageError> {
    let trace_out = args.get("trace-out").map(str::to_string);
    let metrics_out = args.get("metrics-out").map(str::to_string);
    let obs_addr = args.get("obs-addr").map(str::to_string);
    if trace_out.is_none() && metrics_out.is_none() && obs_addr.is_none() {
        return Ok(None);
    }
    let obs = approxhadoop_obs::Obs::shared();
    let server = obs_addr
        .map(|addr| {
            approxhadoop_obs::serve_metrics(&addr, std::sync::Arc::clone(&obs))
                .map_err(|e| UsageError(format!("cannot serve --obs-addr {addr}: {e}")))
        })
        .transpose()?;
    if let Some(s) = &server {
        eprintln!(
            "serving /metrics, /trace and /jobs on http://{}/",
            s.local_addr()
        );
    }
    Ok(Some(ObsSinks {
        obs,
        trace_out,
        metrics_out,
        _server: server,
    }))
}

impl ObsSinks {
    /// Writes whichever files were requested.
    fn write(&self) -> Result<(), UsageError> {
        if let Some(path) = &self.trace_out {
            std::fs::write(path, self.obs.tracer.render_chrome_trace())
                .map_err(|e| UsageError(format!("cannot write --trace-out {path}: {e}")))?;
            eprintln!("wrote Chrome trace to {path}");
        }
        if let Some(path) = &self.metrics_out {
            std::fs::write(path, self.obs.registry.render_prometheus())
                .map_err(|e| UsageError(format!("cannot write --metrics-out {path}: {e}")))?;
            eprintln!("wrote Prometheus metrics to {path}");
        }
        Ok(())
    }
}

/// `approxhadoop list`
pub fn list() {
    println!(
        "{:<22} {:<22} {:^7} {:^5}",
        "Application", "Input", "Approx.", "Err."
    );
    for app in APPLICATIONS {
        let mut mech = String::new();
        if app.mechanisms.sampling {
            mech.push('S');
        }
        if app.mechanisms.dropping {
            mech.push('D');
        }
        if app.mechanisms.user_defined {
            mech.push('U');
        }
        println!(
            "{:<22} {:<22} {:^7} {:^5}",
            app.name,
            app.input,
            mech,
            app.error.to_string()
        );
    }
}

/// Dataset scale factors.
struct Scale {
    mult: u64,
}

fn scale(args: &Args) -> Result<Scale, UsageError> {
    match args.get("scale").unwrap_or("small") {
        "small" => Ok(Scale { mult: 1 }),
        "medium" => Ok(Scale { mult: 4 }),
        "large" => Ok(Scale { mult: 16 }),
        other => Err(UsageError(format!("unknown --scale `{other}`"))),
    }
}

/// Which executor runs the map side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Backend {
    /// In-process scoped task-tracker threads.
    Threads,
    /// The shared slot pool (the service-mode executor).
    Pool,
    /// Separate worker OS processes with a spill-capable shuffle.
    Process,
}

fn backend(args: &Args) -> Result<Backend, UsageError> {
    match args.get("backend").unwrap_or("threads") {
        "threads" | "scoped" => Ok(Backend::Threads),
        "pool" => Ok(Backend::Pool),
        "process" => Ok(Backend::Process),
        other => Err(UsageError(format!(
            "unknown --backend `{other}` (expected `threads`/`scoped`, `pool` or `process`)"
        ))),
    }
}

/// `--controller aimd|slo` (default: the SLO-driven dual controller).
fn controller_mode(args: &Args) -> Result<approxhadoop_server::ControllerMode, UsageError> {
    args.get("controller")
        .unwrap_or("slo")
        .parse()
        .map_err(UsageError)
}

/// `--slo-bound B`: the accuracy half of the SLO (worst relative
/// interval half-width), e.g. `0.05` for ±5%.
fn slo_bound(args: &Args) -> Result<Option<f64>, UsageError> {
    args.get("slo-bound")
        .map(|raw| {
            raw.parse::<f64>()
                .map_err(|_| UsageError(format!("invalid --slo-bound `{raw}`")))
        })
        .transpose()
}

fn job_config(args: &Args) -> Result<JobConfig, UsageError> {
    let mut config = JobConfig {
        reduce_tasks: args.get_parsed("reduce-tasks", 2usize)?,
        seed: args.get_parsed("seed", 0u64)?,
        ..Default::default()
    };
    config.workers = args.get_parsed("workers", config.workers)?;
    let shuffle_mib: usize = args.get_parsed("shuffle-mem", config.shuffle_mem_bytes >> 20)?;
    config.shuffle_mem_bytes = shuffle_mib << 20;
    config.flight_dir = args.get("flight-dir").map(std::path::PathBuf::from);
    if let Some(spec) = args.get("fault-plan") {
        config.fault_plan = Some(FaultPlan::parse(spec).map_err(UsageError)?);
    }
    let retries = args.get_parsed("max-task-retries", 0u32)?;
    if retries > 0 {
        config.fault_policy = FaultPolicy::tolerant(retries);
    }
    if let Some(raw) = args.get("fault-bound") {
        let bound: f64 = raw
            .parse()
            .map_err(|_| UsageError(format!("invalid --fault-bound `{raw}`")))?;
        config.fault_policy.max_degraded_bound = Some(bound);
    }
    // Surface bad flag combinations as usage errors up front, before any
    // data is generated or a job is started.
    config.validate().map_err(|e| UsageError(e.to_string()))?;
    Ok(config)
}

fn print_outputs<K: std::fmt::Display>(result: &ApproxResult<(K, Interval)>, top: usize) {
    let mut rows: Vec<&(K, Interval)> = result.outputs.iter().collect();
    rows.sort_by(|a, b| b.1.estimate.total_cmp(&a.1.estimate));
    println!(
        "{:>16} | {:>14} | {:>12} | {:>8}",
        "key", "estimate", "±95% CI", "rel%"
    );
    for (k, iv) in rows.into_iter().take(top) {
        println!(
            "{:>16} | {:>14.2} | {:>12.2} | {:>7.2}%",
            k,
            iv.estimate,
            iv.half_width,
            iv.relative_error() * 100.0
        );
    }
    print_metrics(&result.metrics, result.outputs.len());
}

fn print_metrics(m: &JobMetrics, keys: usize) {
    println!(
        "\n{} keys; {} maps executed, {} dropped, {} killed; sampling ratio {:.1}%; {:.3}s",
        keys,
        m.executed_maps,
        m.dropped_maps,
        m.killed_maps,
        m.effective_sampling_ratio() * 100.0,
        m.wall_secs
    );
    if m.failed_maps > 0 || m.retried_maps > 0 || m.degraded_to_drop > 0 {
        println!(
            "fault tolerance: {} failed attempts, {} retries, {} tasks degraded to drops",
            m.failed_maps, m.retried_maps, m.degraded_to_drop
        );
    }
}

/// Runs the two-input approximate join (access log × page catalogue)
/// on whichever backend `--backend` selected: scoped threads, the
/// shared slot pool, or worker processes.
fn run_join(
    args: &Args,
    spec: ApproxSpec,
    config: JobConfig,
) -> Result<approxhadoop_workloads::join::JoinOutcome, UsageError> {
    use approxhadoop_runtime::control::DatasetRatios;
    use approxhadoop_workloads::join;

    let ratios = match spec {
        ApproxSpec::Precise => DatasetRatios::precise(),
        ApproxSpec::Ratios {
            drop_ratio,
            sampling_ratio,
        } => DatasetRatios {
            sampling_ratio,
            drop_ratio,
        },
        ApproxSpec::Target { .. } => {
            return Err(UsageError("join supports --drop/--sample only".into()))
        }
    };
    let seed = args.get_parsed("seed", 0u64)?;
    let sc = scale(args)?;
    let w = join::JoinWorkload::demo(sc.mult, seed);
    let fail = |e: approxhadoop_core::CoreError| UsageError(e.to_string());
    match backend(args)? {
        Backend::Threads => join::join_category_traffic(&w, ratios, config, 0.95).map_err(fail),
        Backend::Pool => {
            let slots = args.get_parsed("slots", 4usize)?;
            join::join_category_traffic_pooled(&w, ratios, config, 0.95, slots).map_err(fail)
        }
        Backend::Process => {
            use approxhadoop_runtime::engine::WorkerSpec;
            let worker = WorkerSpec::sibling("approx-worker", join::JOIN_JOB)
                .map_err(|e| UsageError(e.to_string()))?;
            join::join_category_traffic_process(&w, ratios, config, 0.95, &worker).map_err(fail)
        }
    }
}

/// `approxhadoop run <app> [options]`
pub fn run_app(args: &Args) -> Result<(), UsageError> {
    let app = args
        .positional
        .first()
        .ok_or_else(|| UsageError("run requires an application name".into()))?
        .as_str();
    let spec = args.approx_spec()?;
    let sinks = obs_sinks(args)?;
    let mut config = job_config(args)?;
    if let Some(s) = &sinks {
        config.obs = Some(std::sync::Arc::clone(&s.obs));
    }
    let seed = args.get_parsed("seed", 0u64)?;
    let sc = scale(args)?;
    let top = args.get_parsed("top", 10usize)?;

    let dump = WikiDump {
        articles: 50_000 * sc.mult,
        articles_per_block: 1_000,
        seed,
    };
    let log = WikiLog {
        days: 7,
        entries_per_block: 4_000 * sc.mult,
        blocks_per_day: 12,
        pages: 100_000,
        projects: 500,
        seed,
    };
    let dept = DeptLog {
        weeks: 80,
        requests_per_week: 4_000 * sc.mult,
        clients: 20_000,
        attack_fraction: 1e-3,
        seed,
    };
    let fail = |e: approxhadoop_core::CoreError| UsageError(e.to_string());

    // The two-input join is the one multi-dataset application; it has
    // its own runners for all three backends.
    if app == "join" || app == approxhadoop_workloads::join::JOIN_JOB {
        let outcome = run_join(args, spec, config)?;
        println!(
            "{:>10} | {:>16} | {:>12} | {:>8}",
            "category", "bytes (est.)", "±95% CI", "rel%"
        );
        for (category, iv) in &outcome.categories {
            println!(
                "{:>10} | {:>16.0} | {:>12.0} | {:>7.2}%",
                category,
                iv.estimate,
                iv.half_width,
                iv.relative_error() * 100.0
            );
        }
        println!(
            "{:>10} | {:>16.0} | {:>12.0} | {:>7.2}%",
            "TOTAL",
            outcome.combined.estimate,
            outcome.combined.half_width,
            outcome.combined.relative_error() * 100.0
        );
        print_metrics(&outcome.metrics, outcome.categories.len());
        if let Some(s) = &sinks {
            s.write()?;
        }
        return Ok(());
    }

    // Single-input applications run on scoped threads or worker
    // processes; the pool executor is reached through `serve` (or the
    // join above, which drives it directly).
    if backend(args)? == Backend::Pool {
        return Err(UsageError(
            "--backend pool supports only the `join` application; \
             single-input apps run pooled via `serve`"
                .into(),
        ));
    }

    // The process backend dispatches the app by name to worker OS
    // processes started from the sibling `approx-worker` binary.
    if backend(args)? == Backend::Process {
        use approxhadoop_runtime::engine::WorkerSpec;
        let worker =
            WorkerSpec::sibling("approx-worker", app).map_err(|e| UsageError(e.to_string()))?;
        let r = apps::wikilog_process(app, &log, spec, config, &worker).map_err(fail)?;
        print_outputs(&r, top);
        if let Some(s) = &sinks {
            s.write()?;
        }
        return Ok(());
    }

    match app {
        "wiki-length" => print_outputs(&apps::wiki_length(&dump, spec, config).map_err(fail)?, top),
        "wiki-page-rank" => print_outputs(
            &apps::wiki_page_rank(&dump, spec, config).map_err(fail)?,
            top,
        ),
        "project-popularity" => print_outputs(
            &apps::project_popularity(&log, spec, config).map_err(fail)?,
            top,
        ),
        "page-popularity" => print_outputs(
            &apps::page_popularity(&log, spec, config).map_err(fail)?,
            top,
        ),
        "request-rate" => print_outputs(
            &apps::wiki_request_rate(&log, spec, config).map_err(fail)?,
            top,
        ),
        "page-traffic" => {
            print_outputs(&apps::page_traffic(&log, spec, config).map_err(fail)?, top)
        }
        "bytes-per-access" => print_outputs(
            &apps::bytes_per_access(&log, spec, config).map_err(fail)?,
            top,
        ),
        "total-size" => print_outputs(&apps::total_size(&dept, spec, config).map_err(fail)?, top),
        "request-size" => {
            print_outputs(&apps::request_size(&dept, spec, config).map_err(fail)?, top)
        }
        "clients" => print_outputs(&apps::clients(&dept, spec, config).map_err(fail)?, top),
        "client-browser" => print_outputs(
            &apps::client_browser(&dept, spec, config).map_err(fail)?,
            top,
        ),
        "attack-frequencies" => print_outputs(
            &apps::attack_frequencies(&dept, spec, config).map_err(fail)?,
            top,
        ),
        "dept-request-rate" => print_outputs(
            &apps::dept_request_rate(&dept, spec, config).map_err(fail)?,
            top,
        ),
        "mentions-per-paragraph" => {
            let (drop, sample) = match spec {
                ApproxSpec::Precise => (0.0, 1.0),
                ApproxSpec::Ratios {
                    drop_ratio,
                    sampling_ratio,
                } => (drop_ratio, sampling_ratio),
                ApproxSpec::Target { .. } => {
                    return Err(UsageError(
                        "mentions-per-paragraph supports --drop/--sample only".into(),
                    ))
                }
            };
            let r = apps::mentions_per_paragraph(&dump, drop, sample, config).map_err(fail)?;
            print_outputs(&r, top);
        }
        "dc-placement" => {
            let grid = Grid::us_like(16, seed);
            let anneal = AnnealConfig::default();
            let maps = (40 * sc.mult) as usize;
            let r = apps::dc_placement(&grid, &anneal, maps, 2, spec, config).map_err(fail)?;
            let out = &r.outputs[0];
            println!("best placement cost found: {:.2}", out.observed);
            match out.estimated {
                Some(iv) => println!("GEV estimate of the optimum: {iv}"),
                None => println!("(too few maps for a GEV fit)"),
            }
            print_metrics(&r.metrics, 1);
        }
        "video-encoding" => {
            let approx_fraction = args.get_parsed("approx-fraction", 0.5f64)?;
            let r = apps::video_encoding(
                32,
                (16 * sc.mult) as usize,
                4,
                approx_fraction,
                seed,
                config,
            )
            .map_err(fail)?;
            println!(
                "{} frames; {} coefficients; mean PSNR {:.2} dB; {:.0}% chunks approximate",
                r.frames,
                r.coefficients,
                r.mean_psnr_db,
                r.approx_chunk_fraction * 100.0
            );
        }
        "kmeans" => {
            let sample = match spec {
                ApproxSpec::Precise => 1.0,
                ApproxSpec::Ratios { sampling_ratio, .. } => sampling_ratio,
                ApproxSpec::Target { .. } => {
                    return Err(UsageError("kmeans supports --sample only".into()))
                }
            };
            let data = DocVectors {
                points: 10_000 * sc.mult,
                points_per_block: 2_000,
                dims: 8,
                true_clusters: 5,
                seed,
            };
            let r = apps::kmeans(&data, 5, 8, sample, config).map_err(fail)?;
            println!(
                "k-means inertia {:.0} at sampling ratio {:.1}%",
                r.inertia,
                r.sampling_ratio * 100.0
            );
        }
        other => return Err(UsageError(format!("unknown application `{other}`"))),
    }
    if let Some(s) = &sinks {
        s.write()?;
    }
    Ok(())
}

/// `approxhadoop simulate [options]`
pub fn simulate(args: &Args) -> Result<(), UsageError> {
    let maps = args.get_parsed("maps", 740usize)?;
    let records = args.get_parsed("records", 2_600_000u64)?;
    let servers = args.get_parsed("servers", 10usize)?;
    let seed = args.get_parsed("seed", 0u64)?;
    let mut cluster = if args.flag("atom") {
        ClusterSpec::atom(servers)
    } else {
        ClusterSpec::xeon(servers)
    };
    if args.flag("s3") {
        cluster = cluster.with_s3();
    }
    let approx = match args.approx_spec()? {
        ApproxSpec::Precise => SimApprox::Precise,
        ApproxSpec::Ratios {
            drop_ratio,
            sampling_ratio,
        } => SimApprox::Ratios {
            drop_ratio,
            sampling_ratio,
        },
        ApproxSpec::Target {
            target: ErrorTarget::Relative(t),
            pilot,
            ..
        } => match pilot {
            Some(p) => SimApprox::TargetWithPilot {
                relative_error: t,
                pilot: p,
            },
            None => SimApprox::Target { relative_error: t },
        },
        ApproxSpec::Target { .. } => {
            return Err(UsageError("simulate supports relative targets only".into()))
        }
    };
    let job = SimJobSpec::log_processing(maps, records);
    let r = sim(&cluster, &job, approx, seed).map_err(|e| UsageError(e.to_string()))?;
    println!(
        "wall {:.0}s | energy {:.1}Wh | maps: {} run, {} dropped, {} killed | sampling {:.1}%",
        r.wall_secs,
        r.energy_wh,
        r.executed_maps,
        r.dropped_maps,
        r.killed_maps,
        r.effective_sampling_ratio * 100.0
    );
    println!(
        "estimate {:.3e} | 95% bound {:.3}% | actual error {:.3}%",
        r.estimate,
        r.bound_rel * 100.0,
        r.actual_error_rel * 100.0
    );
    Ok(())
}

/// `approxhadoop serve` — run the multi-tenant job service against a
/// Poisson arrival stream, printing job events live.
pub fn serve(args: &Args) -> Result<(), UsageError> {
    use approxhadoop_core::multistage::{Aggregation, MultiStageMapper, MultiStageReducer};
    use approxhadoop_server::{AdmissionConfig, ApproxBudget, JobService, JobSpec};
    use approxhadoop_workloads::wikilog::LogEntry;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    let slots = args.get_parsed("slots", 4usize)?;
    let jobs = args.get_parsed("jobs", 8usize)?;
    let rate = args.get_parsed("rate", 6.0f64)?;
    let seed = args.get_parsed("seed", 0u64)?;
    let blocks = args.get_parsed("blocks", 32u64)?;
    let entries = args.get_parsed("entries", 800u64)?;
    let p99_target = args.get_parsed("p99-target", 0.4f64)?;
    let max_drop = args.get_parsed("max-drop", 0.7f64)?;
    let min_sample = args.get_parsed("min-sample", 0.25f64)?;
    let max_task_retries = args.get_parsed("max-task-retries", 0u32)?;
    let fault_plan = args
        .get("fault-plan")
        .map(FaultPlan::parse)
        .transpose()
        .map_err(UsageError)?;
    let max_degraded_bound = args
        .get("fault-bound")
        .map(|raw| {
            raw.parse::<f64>()
                .map_err(|_| UsageError(format!("invalid --fault-bound `{raw}`")))
        })
        .transpose()?;
    let budget = ApproxBudget::up_to(max_drop, min_sample);
    budget.validate().map_err(UsageError)?;
    let be = backend(args)?;
    let workers = args.get_parsed("workers", 2usize)?;
    let shuffle_mib: usize = args.get_parsed("shuffle-mem", 64usize)?;
    if slots == 0 {
        return Err(UsageError("--slots must be at least 1".into()));
    }
    if !(rate > 0.0 && rate.is_finite()) {
        return Err(UsageError(format!(
            "--rate must be positive and finite, got {rate}"
        )));
    }

    println!(
        "serving {jobs} jobs at {rate}/s over {slots} shared slots \
         (p99 target {p99_target}s, budget: drop<={max_drop}, sample>={min_sample})"
    );
    let sinks = obs_sinks(args)?;
    let admission = AdmissionConfig {
        p99_target_secs: p99_target,
        max_relative_bound: slo_bound(args)?,
        mode: controller_mode(args)?,
        ..Default::default()
    };
    // With sinks the service publishes into the CLI's observability
    // context so `--obs-addr` / `--metrics-out` / `--trace-out` see
    // every tenant; without, it keeps its private default context.
    let service = match &sinks {
        Some(s) => JobService::with_obs(slots, admission, Arc::clone(&s.obs)),
        None => JobService::new(slots, admission),
    };
    let mut rng = StdRng::seed_from_u64(seed ^ 0xA11A_17A1);
    let start = Instant::now();
    let mut handles = Vec::new();
    let mut results: Vec<Option<_>> = (0..jobs).map(|_| None).collect();
    let mut next_arrival = 0.0f64;

    let stamp = |start: Instant| format!("[{:7.3}s]", start.elapsed().as_secs_f64());
    let mut submitted = 0usize;
    while submitted < jobs || results.iter().any(|r| r.is_none()) {
        // Submit every job whose scheduled arrival has passed.
        while submitted < jobs && start.elapsed().as_secs_f64() >= next_arrival {
            let j = submitted;
            let log = WikiLog {
                days: 1,
                entries_per_block: entries,
                blocks_per_day: blocks,
                pages: 5_000,
                projects: 12,
                seed: seed.wrapping_add(1 + j as u64),
            };
            let spec = JobSpec {
                name: format!("tenant-{j}"),
                map_slots: slots.max(2),
                seed: seed.wrapping_add(101 + j as u64),
                budget,
                max_task_retries,
                fault_plan: fault_plan.clone(),
                max_degraded_bound,
                workers,
                shuffle_mem_bytes: shuffle_mib << 20,
                ..Default::default()
            };
            let make_reducer = |_| MultiStageReducer::<u64>::new(Aggregation::Sum, 0.95);
            let handle = match be {
                // The service always executes on the shared slot pool;
                // `threads` and `pool` are the same thing here.
                Backend::Threads | Backend::Pool => service
                    .submit(
                        spec,
                        Arc::new(log.source()),
                        Arc::new(MultiStageMapper::new(
                            |e: &LogEntry, emit: &mut dyn FnMut(u64, f64)| {
                                emit(e.project, e.bytes as f64)
                            },
                        )),
                        make_reducer,
                    )
                    .map_err(|e| UsageError(e.to_string()))?,
                Backend::Process => {
                    use approxhadoop_runtime::engine::WorkerSpec;
                    let worker = WorkerSpec::sibling("approx-worker", "wikilog-project-bytes")
                        .map_err(|e| UsageError(e.to_string()))?;
                    service
                        .submit_process(spec, Arc::new(log.source()), worker, make_reducer)
                        .map_err(|e| UsageError(e.to_string()))?
                }
            };
            println!(
                "{} {} submitted as {} (degrade {:.2}: drop {:.2}, sample {:.2})",
                stamp(start),
                handle.name,
                handle.id,
                handle.degrade,
                handle.drop_ratio,
                handle.sampling_ratio
            );
            handles.push(handle);
            submitted += 1;
            let u: f64 = rng.gen();
            next_arrival += -(1.0 - u).ln() / rate.max(1e-9);
        }
        // Drain and print everyone's events; collect finished results.
        for (j, handle) in handles.iter().enumerate() {
            for event in handle.events().try_iter() {
                use approxhadoop_runtime::event::JobEvent;
                match event {
                    JobEvent::Queued { job } => println!("{} {job} queued", stamp(start)),
                    JobEvent::Wave {
                        job,
                        finished,
                        total,
                        worst_bound,
                    } => match worst_bound {
                        Some(b) => println!(
                            "{} {job} wave {finished}/{total} (bound {:.3}%)",
                            stamp(start),
                            b * 100.0
                        ),
                        None => println!("{} {job} wave {finished}/{total}", stamp(start)),
                    },
                    JobEvent::Estimate {
                        job,
                        worst_relative_bound,
                    } => println!(
                        "{} {job} bound {:.3}%",
                        stamp(start),
                        worst_relative_bound * 100.0
                    ),
                    JobEvent::TaskRetry {
                        job,
                        task,
                        attempt,
                        reason,
                    } => println!(
                        "{} {job} retrying {task} (attempt {attempt}): {reason}",
                        stamp(start)
                    ),
                    JobEvent::Done { job, wall_secs } => {
                        println!("{} {job} done in {wall_secs:.3}s", stamp(start))
                    }
                    JobEvent::Failed { job, reason } => {
                        println!("{} {job} FAILED: {reason}", stamp(start))
                    }
                }
            }
            if results[j].is_none() {
                if let Some(r) = handle.try_wait() {
                    results[j] = Some(r);
                }
            }
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    println!(
        "\n{:<12} {:>8} {:>14} {:>10}",
        "job", "maps", "dropped", "wall"
    );
    for (j, r) in results.into_iter().enumerate() {
        match r.expect("loop exits once every job finished") {
            Ok(r) => println!(
                "tenant-{j:<5} {:>8} {:>14} {:>9.3}s",
                r.metrics.executed_maps, r.metrics.dropped_maps, r.metrics.wall_secs
            ),
            Err(e) => println!("tenant-{j:<5} failed: {e}"),
        }
    }
    println!(
        "service p50 {:.3}s | p99 {:.3}s | {} overload observations",
        service.controller().p50().unwrap_or(0.0),
        service.controller().p99().unwrap_or(0.0),
        service.controller().overloaded_observations()
    );
    if let Some(s) = &sinks {
        s.write()?;
    }
    Ok(())
}

/// `approxhadoop loadtest` — run the Poisson load harness with the
/// controller off then on and print the comparison report as JSON, or
/// with `--find-max-tps` hill-climb the arrival rate to the service's
/// maximum sustainable TPS at a stated SLO and print the
/// `SaturationReport`.
pub fn loadtest(args: &Args) -> Result<(), UsageError> {
    use approxhadoop_server::loadgen::{
        find_max_tps, find_max_tps_with_obs, run, run_with_obs, LoadConfig, SatConfig, SloSpec,
    };

    let defaults = LoadConfig::default();
    let mut config = LoadConfig {
        slots: args.get_parsed("slots", defaults.slots)?,
        jobs: args.get_parsed("jobs", defaults.jobs)?,
        arrival_rate: args.get_parsed("rate", defaults.arrival_rate)?,
        blocks_per_job: args.get_parsed("blocks", defaults.blocks_per_job)?,
        entries_per_block: args.get_parsed("entries", defaults.entries_per_block)?,
        max_drop_ratio: args.get_parsed("max-drop", defaults.max_drop_ratio)?,
        min_sampling_ratio: args.get_parsed("min-sample", defaults.min_sampling_ratio)?,
        p99_target_secs: args.get_parsed("p99-target", defaults.p99_target_secs)?,
        max_relative_bound: slo_bound(args)?,
        mode: controller_mode(args)?,
        seed: args.get_parsed("seed", defaults.seed)?,
        process_workers: match backend(args)? {
            Backend::Threads | Backend::Pool => 0,
            Backend::Process => args.get_parsed("workers", 2usize)?,
        },
    };
    if config.slots == 0 {
        return Err(UsageError("--slots must be at least 1".into()));
    }
    if !(config.arrival_rate > 0.0 && config.arrival_rate.is_finite()) {
        return Err(UsageError(format!(
            "--rate must be positive and finite, got {}",
            config.arrival_rate
        )));
    }
    let sinks = obs_sinks(args)?;

    if args.flag("find-max-tps") {
        let sat_defaults = SatConfig::default();
        let smoke = args.flag("smoke");
        if smoke {
            // A seconds-scale search for CI: tiny jobs, few steps.
            config.blocks_per_job = args.get_parsed("blocks", 6u64)?;
            config.entries_per_block = args.get_parsed("entries", 200u64)?;
        }
        let sat = SatConfig {
            base: config,
            slo: SloSpec {
                p99_secs: args.get_parsed("slo-p99", config.p99_target_secs)?,
                max_relative_bound: config.max_relative_bound,
                violation_tolerance: args
                    .get_parsed("slo-tolerance", sat_defaults.slo.violation_tolerance)?,
            },
            start_rate: args.get_parsed("start-rate", sat_defaults.start_rate)?,
            jobs_per_step: args.get_parsed(
                "jobs-per-step",
                if smoke { 6 } else { sat_defaults.jobs_per_step },
            )?,
            max_steps: args
                .get_parsed("max-steps", if smoke { 7 } else { sat_defaults.max_steps })?,
            precision: args.get_parsed("precision", sat_defaults.precision)?,
            compare_at_knee: !args.flag("no-knee-compare"),
        };
        eprintln!(
            "loadtest --find-max-tps: SLO p99<={}s{}; ramp from {}/s, {} jobs/step, {} steps max",
            sat.slo.p99_secs,
            match sat.slo.max_relative_bound {
                Some(b) => format!(", bound<={b}"),
                None => String::new(),
            },
            sat.start_rate,
            sat.jobs_per_step,
            sat.max_steps
        );
        let report = match &sinks {
            Some(s) => find_max_tps_with_obs(&sat, std::sync::Arc::clone(&s.obs)),
            None => find_max_tps(&sat),
        };
        for step in &report.steps {
            eprintln!(
                "  [{:?}] offered {:.2}/s achieved {:.2}/s p99 {:.3}s viol {:.0}% degrade {:.2} -> {}",
                step.phase,
                step.offered_rate,
                step.achieved_rate,
                step.p99_latency_secs,
                step.violation_rate * 100.0,
                step.mean_degrade,
                if step.slo_met { "PASS" } else { "FAIL" }
            );
        }
        eprintln!(
            "knee {:.2} jobs/s (max sustainable TPS {:.2}), converged={}, generator_saturated={}",
            report.knee_rate,
            report.max_sustainable_tps,
            report.converged,
            report.generator_saturated
        );
        println!(
            "{}",
            serde_json::to_string_pretty(&report).map_err(|e| UsageError(format!("{e:?}")))?
        );
        if let Some(s) = &sinks {
            s.write()?;
        }
        if !report.converged {
            return Err(UsageError(
                "saturation search found no stable operating point at the stated SLO".into(),
            ));
        }
        return Ok(());
    }

    eprintln!(
        "loadtest: {} jobs at {}/s over {} slots, twice (controller off, then on)",
        config.jobs, config.arrival_rate, config.slots
    );
    let report = match &sinks {
        Some(s) => run_with_obs(&config, std::sync::Arc::clone(&s.obs)),
        None => run(&config),
    };
    eprintln!(
        "p99 {:.3}s -> {:.3}s ({:.2}x)",
        report.baseline.p99_latency_secs, report.controlled.p99_latency_secs, report.p99_speedup
    );
    println!(
        "{}",
        serde_json::to_string_pretty(&report).map_err(|e| UsageError(format!("{e:?}")))?
    );
    if let Some(s) = &sinks {
        s.write()?;
    }
    Ok(())
}
