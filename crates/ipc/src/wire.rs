//! The little-endian binary codec used for every byte that crosses the
//! worker process boundary.
//!
//! The format is deliberately primitive: fixed-width little-endian
//! integers, `f64` as its IEEE-754 bit pattern (so values round-trip
//! **bit-exactly** — the differential suites compare confidence
//! intervals to the last bit), and length-prefixed byte strings and
//! sequences. Decoding is fully checked: reading past the end yields
//! [`WireError::Truncated`], and impossible lengths or invalid tags
//! yield [`WireError::Corrupt`] instead of panicking or allocating
//! unbounded memory.

use std::fmt;

/// Decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the value was complete.
    Truncated {
        /// How many more bytes were needed.
        needed: usize,
        /// How many remained.
        remaining: usize,
    },
    /// The bytes were well-delimited but semantically impossible
    /// (bad enum tag, length larger than the remaining buffer, invalid
    /// UTF-8, trailing garbage).
    Corrupt {
        /// What was being decoded.
        what: &'static str,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, remaining } => {
                write!(
                    f,
                    "truncated frame: needed {needed} bytes, {remaining} remain"
                )
            }
            WireError::Corrupt { what } => write!(f, "corrupt frame while decoding {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Result alias for wire decoding.
pub type Result<T> = std::result::Result<T, WireError>;

/// A checked cursor over an encoded buffer.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Starts decoding at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Takes the next `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Decodes one `T` from the cursor.
    pub fn decode<T: Wire>(&mut self) -> Result<T> {
        T::decode(self)
    }

    /// Fails with [`WireError::Corrupt`] unless the buffer was consumed
    /// exactly.
    pub fn finish(self) -> Result<()> {
        if self.remaining() != 0 {
            return Err(WireError::Corrupt {
                what: "trailing bytes",
            });
        }
        Ok(())
    }

    /// A checked length prefix: decodes a `u32` count and rejects values
    /// that could not possibly fit in the remaining buffer (each element
    /// occupies at least `min_elem_bytes`), so corrupt lengths never
    /// trigger huge allocations.
    pub fn seq_len(&mut self, min_elem_bytes: usize, what: &'static str) -> Result<usize> {
        let n = u32::decode(self)? as usize;
        if n.saturating_mul(min_elem_bytes.max(1)) > self.remaining() {
            return Err(WireError::Corrupt { what });
        }
        Ok(n)
    }
}

/// A value that can cross the worker process boundary.
///
/// Implementations must be **deterministic** (the same value always
/// encodes to the same bytes) and **exact** (decoding the encoding
/// yields a value indistinguishable from the original — for floats,
/// bit-identical).
pub trait Wire: Sized {
    /// Appends the encoding of `self` to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Decodes one value from the cursor.
    fn decode(d: &mut Decoder<'_>) -> Result<Self>;

    /// Convenience: encodes into a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }

    /// Convenience: decodes a value that must occupy the whole buffer.
    fn from_bytes(buf: &[u8]) -> Result<Self> {
        let mut d = Decoder::new(buf);
        let v = Self::decode(&mut d)?;
        d.finish()?;
        Ok(v)
    }
}

macro_rules! wire_int {
    ($($t:ty),*) => {$(
        impl Wire for $t {
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn decode(d: &mut Decoder<'_>) -> Result<Self> {
                let n = std::mem::size_of::<$t>();
                let b = d.take(n)?;
                let mut a = [0u8; std::mem::size_of::<$t>()];
                a.copy_from_slice(b);
                Ok(<$t>::from_le_bytes(a))
            }
        }
    )*};
}

wire_int!(u8, u16, u32, u64, i8, i16, i32, i64);

impl Wire for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u64).encode(out);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self> {
        let v = u64::decode(d)?;
        usize::try_from(v).map_err(|_| WireError::Corrupt { what: "usize" })
    }
}

impl Wire for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self> {
        match u8::decode(d)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Corrupt { what: "bool" }),
        }
    }
}

impl Wire for f64 {
    fn encode(&self, out: &mut Vec<u8>) {
        self.to_bits().encode(out);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self> {
        Ok(f64::from_bits(u64::decode(d)?))
    }
}

impl Wire for f32 {
    fn encode(&self, out: &mut Vec<u8>) {
        self.to_bits().encode(out);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self> {
        Ok(f32::from_bits(u32::decode(d)?))
    }
}

impl Wire for String {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self> {
        let n = d.seq_len(1, "string length")?;
        let b = d.take(n)?;
        String::from_utf8(b.to_vec()).map_err(|_| WireError::Corrupt {
            what: "utf-8 string",
        })
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode(out);
        for v in self {
            v.encode(out);
        }
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self> {
        let n = d.seq_len(1, "sequence length")?;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(T::decode(d)?);
        }
        Ok(v)
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self> {
        match u8::decode(d)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(d)?)),
            _ => Err(WireError::Corrupt { what: "option tag" }),
        }
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self> {
        Ok((A::decode(d)?, B::decode(d)?))
    }
}

impl<A: Wire, B: Wire, C: Wire> Wire for (A, B, C) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
        self.2.encode(out);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self> {
        Ok((A::decode(d)?, B::decode(d)?, C::decode(d)?))
    }
}

impl<A: Wire, B: Wire, C: Wire, D: Wire> Wire for (A, B, C, D) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
        self.2.encode(out);
        self.3.encode(out);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self> {
        Ok((A::decode(d)?, B::decode(d)?, C::decode(d)?, D::decode(d)?))
    }
}

impl Wire for std::time::Duration {
    fn encode(&self, out: &mut Vec<u8>) {
        self.as_secs().encode(out);
        self.subsec_nanos().encode(out);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self> {
        let secs = u64::decode(d)?;
        let nanos = u32::decode(d)?;
        if nanos >= 1_000_000_000 {
            return Err(WireError::Corrupt {
                what: "duration nanos",
            });
        }
        Ok(std::time::Duration::new(secs, nanos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.to_bytes();
        assert_eq!(T::from_bytes(&bytes).unwrap(), v);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u8);
        roundtrip(u64::MAX);
        roundtrip(-7i64);
        roundtrip(true);
        roundtrip(false);
        roundtrip(3.25f64);
        roundtrip(f64::NEG_INFINITY);
        roundtrip(String::from("héllo wörld"));
        roundtrip(vec![1u32, 2, 3]);
        roundtrip(Option::<u32>::None);
        roundtrip(Some(9u64));
        roundtrip((1u8, 2u64, -3.5f64));
        roundtrip((1u8, 2u64, -3.5f64, String::from("x")));
        roundtrip(std::time::Duration::from_millis(1234));
    }

    #[test]
    fn nan_roundtrips_bit_exactly() {
        let weird = f64::from_bits(0x7ff8_0000_dead_beef);
        let back = f64::from_bytes(&weird.to_bytes()).unwrap();
        assert_eq!(back.to_bits(), weird.to_bits());
    }

    #[test]
    fn truncation_is_reported() {
        let bytes = 12345u64.to_bytes();
        assert!(matches!(
            u64::from_bytes(&bytes[..5]),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn trailing_bytes_are_corrupt() {
        let mut bytes = 1u32.to_bytes();
        bytes.push(0);
        assert!(matches!(
            u32::from_bytes(&bytes),
            Err(WireError::Corrupt { .. })
        ));
    }

    #[test]
    fn absurd_lengths_are_corrupt_not_oom() {
        // A Vec<u64> claiming u32::MAX elements in a 4-byte buffer.
        let bytes = u32::MAX.to_bytes();
        assert!(matches!(
            Vec::<u64>::from_bytes(&bytes),
            Err(WireError::Corrupt { .. })
        ));
    }

    #[test]
    fn bad_tags_are_corrupt() {
        assert!(matches!(
            bool::from_bytes(&[2]),
            Err(WireError::Corrupt { .. })
        ));
        assert!(matches!(
            Option::<u8>::from_bytes(&[7, 0]),
            Err(WireError::Corrupt { .. })
        ));
    }

    #[test]
    fn invalid_utf8_is_corrupt() {
        let mut bytes = Vec::new();
        2u32.encode(&mut bytes);
        bytes.extend_from_slice(&[0xff, 0xfe]);
        assert!(matches!(
            String::from_bytes(&bytes),
            Err(WireError::Corrupt { .. })
        ));
    }
}
