//! Child-process signalling for worker reaping.
//!
//! When a `ProcessExecutor` drops, every worker is asked to exit with a
//! Shutdown frame; a worker that does not comply promptly (wedged in
//! user map code, pipe already broken) is escalated to SIGTERM and
//! finally SIGKILL so a cancelled or deadline-killed job never leaves
//! orphan processes. `SIGKILL` goes through `std::process::Child::kill`;
//! the intermediate, catchable SIGTERM needs the raw syscall below.

const SIGTERM: i32 = 15;

extern "C" {
    fn kill(pid: i32, sig: i32) -> i32;
}

/// Sends SIGTERM to `pid`. Returns whether the signal was delivered
/// (false typically means the process is already gone).
pub fn sigterm(pid: u32) -> bool {
    let Ok(pid) = i32::try_from(pid) else {
        return false;
    };
    // SAFETY: kill(2) has no memory-safety preconditions; a stale pid at
    // worst signals the wrong process, which we bound by only passing
    // pids of children we spawned and have not yet reaped.
    unsafe { kill(pid, SIGTERM) == 0 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::process::{Command, Stdio};

    #[test]
    fn sigterm_terminates_a_child() {
        let mut child = Command::new("sleep")
            .arg("30")
            .stdout(Stdio::null())
            .spawn()
            .expect("spawn sleep");
        assert!(sigterm(child.id()));
        let status = child.wait().unwrap();
        assert!(!status.success());
    }

    #[test]
    fn sigterm_to_dead_pid_reports_failure() {
        let mut child = Command::new("true").spawn().expect("spawn true");
        child.wait().unwrap();
        // The pid is reaped; signalling it must not claim success.
        // (The pid could in principle be recycled, so only assert that
        // the call does not panic.)
        let _ = sigterm(child.id());
    }
}
