//! Length-prefixed frames over a byte stream.
//!
//! Each frame is a `u32` little-endian payload length followed by the
//! payload. The worker transport runs these over the child's stdin and
//! stdout pipes — a Unix pipe delivers bytes in order with no message
//! boundaries, so the prefix *is* the framing. A clean EOF **between**
//! frames is a normal close ([`read_frame`] returns `Ok(None)`); EOF
//! inside a frame, or a length above [`MAX_FRAME_LEN`], is an error
//! (the peer died mid-message or the stream is corrupt).

use std::io::{self, Read, Write};

/// Upper bound on a single frame's payload (64 MiB). Larger transfers
/// (map output partitions) are chunked by the caller; a prefix above
/// this is treated as stream corruption rather than an allocation
/// request.
pub const MAX_FRAME_LEN: usize = 64 * 1024 * 1024;

/// Framing failure.
#[derive(Debug)]
pub enum FrameError {
    /// Underlying I/O failed (includes EOF mid-frame).
    Io(io::Error),
    /// The length prefix exceeded [`MAX_FRAME_LEN`].
    Oversized {
        /// The claimed payload length.
        len: usize,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame i/o error: {e}"),
            FrameError::Oversized { len } => {
                write!(f, "frame length {len} exceeds limit {MAX_FRAME_LEN}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Writes one frame (length prefix + payload) and flushes the stream,
/// so the peer never waits on a buffered half-message.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), FrameError> {
    let len =
        u32::try_from(payload.len()).map_err(|_| FrameError::Oversized { len: payload.len() })?;
    if payload.len() > MAX_FRAME_LEN {
        return Err(FrameError::Oversized { len: payload.len() });
    }
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame. `Ok(None)` means the stream closed cleanly between
/// frames; EOF inside a frame is an [`FrameError::Io`] with kind
/// [`io::ErrorKind::UnexpectedEof`].
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, FrameError> {
    let mut prefix = [0u8; 4];
    let mut filled = 0;
    while filled < prefix.len() {
        match r.read(&mut prefix[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(FrameError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof inside frame length prefix",
                )))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(prefix) as usize;
    if len > MAX_FRAME_LEN {
        return Err(FrameError::Oversized { len });
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_roundtrip_in_sequence() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"alpha").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, b"beta").unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"alpha");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"beta");
        assert!(read_frame(&mut r).unwrap().is_none());
    }

    #[test]
    fn eof_between_frames_is_clean_close() {
        let mut r = Cursor::new(Vec::new());
        assert!(read_frame(&mut r).unwrap().is_none());
    }

    #[test]
    fn eof_inside_prefix_is_error() {
        let mut r = Cursor::new(vec![5u8, 0]);
        assert!(matches!(read_frame(&mut r), Err(FrameError::Io(_))));
    }

    #[test]
    fn eof_inside_payload_is_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        buf.truncate(buf.len() - 2);
        let mut r = Cursor::new(buf);
        assert!(matches!(read_frame(&mut r), Err(FrameError::Io(_))));
    }

    #[test]
    fn oversized_prefix_is_rejected_without_allocating() {
        let mut r = Cursor::new(u32::MAX.to_le_bytes().to_vec());
        assert!(matches!(
            read_frame(&mut r),
            Err(FrameError::Oversized { .. })
        ));
    }
}
