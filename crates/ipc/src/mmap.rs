//! Read-only memory-mapped files.
//!
//! Workers read their input spool (the job's DFS blocks, materialised
//! to one file by the parent) through `mmap(2)` instead of pulling the
//! bytes through the command pipe: the kernel pages data in on demand
//! and evicts it under pressure, so a spool far larger than RAM still
//! works. The build is fully offline (no `libc`/`memmap2` crates), so
//! the two syscalls are declared directly; all `unsafe` in the
//! workspace lives in this crate.

use std::ffi::c_void;
use std::fs::File;
use std::io;
use std::os::unix::io::AsRawFd;

const PROT_READ: i32 = 1;
const MAP_PRIVATE: i32 = 2;

extern "C" {
    fn mmap(
        addr: *mut c_void,
        length: usize,
        prot: i32,
        flags: i32,
        fd: i32,
        offset: i64,
    ) -> *mut c_void;
    fn munmap(addr: *mut c_void, length: usize) -> i32;
}

/// A read-only memory map of an entire file.
///
/// Dereferences to `&[u8]`; the mapping is private (copy-on-write, but
/// never written) and unmapped on drop. An empty file maps to an empty
/// slice without calling `mmap` (which rejects zero lengths).
#[derive(Debug)]
pub struct Mmap {
    ptr: *mut c_void,
    len: usize,
}

// The mapping is read-only and owned: sharing references across threads
// is as safe as sharing `&[u8]`.
unsafe impl Send for Mmap {}
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Maps `file` read-only in its entirety.
    pub fn map(file: &File) -> io::Result<Mmap> {
        let len = file.metadata()?.len();
        let len = usize::try_from(len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "file too large to map"))?;
        if len == 0 {
            return Ok(Mmap {
                ptr: std::ptr::null_mut(),
                len: 0,
            });
        }
        // SAFETY: we pass a null addr (kernel chooses), a length equal to
        // the file size, and a valid open fd; the resulting pages are
        // mapped read-only and owned exclusively by this struct until
        // `munmap` in `Drop`.
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ,
                MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        Ok(Mmap { ptr, len })
    }

    /// Opens `path` and maps it read-only.
    pub fn open(path: &std::path::Path) -> io::Result<Mmap> {
        Mmap::map(&File::open(path)?)
    }

    /// The mapped bytes.
    pub fn as_slice(&self) -> &[u8] {
        if self.len == 0 {
            return &[];
        }
        // SAFETY: `ptr` is a live PROT_READ mapping of exactly `len`
        // bytes, valid until Drop; no mutable aliases exist.
        unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
    }

    /// Length of the mapping in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mapping is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        if self.len != 0 {
            // SAFETY: `ptr`/`len` came from a successful mmap and are
            // unmapped exactly once.
            unsafe {
                munmap(self.ptr, self.len);
            }
        }
    }
}

impl std::ops::Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Mmap {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "approxhadoop-mmap-test-{}-{name}",
            std::process::id()
        ))
    }

    #[test]
    fn maps_file_contents() {
        let path = temp_path("basic");
        let mut f = File::create(&path).unwrap();
        f.write_all(b"hello mmap").unwrap();
        drop(f);
        let m = Mmap::open(&path).unwrap();
        assert_eq!(&m[..], b"hello mmap");
        assert_eq!(m.len(), 10);
        assert!(!m.is_empty());
        drop(m);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_file_maps_to_empty_slice() {
        let path = temp_path("empty");
        File::create(&path).unwrap();
        let m = Mmap::open(&path).unwrap();
        assert!(m.is_empty());
        assert_eq!(&m[..], b"");
        drop(m);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(Mmap::open(&temp_path("does-not-exist")).is_err());
    }
}
