//! Process-boundary transport for ApproxHadoop-RS.
//!
//! The multi-process worker backend (PR 6, ROADMAP open item 1) runs map
//! attempts in separate OS processes, the way a real Hadoop TaskTracker
//! forks task JVMs. Everything that crosses that boundary goes through
//! this crate:
//!
//! * [`wire`] — a tiny, dependency-free, little-endian binary codec
//!   ([`Wire`]) with explicit truncation/corruption errors. No schema
//!   evolution, no varints: both sides of the pipe are always built from
//!   the same workspace, so the format only has to be deterministic and
//!   checkable, not forward-compatible.
//! * [`frame`] — `u32` length-prefixed frames over any `Read`/`Write`
//!   pair (the worker's stdin/stdout pipes). A clean EOF between frames
//!   is a normal shutdown; a partial frame is an error.
//! * [`mmap`] — a read-only memory map over a file, used by workers to
//!   read their DFS block spool without copying it through a pipe.
//! * [`process`] — minimal signalling (SIGTERM) for reaping child
//!   workers that outlive a job.
//!
//! This is the **only** crate in the workspace allowed to contain
//! `unsafe` code (the raw `mmap`/`munmap`/`kill` bindings); every other
//! crate keeps `#![forbid(unsafe_code)]`.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod frame;
pub mod mmap;
pub mod process;
pub mod wire;

pub use frame::{read_frame, write_frame, FrameError, MAX_FRAME_LEN};
pub use mmap::Mmap;
pub use wire::{Decoder, Wire, WireError};
