//! Property tests for the wire codec primitives: every value
//! round-trips bit-exactly, and every truncation of a valid encoding is
//! rejected instead of mis-decoding.

use approxhadoop_ipc::{read_frame, write_frame, Wire, WireError};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn u64_roundtrips(v in 0u64..u64::MAX) {
        prop_assert_eq!(u64::from_bytes(&v.to_bytes()).unwrap(), v);
    }

    #[test]
    fn f64_roundtrips_bit_exactly(v in -1.0e12..1.0e12f64) {
        let back = f64::from_bytes(&v.to_bytes()).unwrap();
        prop_assert_eq!(back.to_bits(), v.to_bits());
    }

    #[test]
    fn pair_vectors_roundtrip(ks in prop::collection::vec(0u32..1000, 0..40),
                              vs in prop::collection::vec(-5.0..5.0f64, 0..40)) {
        let v: Vec<(u32, f64)> = ks.into_iter().zip(vs).collect();
        let bytes = v.to_bytes();
        let back = Vec::<(u32, f64)>::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back.len(), v.len());
        for (a, b) in back.iter().zip(v.iter()) {
            prop_assert_eq!(a.0, b.0);
            prop_assert_eq!(a.1.to_bits(), b.1.to_bits());
        }
    }

    #[test]
    fn strings_roundtrip(s in "[a-z0-9 ]{0,32}") {
        prop_assert_eq!(String::from_bytes(&s.to_bytes()).unwrap(), s);
    }

    #[test]
    fn every_truncation_is_rejected(v in prop::collection::vec(0u64..u64::MAX, 1..8)) {
        let bytes = v.to_bytes();
        for cut in 0..bytes.len() {
            let r = Vec::<u64>::from_bytes(&bytes[..cut]);
            prop_assert!(r.is_err(), "truncation at {cut} of {} decoded", bytes.len());
        }
    }

    #[test]
    fn flipped_length_prefixes_never_panic(v in prop::collection::vec(0u8..255, 4..64), bit in 0usize..32) {
        // Corrupt the leading length prefix of a Vec<u8> encoding and
        // check decoding fails cleanly (no panic, no huge allocation).
        let mut bytes = v.to_bytes();
        let byte = bit / 8;
        bytes[byte] ^= 1 << (bit % 8);
        match Vec::<u8>::from_bytes(&bytes) {
            Ok(decoded) => prop_assert!(decoded.len() <= v.len() + bytes.len()),
            Err(WireError::Truncated { .. }) | Err(WireError::Corrupt { .. }) => {}
        }
    }

    // Tagged records — the shape every multi-dataset job shuffles: a
    // `(dataset_tag, payload)` tuple. The tag must survive next to the
    // payload bit-exactly, and a stream of tagged records must reject
    // every truncation rather than resynchronise on the wrong record.
    #[test]
    fn tagged_records_roundtrip(tags in prop::collection::vec(0u32..4, 1..24),
                                xs in prop::collection::vec(0u64..1_000_000, 1..24),
                                ys in prop::collection::vec(-1.0e6..1.0e6f64, 1..24)) {
        let records: Vec<(u32, (u64, f64))> = tags
            .iter()
            .zip(xs.iter().zip(ys.iter()))
            .map(|(&t, (&x, &y))| (t, (x, y)))
            .collect();
        let bytes = records.to_bytes();
        let back = Vec::<(u32, (u64, f64))>::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back.len(), records.len());
        for (a, b) in back.iter().zip(records.iter()) {
            prop_assert_eq!(a.0, b.0, "dataset tag changed in flight");
            prop_assert_eq!(a.1.0, b.1.0);
            prop_assert_eq!(a.1.1.to_bits(), b.1.1.to_bits());
        }
    }

    #[test]
    fn tagged_record_truncations_are_rejected(tags in prop::collection::vec(0u32..4, 1..8),
                                              vals in prop::collection::vec(0u64..u64::MAX, 1..8)) {
        let records: Vec<(u32, u64)> = tags.into_iter().zip(vals).collect();
        let bytes = records.to_bytes();
        for cut in 0..bytes.len() {
            let r = Vec::<(u32, u64)>::from_bytes(&bytes[..cut]);
            prop_assert!(r.is_err(), "truncation at {cut} of {} decoded", bytes.len());
        }
    }

    #[test]
    fn corrupt_tagged_frames_never_panic(tags in prop::collection::vec(0u32..4, 1..8),
                                         vals in prop::collection::vec(0u64..u64::MAX, 1..8),
                                         flip in 0usize..64) {
        // Flip one bit anywhere in a tagged-record stream: decoding may
        // succeed (the flip hit a payload), but it must never panic,
        // over-allocate, or silently change the record count on a
        // length-prefix hit without erroring.
        let records: Vec<(u32, u64)> = tags.into_iter().zip(vals).collect();
        let mut bytes = records.to_bytes();
        let pos = flip % (bytes.len() * 8);
        bytes[pos / 8] ^= 1 << (pos % 8);
        match Vec::<(u32, u64)>::from_bytes(&bytes) {
            Ok(decoded) => prop_assert!(decoded.len() <= records.len() + bytes.len()),
            Err(WireError::Truncated { .. }) | Err(WireError::Corrupt { .. }) => {}
        }
    }

    #[test]
    fn frame_streams_roundtrip(frames in prop::collection::vec(prop::collection::vec(0u8..255, 0..64), 0..8)) {
        let mut buf = Vec::new();
        for f in &frames {
            write_frame(&mut buf, f).unwrap();
        }
        let mut r = std::io::Cursor::new(buf);
        for f in &frames {
            prop_assert_eq!(&read_frame(&mut r).unwrap().unwrap(), f);
        }
        prop_assert!(read_frame(&mut r).unwrap().is_none());
    }
}
