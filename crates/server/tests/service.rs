//! Service-layer integration tests: concurrent-submission determinism,
//! cancellation mid-wave, two-tenant fairness, and load-driven
//! degradation within the error budget.

use std::sync::Arc;
use std::time::{Duration, Instant};

use approxhadoop_runtime::event::JobEvent;
use approxhadoop_runtime::input::VecSource;
use approxhadoop_runtime::mapper::FnMapper;
use approxhadoop_runtime::reducer::GroupedReducer;
use approxhadoop_runtime::RuntimeError;
use approxhadoop_server::admission::{AdmissionConfig, ApproxBudget};
use approxhadoop_server::service::{JobService, JobSpec};

fn blocks(n: usize, per_block: usize) -> Vec<Vec<u32>> {
    (0..n)
        .map(|b| (0..per_block).map(|i| (b * per_block + i) as u32).collect())
        .collect()
}

type SumHandle = approxhadoop_server::service::JobHandle<(u8, u64)>;

/// Submits a per-key summing job; `delay_us` slows each record down to
/// make jobs long enough to observe scheduling.
fn submit_sum(
    service: &JobService,
    spec: JobSpec,
    input: Vec<Vec<u32>>,
    delay_us: u64,
) -> SumHandle {
    service
        .submit(
            spec,
            Arc::new(VecSource::new(input)),
            Arc::new(FnMapper::new(
                move |x: &u32, emit: &mut dyn FnMut(u8, u64)| {
                    if delay_us > 0 {
                        std::thread::sleep(Duration::from_micros(delay_us));
                    }
                    emit((x % 4) as u8, *x as u64)
                },
            )),
            |_| GroupedReducer::new(|k: &u8, vs: &[u64]| Some((*k, vs.iter().sum::<u64>()))),
        )
        .unwrap()
}

#[test]
fn concurrent_submissions_are_deterministic_under_fixed_seed() {
    // Eight concurrent copies of the same approximate job (fixed seed,
    // controller disabled so admission cannot vary the ratios) must all
    // produce identical outputs, regardless of pool interleaving.
    let service = JobService::new(
        4,
        AdmissionConfig {
            enabled: false,
            ..Default::default()
        },
    );
    let input = blocks(16, 50);
    let spec = JobSpec {
        seed: 42,
        budget: ApproxBudget {
            base_drop_ratio: 0.25,
            max_drop_ratio: 0.25,
            base_sampling_ratio: 0.5,
            min_sampling_ratio: 0.5,
        },
        ..Default::default()
    };
    let handles: Vec<SumHandle> = (0..8)
        .map(|_| submit_sum(&service, spec.clone(), input.clone(), 0))
        .collect();
    let mut results: Vec<Vec<(u8, u64)>> = handles
        .into_iter()
        .map(|h| {
            let mut out = h.wait().unwrap().outputs;
            out.sort();
            out
        })
        .collect();
    let first = results.remove(0);
    assert!(!first.is_empty());
    for (i, r) in results.iter().enumerate() {
        assert_eq!(*r, first, "job {} diverged", i + 1);
    }
}

#[test]
fn cancellation_mid_wave_fails_job_and_leaves_service_usable() {
    let service = JobService::new(2, AdmissionConfig::default());
    // A long job: 60 maps × 40 records × 500µs ≈ 1.2 s of slot time.
    let h = submit_sum(&service, JobSpec::default(), blocks(60, 40), 500);
    // Wait until at least one wave completed, then cancel mid-flight.
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        match h.events().recv_timeout(Duration::from_secs(5)) {
            Ok(JobEvent::Wave { finished, .. }) if finished > 0 => break,
            Ok(_) => {}
            Err(_) => panic!("no progress events before cancellation"),
        }
        assert!(Instant::now() < deadline, "timed out waiting for a wave");
    }
    h.cancel();
    let events = h.events().clone();
    let err = h.wait().unwrap_err();
    assert!(matches!(err, RuntimeError::Cancelled), "got {err:?}");
    let failed = events
        .try_iter()
        .any(|e| matches!(e, JobEvent::Failed { .. }));
    assert!(failed, "a Failed event must be streamed on cancellation");
    // The pool survives the cancelled tenant: a fresh job completes.
    let h2 = submit_sum(&service, JobSpec::default(), blocks(4, 10), 0);
    assert!(h2.wait().is_ok());
}

#[test]
fn two_tenant_fairness_small_job_is_not_starved() {
    // One slot. A long job floods the pool first; a short job with equal
    // weight arrives afterwards. Under FIFO the short job would wait for
    // the long job's entire backlog; under weighted fair sharing its few
    // tasks interleave 1:1, so it must finish well before the long job.
    let service = JobService::new(
        1,
        AdmissionConfig {
            enabled: false,
            ..Default::default()
        },
    );
    let long = submit_sum(
        &service,
        JobSpec {
            name: "long".into(),
            map_slots: 8,
            ..Default::default()
        },
        blocks(40, 20),
        300,
    );
    // Let the long job occupy the slot and queue a backlog.
    std::thread::sleep(Duration::from_millis(30));
    let start = Instant::now();
    let short = submit_sum(
        &service,
        JobSpec {
            name: "short".into(),
            map_slots: 8,
            ..Default::default()
        },
        blocks(4, 20),
        300,
    );
    short.wait().unwrap();
    let short_latency = start.elapsed();
    long.wait().unwrap();
    let long_latency = start.elapsed();
    assert!(
        short_latency < long_latency / 2,
        "short job ({short_latency:?}) should finish far before the long job ({long_latency:?})"
    );
}

#[test]
fn overload_degrades_later_jobs_within_budget() {
    // Impossible p99 target: every completion marks the service
    // overloaded, ratcheting the degrade factor up. Later jobs must be
    // admitted with more aggressive ratios — but never beyond budget.
    let service = JobService::new(
        2,
        AdmissionConfig {
            p99_target_secs: 1e-6,
            increase_step: 0.5,
            ..Default::default()
        },
    );
    let budget = ApproxBudget::up_to(0.5, 0.25);
    let spec = JobSpec {
        budget,
        ..Default::default()
    };
    let first = submit_sum(&service, spec.clone(), blocks(8, 20), 0);
    assert_eq!(first.drop_ratio, 0.0, "no history: admitted precise");
    first.wait().unwrap();
    let second = submit_sum(&service, spec.clone(), blocks(8, 20), 0);
    assert!(
        second.degrade > 0.0,
        "controller must degrade after an over-target completion"
    );
    assert!(second.drop_ratio > 0.0 && second.drop_ratio <= budget.max_drop_ratio);
    assert!(second.sampling_ratio < 1.0 && second.sampling_ratio >= budget.min_sampling_ratio);
    let result = second.wait().unwrap();
    assert!(
        result.metrics.dropped_maps > 0 || result.metrics.effective_sampling_ratio() < 1.0,
        "degradation must actually reduce work"
    );
    // A precise-budget job is untouched even under full overload.
    let precise = submit_sum(
        &service,
        JobSpec {
            budget: ApproxBudget::precise(),
            ..Default::default()
        },
        blocks(4, 10),
        0,
    );
    assert_eq!(precise.drop_ratio, 0.0);
    assert_eq!(precise.sampling_ratio, 1.0);
    let r = precise.wait().unwrap();
    assert_eq!(r.metrics.dropped_maps, 0);
    assert_eq!(r.metrics.executed_maps, 4);
}

#[test]
fn deadline_job_completes_approximately_via_service() {
    let service = JobService::new(1, AdmissionConfig::default());
    let spec = JobSpec {
        map_slots: 1,
        deadline: Some(Duration::from_millis(50)),
        ..Default::default()
    };
    // ~50 maps × 20 records × 400µs ≈ 400 ms of work against a 50 ms
    // deadline: the job must cut itself short, not fail.
    let h = submit_sum(&service, spec, blocks(50, 20), 400);
    let result = h.wait().unwrap();
    assert!(result.metrics.deadline_hit);
    assert!(result.metrics.executed_maps < 50);
}

#[test]
fn event_stream_brackets_the_job() {
    let service = JobService::new(2, AdmissionConfig::default());
    let h = submit_sum(&service, JobSpec::default(), blocks(5, 10), 0);
    let events = h.events().clone();
    h.wait().unwrap();
    let events: Vec<JobEvent> = events.try_iter().collect();
    assert!(
        matches!(events.first(), Some(JobEvent::Queued { .. })),
        "events: {events:?}"
    );
    assert!(
        matches!(events.last(), Some(JobEvent::Done { .. })),
        "events: {events:?}"
    );
    assert!(events.iter().any(|e| matches!(
        e,
        JobEvent::Wave {
            finished: 5,
            total: 5,
            ..
        }
    )));
}

#[test]
fn wave_events_carry_running_bound_when_reducers_report() {
    use approxhadoop_core::multistage::{
        Aggregation, BoundMonitor, MultiStageMapper, MultiStageReducer,
    };
    use approxhadoop_core::target::SharedApproxState;

    // A GroupedReducer never reports a bound: every wave says `None`.
    let service = JobService::new(2, AdmissionConfig::default());
    let h = submit_sum(&service, JobSpec::default(), blocks(6, 10), 0);
    let events = h.events().clone();
    h.wait().unwrap();
    for e in events.try_iter() {
        if let JobEvent::Wave { worst_bound, .. } = e {
            assert_eq!(worst_bound, None, "unmonitored job must not report");
        }
    }

    // A monitored multistage reducer streams its bound; the final wave
    // (all maps finished) must carry it.
    let h = service
        .submit(
            JobSpec::default(),
            Arc::new(VecSource::new(blocks(6, 10))),
            Arc::new(MultiStageMapper::new(
                |x: &u32, emit: &mut dyn FnMut(u8, f64)| emit((x % 4) as u8, *x as f64),
            )),
            |_| {
                MultiStageReducer::<u8>::new(Aggregation::Sum, 0.95).with_monitor(BoundMonitor {
                    shared: Arc::new(SharedApproxState::new(1)),
                    report_absolute: false,
                    check_every: 1,
                    freeze_threshold: None,
                    min_maps_before_freeze: usize::MAX,
                })
            },
        )
        .unwrap();
    let events = h.events().clone();
    h.wait().unwrap();
    let waves: Vec<JobEvent> = events
        .try_iter()
        .filter(|e| matches!(e, JobEvent::Wave { .. }))
        .collect();
    assert!(!waves.is_empty());
    let bound_of = |e: &JobEvent| match e {
        JobEvent::Wave {
            finished,
            total,
            worst_bound,
            ..
        } => (*finished, *total, *worst_bound),
        _ => unreachable!(),
    };
    let (finished, total, worst_bound) = bound_of(waves.last().unwrap());
    assert_eq!((finished, total), (6, 6));
    assert!(
        worst_bound.is_some(),
        "final wave of a monitored job must carry the running bound"
    );
}

#[test]
fn goal_job_on_shared_pool_stops_early_once_the_bound_is_met() {
    use approxhadoop_core::multistage::{
        Aggregation, BoundMonitor, MultiStageMapper, MultiStageReducer,
    };
    use approxhadoop_server::service::ErrorGoal;

    // Forty identical clusters (every block sums to the same value):
    // the between-cluster variance is zero, so the first wave already
    // proves the bound and the coordinator must drop the whole tail
    // instead of running the job to completion.
    let input: Vec<Vec<u32>> = (0..40).map(|_| vec![1u32; 25]).collect();
    let service = JobService::new(4, AdmissionConfig::default());
    let spec = JobSpec {
        map_slots: 4,
        reduce_tasks: 1,
        ..Default::default()
    };
    let h = service
        .submit_with_goal(
            spec,
            ErrorGoal::relative(0.05), // "±5% at 95%"
            Arc::new(VecSource::new(input)),
            Arc::new(MultiStageMapper::new(
                |x: &u32, emit: &mut dyn FnMut(u8, f64)| emit(0u8, *x as f64),
            )),
            // The factory receives the job's shared approximation state;
            // wiring it into the monitor is what lets the coordinator see
            // this reducer's running bound and stop the job.
            |_, shared| {
                MultiStageReducer::<u8>::new(Aggregation::Sum, 0.95).with_monitor(BoundMonitor {
                    shared: Arc::clone(shared),
                    report_absolute: false,
                    check_every: 1,
                    freeze_threshold: Some(0.05),
                    min_maps_before_freeze: 4, // = the wave size
                })
            },
        )
        .unwrap();
    let r = h.wait().unwrap();
    let m = &r.metrics;
    assert_eq!(m.total_maps, 40);
    assert!(
        m.executed_maps < m.total_maps,
        "goal job never stopped early: executed {} of {}",
        m.executed_maps,
        m.total_maps
    );
    assert!(m.dropped_maps > 0);
    assert_eq!(m.executed_maps + m.dropped_maps + m.killed_maps, 40);
    // The final reported bound meets the stated goal...
    let final_bound = m
        .bound_series
        .iter()
        .rev()
        .find(|p| p.relative_bound.is_finite())
        .map(|p| p.relative_bound)
        .expect("monitored reducer reported bounds");
    assert!(final_bound <= 0.05, "final bound {final_bound} over goal");
    // ...and the estimate still covers the whole input despite the
    // dropped tail: τ̂ for 40 clusters of 25 ones is 1000.
    let (_, interval) = &r.outputs[0];
    assert!(
        (interval.estimate - 1000.0).abs() / 1000.0 <= 0.05,
        "estimate {} not within ±5% of 1000",
        interval.estimate
    );
    assert!(interval.contains(1000.0));
}
