//! End-to-end observability acceptance tests: the load generator must
//! produce (a) a Prometheus snapshot covering pool, admission, and
//! error-bound metrics, (b) a Chrome trace with correct
//! `job → wave → task` nesting, and (c) per-reducer bound-convergence
//! series in the JSON report — all without breaking uninstrumented
//! runs or adding meaningful overhead.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use approxhadoop_obs::{json, Obs, TraceEvent};
use approxhadoop_server::loadgen::{run_phase_with_obs, LoadConfig, PhaseReport};

fn tiny() -> LoadConfig {
    LoadConfig {
        slots: 2,
        jobs: 3,
        arrival_rate: 200.0,
        blocks_per_job: 6,
        entries_per_block: 60,
        p99_target_secs: 1e-6, // force overload immediately
        ..Default::default()
    }
}

fn instrumented_phase() -> (PhaseReport, Arc<Obs>) {
    let obs = Obs::shared();
    let report = run_phase_with_obs(&tiny(), true, Arc::clone(&obs));
    (report, obs)
}

#[test]
fn prometheus_snapshot_covers_pool_admission_and_bounds() {
    let (report, _obs) = instrumented_phase();
    let text = &report.prometheus;
    for metric in [
        // Pool: queue depth, slot occupancy, per-tenant waits, fairness.
        "pool_slots",
        "pool_queue_depth",
        "pool_busy_slots",
        "pool_submitted_total",
        "pool_dispatched_total",
        "pool_wait_secs",
        "pool_vtime_skew",
        // Admission: AIMD window, latency distribution, decisions.
        "admission_decisions_total",
        "admission_job_latency_secs",
        "admission_window_len",
        "admission_degrade",
        // Engine: per-task timing, sampling decisions, error bounds.
        "engine_jobs_total",
        "engine_tasks_total",
        "engine_task_secs",
        "engine_directives_total",
        "engine_reducer_bound",
        "engine_bound_reports_total",
    ] {
        assert!(
            text.contains(metric),
            "prometheus output missing `{metric}`:\n{text}"
        );
    }
    // The structured snapshot mirrors the text exposition.
    assert_eq!(
        report.metrics.counter_total("engine_jobs_total"),
        tiny().jobs as u64
    );
    assert!(report.metrics.counter_total("pool_dispatched_total") > 0);
    assert!(report.metrics.gauge("pool_slots") == Some(2.0));
    // An impossible p99 target must register overload + degradation.
    assert!(report.metrics.counter_total("admission_overloaded_total") > 0);
}

#[test]
fn chrome_trace_nests_job_wave_task() {
    let (_report, obs) = instrumented_phase();
    let events = obs.tracer.events();
    assert_eq!(obs.tracer.dropped(), 0, "tiny run must fit the ring");

    let spans: HashMap<u64, &TraceEvent> = events
        .iter()
        .filter(|e| e.phase == 'X')
        .filter_map(|e| e.span.map(|s| (s.0, e)))
        .collect();
    let jobs: Vec<&&TraceEvent> = spans.values().filter(|e| e.category == "job").collect();
    let waves: Vec<&&TraceEvent> = spans.values().filter(|e| e.category == "wave").collect();
    let tasks: Vec<&&TraceEvent> = spans.values().filter(|e| e.category == "task").collect();
    assert_eq!(jobs.len(), tiny().jobs, "one job span per submitted job");
    assert!(!waves.is_empty(), "jobs must record wave spans");
    assert!(!tasks.is_empty(), "waves must record task spans");

    for wave in &waves {
        let parent = wave.parent.expect("wave span has a parent");
        let owner = spans.get(&parent.0).expect("wave parent span exists");
        assert_eq!(owner.category, "job", "wave parents are job spans");
        assert_eq!(owner.pid, wave.pid, "waves stay on their job's lane");
    }
    for task in &tasks {
        let parent = task.parent.expect("task span has a parent");
        let owner = spans.get(&parent.0).expect("task parent span exists");
        assert_eq!(owner.category, "wave", "task parents are wave spans");
        // Time containment: the task ran inside its job's span.
        let job = spans
            .get(&owner.parent.expect("wave has a job parent").0)
            .expect("job span exists");
        assert!(
            task.ts_us >= job.ts_us && task.ts_us + task.dur_us <= job.ts_us + job.dur_us,
            "task [{}, {}] escapes job [{}, {}]",
            task.ts_us,
            task.ts_us + task.dur_us,
            job.ts_us,
            job.ts_us + job.dur_us
        );
    }

    // The rendered trace is valid JSON in Chrome trace format.
    let rendered = obs.tracer.render_chrome_trace();
    let value = json::parse(&rendered).expect("chrome trace parses as JSON");
    let trace_events = value
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array");
    assert_eq!(trace_events.len(), events.len());
    for ev in trace_events {
        for field in ["ph", "name", "ts", "pid", "tid"] {
            assert!(ev.get(field).is_some(), "event missing `{field}`");
        }
    }
    // Admission decisions appear as instant events with before/after
    // budget args.
    let admit = trace_events
        .iter()
        .find(|e| e.get("cat").and_then(|c| c.as_str()) == Some("admission"))
        .expect("admission decision event in trace");
    let args = admit.get("args").expect("admission event has args");
    for field in [
        "max_drop_ratio",
        "min_sampling_ratio",
        "drop_ratio",
        "sampling_ratio",
    ] {
        assert!(
            args.get(field).is_some(),
            "admission args missing `{field}`"
        );
    }
}

#[test]
fn report_carries_bound_convergence_series() {
    let (report, _obs) = instrumented_phase();
    let with_series = report
        .jobs
        .iter()
        .filter(|o| !o.bound_series.is_empty())
        .count();
    assert!(
        with_series > 0,
        "no job recorded a bound-convergence series"
    );
    for o in &report.jobs {
        let mut last_t = 0.0f64;
        for p in &o.bound_series {
            assert!(p.t_secs >= last_t, "series must be time-ordered");
            last_t = p.t_secs;
            assert!(p.maps_processed > 0);
            assert!(p.relative_bound >= 0.0);
        }
    }
    // The series round-trips through the JSON report.
    let rendered = serde_json::to_string(&report).unwrap();
    assert!(rendered.contains("\"bound_series\""));
    assert!(rendered.contains("\"maps_processed\""));
    json::parse(&rendered).expect("phase report serializes to valid JSON");
}

/// Instrumentation must be cheap: the same engine run with tracing +
/// metrics attached stays within noise of the uninstrumented run.
/// (The documented budget is <= 5%; the assertion is deliberately
/// looser so scheduler jitter on CI cannot flake it.)
#[test]
fn instrumentation_overhead_is_bounded() {
    use approxhadoop_runtime::engine::{run_job, JobConfig};
    use approxhadoop_runtime::input::VecSource;
    use approxhadoop_runtime::mapper::FnMapper;
    use approxhadoop_runtime::reducer::GroupedReducer;

    let blocks: Vec<Vec<u64>> = (0..64)
        .map(|b| (0..400).map(|i| b * 400 + i).collect())
        .collect();
    let run_once = |obs: Option<Arc<Obs>>| -> f64 {
        let input = VecSource::new(blocks.clone());
        let mapper =
            FnMapper::new(|i: &u64, emit: &mut dyn FnMut(u8, u64)| emit((i % 8) as u8, *i));
        let config = JobConfig {
            obs,
            ..Default::default()
        };
        let start = Instant::now();
        run_job(
            &input,
            &mapper,
            |_| GroupedReducer::new(|k: &u8, vs: &[u64]| Some((*k, vs.len()))),
            config,
        )
        .unwrap();
        start.elapsed().as_secs_f64()
    };
    // Warm up once, then best-of-3 each to damp scheduler noise.
    run_once(None);
    let plain = (0..3).map(|_| run_once(None)).fold(f64::MAX, f64::min);
    let traced = (0..3)
        .map(|_| run_once(Some(Obs::shared())))
        .fold(f64::MAX, f64::min);
    assert!(
        traced <= plain * 1.5 + 0.05,
        "instrumented run too slow: {traced:.4}s vs {plain:.4}s uninstrumented"
    );
}
