//! Load-adaptive admission control.
//!
//! The ApproxHadoop insight applied to a shared service: when load
//! builds, a cluster that can trade accuracy for time should **degrade**
//! incoming jobs instead of queueing or rejecting them. The controller
//! here is a small AIMD feedback loop in the spirit of latency-driven
//! load-test controllers: it samples service health (p99 job latency
//! against a target, plus slot-pool backlog) and maintains a single
//! *degrade* factor in `[0, 1]`. Admission maps that factor onto each
//! job's own [`ApproxBudget`] — the approximation the *caller* declared
//! acceptable — so the service never degrades a job beyond what its
//! submitter signed up for, and precise jobs stay precise.

use std::collections::VecDeque;
use std::sync::Arc;

use approxhadoop_obs::{arg_num, Obs};
use parking_lot::Mutex;

/// How far a job may be degraded: the caller's error budget expressed
/// as ratio ranges. `degrade = 0` admits the job at its base ratios;
/// `degrade = 1` admits it at the budget's worst-case ratios.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct ApproxBudget {
    /// Drop ratio the job asks for under no load, in `[0, 1)`.
    pub base_drop_ratio: f64,
    /// Worst drop ratio the service may impose, in `[base, 1)`.
    pub max_drop_ratio: f64,
    /// Sampling ratio the job asks for under no load, in `(0, 1]`.
    pub base_sampling_ratio: f64,
    /// Lowest sampling ratio the service may impose, in `(0, base]`.
    pub min_sampling_ratio: f64,
}

impl ApproxBudget {
    /// A budget that forbids any degradation: the job always runs
    /// precisely.
    pub fn precise() -> Self {
        ApproxBudget {
            base_drop_ratio: 0.0,
            max_drop_ratio: 0.0,
            base_sampling_ratio: 1.0,
            min_sampling_ratio: 1.0,
        }
    }

    /// A budget starting precise that may be degraded down to
    /// `max_drop_ratio` / `min_sampling_ratio` under load.
    pub fn up_to(max_drop_ratio: f64, min_sampling_ratio: f64) -> Self {
        ApproxBudget {
            base_drop_ratio: 0.0,
            max_drop_ratio,
            base_sampling_ratio: 1.0,
            min_sampling_ratio,
        }
    }

    /// Validates ranges and orderings.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..1.0).contains(&self.base_drop_ratio) {
            return Err(format!(
                "base_drop_ratio must lie in [0, 1), got {}",
                self.base_drop_ratio
            ));
        }
        if !(self.base_drop_ratio..1.0).contains(&self.max_drop_ratio) {
            return Err(format!(
                "max_drop_ratio must lie in [base_drop_ratio, 1), got {}",
                self.max_drop_ratio
            ));
        }
        if !(self.base_sampling_ratio > 0.0 && self.base_sampling_ratio <= 1.0) {
            return Err(format!(
                "base_sampling_ratio must lie in (0, 1], got {}",
                self.base_sampling_ratio
            ));
        }
        if !(self.min_sampling_ratio > 0.0 && self.min_sampling_ratio <= self.base_sampling_ratio) {
            return Err(format!(
                "min_sampling_ratio must lie in (0, base_sampling_ratio], got {}",
                self.min_sampling_ratio
            ));
        }
        Ok(())
    }

    /// Interpolates the effective ratios for a degrade factor in
    /// `[0, 1]`: drop rises towards the max, sampling falls towards the
    /// min. Returns `(drop_ratio, sampling_ratio)`.
    pub fn apply(&self, degrade: f64) -> (f64, f64) {
        let d = degrade.clamp(0.0, 1.0);
        let drop = self.base_drop_ratio + d * (self.max_drop_ratio - self.base_drop_ratio);
        let sampling =
            self.base_sampling_ratio - d * (self.base_sampling_ratio - self.min_sampling_ratio);
        (drop, sampling)
    }
}

/// Controller tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionConfig {
    /// p99 job latency the service tries to hold, in seconds.
    pub p99_target_secs: f64,
    /// Pool backlog (queued tasks) above which the service counts as
    /// overloaded even before latencies confirm it.
    pub queue_threshold: usize,
    /// Completed-job latencies kept in the sliding window.
    pub window: usize,
    /// Additive increase applied to the degrade factor per overloaded
    /// observation.
    pub increase_step: f64,
    /// Multiplicative decrease applied per healthy observation.
    pub decrease_factor: f64,
    /// Master switch: when `false`, every job is admitted at its base
    /// ratios (the no-controller baseline the load generator compares
    /// against).
    pub enabled: bool,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            p99_target_secs: 1.0,
            queue_threshold: 64,
            window: 64,
            increase_step: 0.2,
            decrease_factor: 0.7,
            enabled: true,
        }
    }
}

/// One admission decision, for instrumentation and the load generator's
/// JSON report.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct DegradeDecision {
    /// The admitted job.
    pub job: u64,
    /// Degrade factor at admission.
    pub degrade: f64,
    /// Effective drop ratio imposed.
    pub drop_ratio: f64,
    /// Effective sampling ratio imposed.
    pub sampling_ratio: f64,
}

#[derive(Debug, Default)]
struct ControllerState {
    latencies: VecDeque<f64>,
    degrade: f64,
    decisions: Vec<DegradeDecision>,
    overloaded_observations: u64,
    failed_maps: u64,
    retried_maps: u64,
    degraded_maps: u64,
}

/// The feedback loop: records completed-job latencies, compares p99 and
/// pool backlog against targets, and exposes the degrade factor used at
/// admission.
#[derive(Debug)]
pub struct AdmissionController {
    config: AdmissionConfig,
    state: Mutex<ControllerState>,
    obs: Option<Arc<Obs>>,
}

impl AdmissionController {
    /// Creates a controller.
    pub fn new(config: AdmissionConfig) -> Self {
        Self::with_obs(config, None)
    }

    /// Creates a controller that publishes its feedback-loop state
    /// (p99 estimate, window length, degrade factor, per-decision
    /// trace events) into `obs`.
    pub fn with_obs(config: AdmissionConfig, obs: Option<Arc<Obs>>) -> Self {
        AdmissionController {
            config,
            state: Mutex::new(ControllerState::default()),
            obs,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &AdmissionConfig {
        &self.config
    }

    /// Records one completed job's end-to-end latency and the pool
    /// backlog observed at completion, then updates the degrade factor
    /// (AIMD: additive increase under overload, multiplicative decrease
    /// when healthy).
    pub fn on_job_complete(&self, latency_secs: f64, queue_depth: usize) {
        let mut state = self.state.lock();
        state.latencies.push_back(latency_secs.max(0.0));
        while state.latencies.len() > self.config.window {
            state.latencies.pop_front();
        }
        if let Some(obs) = &self.obs {
            obs.registry
                .histogram("admission_job_latency_secs", &[])
                .observe(latency_secs.max(0.0));
            obs.registry
                .gauge("admission_window_len", &[])
                .set(state.latencies.len() as f64);
        }
        if !self.config.enabled {
            return;
        }
        let p99 = percentile(state.latencies.make_contiguous(), 0.99);
        let overloaded = p99.is_some_and(|p| p > self.config.p99_target_secs)
            || queue_depth > self.config.queue_threshold;
        if overloaded {
            state.overloaded_observations += 1;
            state.degrade = (state.degrade + self.config.increase_step).min(1.0);
        } else {
            state.degrade *= self.config.decrease_factor;
            if state.degrade < 1e-3 {
                state.degrade = 0.0;
            }
        }
        if let Some(obs) = &self.obs {
            if let Some(p) = p99 {
                obs.registry.gauge("admission_p99_secs", &[]).set(p);
            }
            obs.registry
                .gauge("admission_degrade", &[])
                .set(state.degrade);
            if overloaded {
                obs.registry
                    .counter("admission_overloaded_total", &[])
                    .inc();
            }
            obs.tracer.counter(
                "admission",
                0,
                &[("degrade", state.degrade), ("p99_secs", p99.unwrap_or(0.0))],
            );
        }
    }

    /// The current degrade factor in `[0, 1]` (always `0` when the
    /// controller is disabled).
    pub fn degrade(&self) -> f64 {
        if !self.config.enabled {
            return 0.0;
        }
        self.state.lock().degrade
    }

    /// Admits job `job` against `budget`: applies the current degrade
    /// factor, records the decision, and returns it.
    ///
    /// `queue_depth` is the pool backlog at admission time. A backlog
    /// above the threshold is itself an overload signal — it raises the
    /// degrade factor *before* the decision, so the service reacts to a
    /// building queue without waiting for slow completions to confirm
    /// it through the latency window.
    pub fn admit(&self, job: u64, budget: &ApproxBudget, queue_depth: usize) -> DegradeDecision {
        let mut state = self.state.lock();
        if self.config.enabled && queue_depth > self.config.queue_threshold {
            state.overloaded_observations += 1;
            state.degrade = (state.degrade + self.config.increase_step).min(1.0);
        }
        let degrade = if self.config.enabled {
            state.degrade
        } else {
            0.0
        };
        let (drop_ratio, sampling_ratio) = budget.apply(degrade);
        let decision = DegradeDecision {
            job,
            degrade,
            drop_ratio,
            sampling_ratio,
        };
        state.decisions.push(decision.clone());
        if let Some(obs) = &self.obs {
            obs.registry.counter("admission_decisions_total", &[]).inc();
            obs.registry.gauge("admission_degrade", &[]).set(degrade);
            // One instant event per decision: the caller's budget
            // (before) next to the ratios actually imposed (after).
            obs.tracer.instant(
                &format!("admit job {job}"),
                "admission",
                0,
                0,
                vec![
                    arg_num("base_drop_ratio", budget.base_drop_ratio),
                    arg_num("max_drop_ratio", budget.max_drop_ratio),
                    arg_num("base_sampling_ratio", budget.base_sampling_ratio),
                    arg_num("min_sampling_ratio", budget.min_sampling_ratio),
                    arg_num("degrade", degrade),
                    arg_num("drop_ratio", drop_ratio),
                    arg_num("sampling_ratio", sampling_ratio),
                    arg_num("queue_depth", queue_depth as f64),
                ],
            );
        }
        decision
    }

    /// Records one completed job's fault-tolerance accounting: failed
    /// map attempts, retries scheduled, and tasks degraded to dropped
    /// clusters. Service-wide totals are exposed via
    /// [`AdmissionController::fault_totals`] and, when the controller
    /// carries an [`Obs`] context, as `admission_failed_maps_total` /
    /// `admission_retried_maps_total` / `admission_degraded_maps_total`.
    pub fn on_job_faults(&self, failed: usize, retried: usize, degraded: usize) {
        let mut state = self.state.lock();
        state.failed_maps += failed as u64;
        state.retried_maps += retried as u64;
        state.degraded_maps += degraded as u64;
        if let Some(obs) = &self.obs {
            obs.registry
                .counter("admission_failed_maps_total", &[])
                .add(failed as u64);
            obs.registry
                .counter("admission_retried_maps_total", &[])
                .add(retried as u64);
            obs.registry
                .counter("admission_degraded_maps_total", &[])
                .add(degraded as u64);
        }
    }

    /// Service-wide fault totals as
    /// `(failed_maps, retried_maps, degraded_maps)`.
    pub fn fault_totals(&self) -> (u64, u64, u64) {
        let state = self.state.lock();
        (state.failed_maps, state.retried_maps, state.degraded_maps)
    }

    /// p99 latency over the sliding window, if any jobs completed.
    pub fn p99(&self) -> Option<f64> {
        let mut state = self.state.lock();
        percentile(state.latencies.make_contiguous(), 0.99)
    }

    /// p50 latency over the sliding window.
    pub fn p50(&self) -> Option<f64> {
        let mut state = self.state.lock();
        percentile(state.latencies.make_contiguous(), 0.50)
    }

    /// Every admission decision taken so far, in admission order.
    pub fn decisions(&self) -> Vec<DegradeDecision> {
        self.state.lock().decisions.clone()
    }

    /// How many controller updates saw the service overloaded.
    pub fn overloaded_observations(&self) -> u64 {
        self.state.lock().overloaded_observations
    }
}

/// Nearest-rank percentile of `values` (`q` in `[0, 1]`); `None` when
/// empty.
pub fn percentile(values: &[f64], q: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank = ((q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize).max(1);
    Some(sorted[rank - 1])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_interpolation_endpoints() {
        let b = ApproxBudget {
            base_drop_ratio: 0.1,
            max_drop_ratio: 0.5,
            base_sampling_ratio: 1.0,
            min_sampling_ratio: 0.2,
        };
        let close =
            |(a, b): (f64, f64), (x, y): (f64, f64)| (a - x).abs() < 1e-12 && (b - y).abs() < 1e-12;
        assert!(close(b.apply(0.0), (0.1, 1.0)));
        assert!(close(b.apply(1.0), (0.5, 0.2)));
        assert!(close(b.apply(0.5), (0.3, 0.6)));
        // Out-of-range degrade clamps.
        assert!(close(b.apply(7.0), (0.5, 0.2)));
        assert!(close(b.apply(-1.0), (0.1, 1.0)));
    }

    #[test]
    fn precise_budget_never_degrades() {
        let b = ApproxBudget::precise();
        assert!(b.validate().is_ok());
        assert_eq!(b.apply(1.0), (0.0, 1.0));
    }

    #[test]
    fn budget_validation_rejects_inverted_ranges() {
        let mut b = ApproxBudget::up_to(0.5, 0.2);
        assert!(b.validate().is_ok());
        b.max_drop_ratio = 1.0;
        assert!(b.validate().is_err());
        let mut b = ApproxBudget::up_to(0.5, 0.2);
        b.min_sampling_ratio = 0.0;
        assert!(b.validate().is_err());
        let mut b = ApproxBudget::up_to(0.5, 0.2);
        b.base_drop_ratio = 0.6; // above max
        assert!(b.validate().is_err());
    }

    #[test]
    fn degrade_rises_under_overload_and_decays_when_healthy() {
        let c = AdmissionController::new(AdmissionConfig {
            p99_target_secs: 0.5,
            queue_threshold: 10,
            ..Default::default()
        });
        assert_eq!(c.degrade(), 0.0);
        // Slow completions push p99 over target → additive increase.
        for _ in 0..3 {
            c.on_job_complete(2.0, 0);
        }
        let high = c.degrade();
        assert!(high >= 0.5, "degrade should build up, got {high}");
        assert!(c.overloaded_observations() >= 3);
        // Fast completions can't fix p99 while slow samples dominate the
        // window — backlog-free fast completions only help once the
        // window turns over. Simulate a fresh healthy window instead.
        let healthy = AdmissionController::new(AdmissionConfig {
            p99_target_secs: 0.5,
            ..Default::default()
        });
        for _ in 0..5 {
            healthy.on_job_complete(0.1, 0);
        }
        assert_eq!(healthy.degrade(), 0.0);
    }

    #[test]
    fn queue_depth_alone_triggers_overload() {
        let c = AdmissionController::new(AdmissionConfig {
            p99_target_secs: 10.0,
            queue_threshold: 4,
            ..Default::default()
        });
        c.on_job_complete(0.01, 100);
        assert!(c.degrade() > 0.0);
    }

    #[test]
    fn disabled_controller_admits_at_base() {
        let c = AdmissionController::new(AdmissionConfig {
            enabled: false,
            p99_target_secs: 0.001,
            ..Default::default()
        });
        for _ in 0..10 {
            c.on_job_complete(5.0, 1000);
        }
        assert_eq!(c.degrade(), 0.0);
        let b = ApproxBudget::up_to(0.5, 0.2);
        let d = c.admit(1, &b, 1000);
        assert_eq!((d.drop_ratio, d.sampling_ratio), (0.0, 1.0));
    }

    #[test]
    fn backlog_at_admission_degrades_immediately() {
        let c = AdmissionController::new(AdmissionConfig {
            queue_threshold: 4,
            increase_step: 0.5,
            ..Default::default()
        });
        let b = ApproxBudget::up_to(0.8, 0.25);
        // No completions yet, but the pool is drowning: the very next
        // admission reacts.
        let d1 = c.admit(0, &b, 20);
        assert_eq!(d1.degrade, 0.5);
        let d2 = c.admit(1, &b, 20);
        assert_eq!(d2.degrade, 1.0);
        assert_eq!((d2.drop_ratio, d2.sampling_ratio), (0.8, 0.25));
        // Backlog gone: no further increase.
        let d3 = c.admit(2, &b, 0);
        assert_eq!(d3.degrade, 1.0);
        assert_eq!(c.overloaded_observations(), 2);
    }

    #[test]
    fn admit_records_decisions() {
        let c = AdmissionController::new(AdmissionConfig::default());
        let b = ApproxBudget::up_to(0.4, 0.5);
        c.admit(7, &b, 0);
        let ds = c.decisions();
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].job, 7);
        assert_eq!(ds[0].drop_ratio, 0.0);
        assert_eq!(ds[0].sampling_ratio, 1.0);
    }

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 0.50), Some(50.0));
        assert_eq!(percentile(&v, 0.99), Some(99.0));
        assert_eq!(percentile(&v, 1.0), Some(100.0));
        assert_eq!(percentile(&[], 0.5), None);
        assert_eq!(percentile(&[3.0], 0.99), Some(3.0));
    }

    #[test]
    fn p50_p99_reporting() {
        let c = AdmissionController::new(AdmissionConfig::default());
        assert_eq!(c.p99(), None);
        for i in 1..=10 {
            c.on_job_complete(i as f64 / 10.0, 0);
        }
        assert_eq!(c.p50(), Some(0.5));
        assert_eq!(c.p99(), Some(1.0));
    }
}
