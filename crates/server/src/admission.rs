//! Load-adaptive admission control.
//!
//! The ApproxHadoop insight applied to a shared service: when load
//! builds, a cluster that can trade accuracy for time should **degrade**
//! incoming jobs instead of queueing or rejecting them. The controller
//! samples service health (p99 job latency, pool backlog, achieved
//! error bounds) and maintains a single *degrade* factor in `[0, 1]`.
//! Admission maps that factor onto each job's own [`ApproxBudget`] — the
//! approximation the *caller* declared acceptable — so the service never
//! degrades a job beyond what its submitter signed up for, and precise
//! jobs stay precise.
//!
//! Two feedback laws are available (see [`ControllerMode`]):
//!
//! * **[`ControllerMode::Aimd`]** — the legacy loop: additive increase
//!   per overloaded observation, multiplicative decrease per healthy
//!   one. Simple, but blind to *how far* the service is from its goal:
//!   it sawtooths around the target, shedding degrade the instant one
//!   observation looks healthy and re-violating a moment later.
//! * **[`ControllerMode::Slo`]** (default) — a dual controller in the
//!   style of saturation-seeking load-test controllers: a
//!   **latency/goodput loop** pushes the degrade factor up
//!   proportionally to how far p99 sits past the SLO (and on backlog),
//!   decays it only when there is clear headroom, and *holds* inside
//!   the band in between — settling at the knee instead of
//!   oscillating; and a **windowed error loop** tracks the fraction of
//!   recent jobs that violated the SLO (latency over target, or an
//!   achieved interval wider than [`AdmissionConfig::max_relative_bound`])
//!   and both trips the overload detector when the violation rate
//!   exceeds its tolerance and lowers a *ceiling* on the degrade factor
//!   when jobs come back with intervals wider than the accuracy SLO.
//!   The two loops together hold a stated SLO — "p99 ≤ 400ms and worst
//!   relative interval width ≤ 5%" — by trading approximation budget
//!   against load in both directions.

use std::collections::VecDeque;
use std::sync::Arc;

use approxhadoop_obs::{arg_num, Obs};
use parking_lot::Mutex;

/// How far a job may be degraded: the caller's error budget expressed
/// as ratio ranges. `degrade = 0` admits the job at its base ratios;
/// `degrade = 1` admits it at the budget's worst-case ratios.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct ApproxBudget {
    /// Drop ratio the job asks for under no load, in `[0, 1)`.
    pub base_drop_ratio: f64,
    /// Worst drop ratio the service may impose, in `[base, 1)`.
    pub max_drop_ratio: f64,
    /// Sampling ratio the job asks for under no load, in `(0, 1]`.
    pub base_sampling_ratio: f64,
    /// Lowest sampling ratio the service may impose, in `(0, base]`.
    pub min_sampling_ratio: f64,
}

impl ApproxBudget {
    /// A budget that forbids any degradation: the job always runs
    /// precisely.
    pub fn precise() -> Self {
        ApproxBudget {
            base_drop_ratio: 0.0,
            max_drop_ratio: 0.0,
            base_sampling_ratio: 1.0,
            min_sampling_ratio: 1.0,
        }
    }

    /// A budget starting precise that may be degraded down to
    /// `max_drop_ratio` / `min_sampling_ratio` under load.
    pub fn up_to(max_drop_ratio: f64, min_sampling_ratio: f64) -> Self {
        ApproxBudget {
            base_drop_ratio: 0.0,
            max_drop_ratio,
            base_sampling_ratio: 1.0,
            min_sampling_ratio,
        }
    }

    /// Validates ranges and orderings.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..1.0).contains(&self.base_drop_ratio) {
            return Err(format!(
                "base_drop_ratio must lie in [0, 1), got {}",
                self.base_drop_ratio
            ));
        }
        if !(self.base_drop_ratio..1.0).contains(&self.max_drop_ratio) {
            return Err(format!(
                "max_drop_ratio must lie in [base_drop_ratio, 1), got {}",
                self.max_drop_ratio
            ));
        }
        if !(self.base_sampling_ratio > 0.0 && self.base_sampling_ratio <= 1.0) {
            return Err(format!(
                "base_sampling_ratio must lie in (0, 1], got {}",
                self.base_sampling_ratio
            ));
        }
        if !(self.min_sampling_ratio > 0.0 && self.min_sampling_ratio <= self.base_sampling_ratio) {
            return Err(format!(
                "min_sampling_ratio must lie in (0, base_sampling_ratio], got {}",
                self.min_sampling_ratio
            ));
        }
        Ok(())
    }

    /// Interpolates the effective ratios for a degrade factor in
    /// `[0, 1]`: drop rises towards the max, sampling falls towards the
    /// min. Returns `(drop_ratio, sampling_ratio)`.
    pub fn apply(&self, degrade: f64) -> (f64, f64) {
        let d = degrade.clamp(0.0, 1.0);
        let drop = self.base_drop_ratio + d * (self.max_drop_ratio - self.base_drop_ratio);
        let sampling =
            self.base_sampling_ratio - d * (self.base_sampling_ratio - self.min_sampling_ratio);
        (drop, sampling)
    }
}

/// Which feedback law drives the degrade factor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize)]
pub enum ControllerMode {
    /// Legacy additive-increase/multiplicative-decrease loop on raw p99
    /// (kept as the comparison baseline for the load generator).
    Aimd,
    /// SLO-driven dual controller: proportional latency loop plus a
    /// windowed error loop with an accuracy ceiling.
    #[default]
    Slo,
}

impl std::str::FromStr for ControllerMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "aimd" => Ok(ControllerMode::Aimd),
            "slo" => Ok(ControllerMode::Slo),
            other => Err(format!("unknown controller mode `{other}` (aimd|slo)")),
        }
    }
}

/// Controller tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionConfig {
    /// p99 job latency the service tries to hold, in seconds (the
    /// latency half of the SLO).
    pub p99_target_secs: f64,
    /// Worst relative 95%-confidence interval half-width the service
    /// tries to stay under (the accuracy half of the SLO). `None`
    /// disables the accuracy loop: latency alone drives the degrade
    /// factor and approximation is capped only by per-job budgets.
    pub max_relative_bound: Option<f64>,
    /// Pool backlog (queued tasks) above which the service counts as
    /// overloaded even before latencies confirm it.
    pub queue_threshold: usize,
    /// Completed-job latencies kept in the sliding window.
    pub window: usize,
    /// Base additive increase applied to the degrade factor per
    /// overloaded observation. In [`ControllerMode::Slo`] the step is
    /// scaled up proportionally to how far p99 sits past the target.
    pub increase_step: f64,
    /// Multiplicative decrease applied per clear-headroom observation.
    pub decrease_factor: f64,
    /// Fraction of windowed completions allowed over the latency SLO
    /// before the error loop trips the overload detector
    /// ([`ControllerMode::Slo`] only).
    pub violation_tolerance: f64,
    /// p99 below `hold_band × p99_target_secs` counts as clear headroom
    /// (degrade decays); between the band and the target the controller
    /// holds at the knee ([`ControllerMode::Slo`] only).
    pub hold_band: f64,
    /// At most this many recent [`DegradeDecision`]s are retained (ring
    /// buffer); the lifetime total is always available via
    /// [`AdmissionController::decisions_total`].
    pub decisions_cap: usize,
    /// The feedback law (see [`ControllerMode`]).
    pub mode: ControllerMode,
    /// Master switch: when `false`, every job is admitted at its base
    /// ratios (the no-controller baseline the load generator compares
    /// against).
    pub enabled: bool,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            p99_target_secs: 1.0,
            max_relative_bound: None,
            queue_threshold: 64,
            window: 64,
            increase_step: 0.2,
            decrease_factor: 0.7,
            violation_tolerance: 0.05,
            hold_band: 0.7,
            decisions_cap: 1024,
            mode: ControllerMode::default(),
            enabled: true,
        }
    }
}

/// One admission decision, for instrumentation and the load generator's
/// JSON report.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct DegradeDecision {
    /// The admitted job.
    pub job: u64,
    /// Degrade factor at admission.
    pub degrade: f64,
    /// Effective drop ratio imposed.
    pub drop_ratio: f64,
    /// Effective sampling ratio imposed.
    pub sampling_ratio: f64,
}

/// The completed-job latency window: FIFO eviction order plus a
/// mirrored, incrementally maintained sorted copy so percentile reads
/// are a single index — the controller holds its mutex for O(window)
/// shifts instead of an O(n log n) clone-and-sort per completion
/// (`cargo run -p approxhadoop-bench --bin admission` measures both).
#[derive(Debug, Default)]
struct LatencyWindow {
    fifo: VecDeque<f64>,
    sorted: Vec<f64>,
}

impl LatencyWindow {
    /// Pushes one latency, evicting the oldest beyond `cap`.
    fn push(&mut self, v: f64, cap: usize) {
        self.fifo.push_back(v);
        let at = self.sorted.partition_point(|x| *x < v);
        self.sorted.insert(at, v);
        while self.fifo.len() > cap {
            let old = self.fifo.pop_front().expect("non-empty");
            // Any element equal to `old` is interchangeable.
            let at = self.sorted.partition_point(|x| *x < old);
            debug_assert!(self.sorted[at] == old, "sorted mirror out of sync");
            self.sorted.remove(at);
        }
    }

    fn len(&self) -> usize {
        self.fifo.len()
    }

    /// Nearest-rank percentile straight off the sorted mirror.
    fn percentile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.sorted.len() as f64).ceil() as usize).max(1);
        Some(self.sorted[rank - 1])
    }
}

#[derive(Debug, Default)]
struct ControllerState {
    window: LatencyWindow,
    /// Per-completion latency-SLO violation flags (same span as the
    /// latency window) and the running count of `true`s.
    violations: VecDeque<bool>,
    violation_count: usize,
    degrade: f64,
    /// The accuracy loop's cap on the degrade factor, in `[0, 1]`
    /// (starts at `1`; shrinks when achieved bounds violate the
    /// accuracy SLO, recovers when they come back within it).
    ceiling: f64,
    decisions: VecDeque<DegradeDecision>,
    decisions_total: u64,
    overloaded_observations: u64,
    accuracy_violations: u64,
    failed_maps: u64,
    retried_maps: u64,
    degraded_maps: u64,
}

/// The feedback loop: records completed-job latencies (and, in SLO
/// mode, achieved error bounds), compares them against the stated SLO,
/// and exposes the degrade factor used at admission.
#[derive(Debug)]
pub struct AdmissionController {
    config: AdmissionConfig,
    state: Mutex<ControllerState>,
    obs: Option<Arc<Obs>>,
}

impl AdmissionController {
    /// Creates a controller.
    pub fn new(config: AdmissionConfig) -> Self {
        Self::with_obs(config, None)
    }

    /// Creates a controller that publishes its feedback-loop state
    /// (p99 estimate, window length, degrade factor, SLO headroom,
    /// windowed violation rate, accuracy ceiling, per-decision trace
    /// events) into `obs`.
    pub fn with_obs(config: AdmissionConfig, obs: Option<Arc<Obs>>) -> Self {
        let state = ControllerState {
            ceiling: 1.0,
            ..Default::default()
        };
        AdmissionController {
            config,
            state: Mutex::new(state),
            obs,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &AdmissionConfig {
        &self.config
    }

    /// Records one completed job's end-to-end latency and the pool
    /// backlog observed at completion, then updates the degrade factor.
    /// Jobs without a reported error bound — see
    /// [`AdmissionController::on_job_outcome`] — leave the accuracy
    /// loop untouched.
    pub fn on_job_complete(&self, latency_secs: f64, queue_depth: usize) {
        self.on_job_outcome(latency_secs, queue_depth, None);
    }

    /// Records one completed job's end-to-end latency, the pool backlog
    /// observed at completion, and (if the job reported one) its worst
    /// achieved relative interval half-width, then updates the degrade
    /// factor under the configured [`ControllerMode`].
    pub fn on_job_outcome(
        &self,
        latency_secs: f64,
        queue_depth: usize,
        achieved_bound: Option<f64>,
    ) {
        let latency = latency_secs.max(0.0);
        let mut state = self.state.lock();
        state.window.push(latency, self.config.window);
        if let Some(obs) = &self.obs {
            obs.registry
                .histogram("admission_job_latency_secs", &[])
                .observe(latency);
            obs.registry
                .gauge("admission_window_len", &[])
                .set(state.window.len() as f64);
        }
        if !self.config.enabled {
            return;
        }
        let target = self.config.p99_target_secs;
        let p99 = state.window.percentile(0.99);
        match self.config.mode {
            ControllerMode::Aimd => {
                let overloaded =
                    p99.is_some_and(|p| p > target) || queue_depth > self.config.queue_threshold;
                if overloaded {
                    state.overloaded_observations += 1;
                    state.degrade = (state.degrade + self.config.increase_step).min(1.0);
                } else {
                    state.degrade *= self.config.decrease_factor;
                    if state.degrade < 1e-3 {
                        state.degrade = 0.0;
                    }
                }
                if let Some(obs) = &self.obs {
                    if overloaded {
                        obs.registry
                            .counter("admission_overloaded_total", &[])
                            .inc();
                    }
                }
            }
            ControllerMode::Slo => {
                // Error loop, part 1: windowed latency-SLO violation rate.
                let violated = latency > target;
                state.violations.push_back(violated);
                state.violation_count += violated as usize;
                while state.violations.len() > self.config.window {
                    let old = state.violations.pop_front().expect("non-empty");
                    state.violation_count -= old as usize;
                }
                let error_rate =
                    state.violation_count as f64 / state.violations.len().max(1) as f64;

                // Error loop, part 2: the accuracy ceiling. An achieved
                // interval wider than the accuracy SLO means admission
                // spent more approximation than the SLO allows — pull
                // the ceiling below the current degrade so the latency
                // loop has to back off; bounds within the SLO let the
                // ceiling recover.
                if let (Some(max_bound), Some(bound)) =
                    (self.config.max_relative_bound, achieved_bound)
                {
                    if bound > max_bound {
                        state.accuracy_violations += 1;
                        state.ceiling = (state.ceiling.min(state.degrade) * 0.75).max(0.0);
                        if let Some(obs) = &self.obs {
                            obs.registry
                                .counter("admission_accuracy_violations_total", &[])
                                .inc();
                        }
                    } else {
                        state.ceiling = (state.ceiling + 0.05).min(1.0);
                    }
                }

                // Latency/goodput loop: proportional push past the SLO,
                // decay only with clear headroom, hold at the knee.
                let over_target = p99.is_some_and(|p| p > target);
                let overloaded = over_target
                    || queue_depth > self.config.queue_threshold
                    || error_rate > self.config.violation_tolerance;
                if overloaded {
                    state.overloaded_observations += 1;
                    let severity = p99
                        .map(|p| ((p / target.max(1e-9)) - 1.0).clamp(0.0, 2.0))
                        .unwrap_or(0.0);
                    state.degrade += self.config.increase_step * (1.0 + severity);
                    if let Some(obs) = &self.obs {
                        obs.registry
                            .counter("admission_overloaded_total", &[])
                            .inc();
                    }
                } else if p99.is_some_and(|p| p < self.config.hold_band * target)
                    && error_rate <= self.config.violation_tolerance * 0.5
                {
                    state.degrade *= self.config.decrease_factor;
                } else {
                    // Near the knee: probe gently downward instead of
                    // shedding the whole factor and re-violating.
                    state.degrade *= 0.98;
                }
                state.degrade = state.degrade.clamp(0.0, state.ceiling);
                if state.degrade < 1e-3 {
                    state.degrade = 0.0;
                }
                if let Some(obs) = &self.obs {
                    obs.registry
                        .gauge("admission_error_rate", &[])
                        .set(error_rate);
                    obs.registry
                        .gauge("admission_degrade_ceiling", &[])
                        .set(state.ceiling);
                }
            }
        }
        if let Some(obs) = &self.obs {
            if let Some(p) = p99 {
                obs.registry.gauge("admission_p99_secs", &[]).set(p);
                obs.registry
                    .gauge("admission_slo_headroom", &[])
                    .set((target - p) / target.max(1e-9));
            }
            obs.registry
                .gauge("admission_degrade", &[])
                .set(state.degrade);
            obs.tracer.counter(
                "admission",
                0,
                &[("degrade", state.degrade), ("p99_secs", p99.unwrap_or(0.0))],
            );
        }
    }

    /// The current degrade factor in `[0, 1]` (always `0` when the
    /// controller is disabled).
    pub fn degrade(&self) -> f64 {
        if !self.config.enabled {
            return 0.0;
        }
        self.state.lock().degrade
    }

    /// Admits job `job` against `budget`: applies the current degrade
    /// factor, records the decision, and returns it.
    ///
    /// `queue_depth` is the pool backlog at admission time. A backlog
    /// above the threshold is itself an overload signal — it raises the
    /// degrade factor *before* the decision, so the service reacts to a
    /// building queue without waiting for slow completions to confirm
    /// it through the latency window.
    pub fn admit(&self, job: u64, budget: &ApproxBudget, queue_depth: usize) -> DegradeDecision {
        let mut state = self.state.lock();
        if self.config.enabled && queue_depth > self.config.queue_threshold {
            state.overloaded_observations += 1;
            state.degrade = (state.degrade + self.config.increase_step).min(1.0);
            if self.config.mode == ControllerMode::Slo {
                state.degrade = state.degrade.min(state.ceiling);
            }
            if let Some(obs) = &self.obs {
                // Keep the Prometheus counter in step with
                // `overloaded_observations`: completion-path overloads
                // already increment it, and an undercount here would
                // make live scrapes disagree with the JSON reports.
                obs.registry
                    .counter("admission_overloaded_total", &[])
                    .inc();
            }
        }
        let degrade = if self.config.enabled {
            state.degrade
        } else {
            0.0
        };
        let (drop_ratio, sampling_ratio) = budget.apply(degrade);
        let decision = DegradeDecision {
            job,
            degrade,
            drop_ratio,
            sampling_ratio,
        };
        while state.decisions.len() >= self.config.decisions_cap.max(1) {
            state.decisions.pop_front();
        }
        state.decisions.push_back(decision.clone());
        state.decisions_total += 1;
        if let Some(obs) = &self.obs {
            obs.registry.counter("admission_decisions_total", &[]).inc();
            obs.registry.gauge("admission_degrade", &[]).set(degrade);
            // One instant event per decision: the caller's budget
            // (before) next to the ratios actually imposed (after).
            obs.tracer.instant(
                &format!("admit job {job}"),
                "admission",
                0,
                0,
                vec![
                    arg_num("base_drop_ratio", budget.base_drop_ratio),
                    arg_num("max_drop_ratio", budget.max_drop_ratio),
                    arg_num("base_sampling_ratio", budget.base_sampling_ratio),
                    arg_num("min_sampling_ratio", budget.min_sampling_ratio),
                    arg_num("degrade", degrade),
                    arg_num("drop_ratio", drop_ratio),
                    arg_num("sampling_ratio", sampling_ratio),
                    arg_num("queue_depth", queue_depth as f64),
                ],
            );
        }
        decision
    }

    /// Records one completed job's fault-tolerance accounting: failed
    /// map attempts, retries scheduled, and tasks degraded to dropped
    /// clusters. Service-wide totals are exposed via
    /// [`AdmissionController::fault_totals`] and, when the controller
    /// carries an [`Obs`] context, as `admission_failed_maps_total` /
    /// `admission_retried_maps_total` / `admission_degraded_maps_total`.
    pub fn on_job_faults(&self, failed: usize, retried: usize, degraded: usize) {
        let mut state = self.state.lock();
        state.failed_maps += failed as u64;
        state.retried_maps += retried as u64;
        state.degraded_maps += degraded as u64;
        if let Some(obs) = &self.obs {
            obs.registry
                .counter("admission_failed_maps_total", &[])
                .add(failed as u64);
            obs.registry
                .counter("admission_retried_maps_total", &[])
                .add(retried as u64);
            obs.registry
                .counter("admission_degraded_maps_total", &[])
                .add(degraded as u64);
        }
    }

    /// Service-wide fault totals as
    /// `(failed_maps, retried_maps, degraded_maps)`.
    pub fn fault_totals(&self) -> (u64, u64, u64) {
        let state = self.state.lock();
        (state.failed_maps, state.retried_maps, state.degraded_maps)
    }

    /// p99 latency over the sliding window, if any jobs completed.
    pub fn p99(&self) -> Option<f64> {
        self.state.lock().window.percentile(0.99)
    }

    /// p50 latency over the sliding window.
    pub fn p50(&self) -> Option<f64> {
        self.state.lock().window.percentile(0.50)
    }

    /// The most recent admission decisions, in admission order (at most
    /// [`AdmissionConfig::decisions_cap`] are retained).
    pub fn decisions(&self) -> Vec<DegradeDecision> {
        self.state.lock().decisions.iter().cloned().collect()
    }

    /// Lifetime count of admission decisions, including those evicted
    /// from the ring.
    pub fn decisions_total(&self) -> u64 {
        self.state.lock().decisions_total
    }

    /// How many controller updates saw the service overloaded.
    pub fn overloaded_observations(&self) -> u64 {
        self.state.lock().overloaded_observations
    }

    /// How many reported job bounds violated the accuracy SLO.
    pub fn accuracy_violations(&self) -> u64 {
        self.state.lock().accuracy_violations
    }

    /// The accuracy loop's current ceiling on the degrade factor.
    pub fn degrade_ceiling(&self) -> f64 {
        self.state.lock().ceiling
    }

    /// Fraction of windowed completions that violated the latency SLO
    /// ([`ControllerMode::Slo`] only; `0` otherwise).
    pub fn error_rate(&self) -> f64 {
        let state = self.state.lock();
        if state.violations.is_empty() {
            0.0
        } else {
            state.violation_count as f64 / state.violations.len() as f64
        }
    }
}

/// Nearest-rank percentile of `values` (`q` in `[0, 1]`); `None` when
/// empty. Clones and sorts — fine for report-time summaries; the
/// controller's hot path keeps an incrementally sorted window instead.
pub fn percentile(values: &[f64], q: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank = ((q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize).max(1);
    Some(sorted[rank - 1])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_interpolation_endpoints() {
        let b = ApproxBudget {
            base_drop_ratio: 0.1,
            max_drop_ratio: 0.5,
            base_sampling_ratio: 1.0,
            min_sampling_ratio: 0.2,
        };
        let close =
            |(a, b): (f64, f64), (x, y): (f64, f64)| (a - x).abs() < 1e-12 && (b - y).abs() < 1e-12;
        assert!(close(b.apply(0.0), (0.1, 1.0)));
        assert!(close(b.apply(1.0), (0.5, 0.2)));
        assert!(close(b.apply(0.5), (0.3, 0.6)));
        // Out-of-range degrade clamps.
        assert!(close(b.apply(7.0), (0.5, 0.2)));
        assert!(close(b.apply(-1.0), (0.1, 1.0)));
    }

    #[test]
    fn precise_budget_never_degrades() {
        let b = ApproxBudget::precise();
        assert!(b.validate().is_ok());
        assert_eq!(b.apply(1.0), (0.0, 1.0));
    }

    #[test]
    fn budget_validation_rejects_inverted_ranges() {
        let mut b = ApproxBudget::up_to(0.5, 0.2);
        assert!(b.validate().is_ok());
        b.max_drop_ratio = 1.0;
        assert!(b.validate().is_err());
        let mut b = ApproxBudget::up_to(0.5, 0.2);
        b.min_sampling_ratio = 0.0;
        assert!(b.validate().is_err());
        let mut b = ApproxBudget::up_to(0.5, 0.2);
        b.base_drop_ratio = 0.6; // above max
        assert!(b.validate().is_err());
    }

    #[test]
    fn degrade_rises_under_overload_and_decays_when_healthy() {
        for mode in [ControllerMode::Aimd, ControllerMode::Slo] {
            let c = AdmissionController::new(AdmissionConfig {
                p99_target_secs: 0.5,
                queue_threshold: 10,
                mode,
                ..Default::default()
            });
            assert_eq!(c.degrade(), 0.0);
            // Slow completions push p99 over target → increase.
            for _ in 0..3 {
                c.on_job_complete(2.0, 0);
            }
            let high = c.degrade();
            assert!(
                high >= 0.5,
                "degrade should build up, got {high} ({mode:?})"
            );
            assert!(c.overloaded_observations() >= 3);
            // Fast completions can't fix p99 while slow samples dominate
            // the window — backlog-free fast completions only help once
            // the window turns over. Simulate a fresh healthy window.
            let healthy = AdmissionController::new(AdmissionConfig {
                p99_target_secs: 0.5,
                mode,
                ..Default::default()
            });
            for _ in 0..5 {
                healthy.on_job_complete(0.1, 0);
            }
            assert_eq!(healthy.degrade(), 0.0);
        }
    }

    #[test]
    fn queue_depth_alone_triggers_overload() {
        for mode in [ControllerMode::Aimd, ControllerMode::Slo] {
            let c = AdmissionController::new(AdmissionConfig {
                p99_target_secs: 10.0,
                queue_threshold: 4,
                mode,
                ..Default::default()
            });
            c.on_job_complete(0.01, 100);
            assert!(c.degrade() > 0.0, "({mode:?})");
        }
    }

    #[test]
    fn disabled_controller_admits_at_base() {
        let c = AdmissionController::new(AdmissionConfig {
            enabled: false,
            p99_target_secs: 0.001,
            ..Default::default()
        });
        for _ in 0..10 {
            c.on_job_complete(5.0, 1000);
        }
        assert_eq!(c.degrade(), 0.0);
        let b = ApproxBudget::up_to(0.5, 0.2);
        let d = c.admit(1, &b, 1000);
        assert_eq!((d.drop_ratio, d.sampling_ratio), (0.0, 1.0));
    }

    #[test]
    fn backlog_at_admission_degrades_immediately() {
        let c = AdmissionController::new(AdmissionConfig {
            queue_threshold: 4,
            increase_step: 0.5,
            ..Default::default()
        });
        let b = ApproxBudget::up_to(0.8, 0.25);
        // No completions yet, but the pool is drowning: the very next
        // admission reacts.
        let d1 = c.admit(0, &b, 20);
        assert_eq!(d1.degrade, 0.5);
        let d2 = c.admit(1, &b, 20);
        assert_eq!(d2.degrade, 1.0);
        assert_eq!((d2.drop_ratio, d2.sampling_ratio), (0.8, 0.25));
        // Backlog gone: no further increase.
        let d3 = c.admit(2, &b, 0);
        assert_eq!(d3.degrade, 1.0);
        assert_eq!(c.overloaded_observations(), 2);
    }

    #[test]
    fn admit_records_decisions() {
        let c = AdmissionController::new(AdmissionConfig::default());
        let b = ApproxBudget::up_to(0.4, 0.5);
        c.admit(7, &b, 0);
        let ds = c.decisions();
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].job, 7);
        assert_eq!(ds[0].drop_ratio, 0.0);
        assert_eq!(ds[0].sampling_ratio, 1.0);
        assert_eq!(c.decisions_total(), 1);
    }

    #[test]
    fn decisions_ring_is_capped_but_total_keeps_counting() {
        // Regression: a long-running `serve` used to leak one decision
        // per admission forever.
        let c = AdmissionController::new(AdmissionConfig {
            decisions_cap: 8,
            ..Default::default()
        });
        let b = ApproxBudget::up_to(0.4, 0.5);
        for j in 0..100 {
            c.admit(j, &b, 0);
        }
        let ds = c.decisions();
        assert_eq!(ds.len(), 8, "ring must cap retained decisions");
        assert_eq!(
            ds.iter().map(|d| d.job).collect::<Vec<_>>(),
            (92..100).collect::<Vec<_>>(),
            "ring keeps the most recent decisions in order"
        );
        assert_eq!(c.decisions_total(), 100);
    }

    #[test]
    fn admit_backlog_overload_increments_prometheus_counter() {
        // Regression: the backlog-triggered overload in `admit` bumped
        // `overloaded_observations` but not `admission_overloaded_total`,
        // so Prometheus undercounted overloads versus completions.
        let obs = Obs::shared();
        let c = AdmissionController::with_obs(
            AdmissionConfig {
                queue_threshold: 4,
                ..Default::default()
            },
            Some(Arc::clone(&obs)),
        );
        let b = ApproxBudget::up_to(0.4, 0.5);
        c.admit(0, &b, 20); // backlog overload at admission
        c.on_job_complete(100.0, 20); // latency overload at completion
        assert_eq!(c.overloaded_observations(), 2);
        let text = obs.registry.render_prometheus();
        let count: u64 = text
            .lines()
            .find(|l| l.starts_with("admission_overloaded_total"))
            .and_then(|l| l.split_whitespace().last())
            .and_then(|v| v.parse().ok())
            .expect("counter rendered");
        assert_eq!(count, 2, "counter must match overloaded_observations");
    }

    #[test]
    fn slo_controller_holds_at_the_knee_instead_of_sawtoothing() {
        // Latency sits between the hold band and the target: AIMD decays
        // towards zero (each observation looks "healthy"), the SLO
        // controller holds the factor (gentle probe only).
        let config = AdmissionConfig {
            p99_target_secs: 1.0,
            hold_band: 0.7,
            ..Default::default()
        };
        let aimd = AdmissionController::new(AdmissionConfig {
            mode: ControllerMode::Aimd,
            ..config
        });
        let slo = AdmissionController::new(AdmissionConfig {
            mode: ControllerMode::Slo,
            ..config
        });
        // Build some degrade in both.
        for _ in 0..3 {
            aimd.on_job_complete(2.0, 0);
            slo.on_job_complete(2.0, 0);
        }
        // Completions just under the SLO; window still carries the slow
        // samples, so p99 stays over target for a while. Drain with
        // fresh controllers instead: seed degrade via backlog, then
        // observe at-the-knee latencies.
        let aimd = AdmissionController::new(AdmissionConfig {
            mode: ControllerMode::Aimd,
            queue_threshold: 1,
            ..config
        });
        let slo = AdmissionController::new(AdmissionConfig {
            mode: ControllerMode::Slo,
            queue_threshold: 1,
            ..config
        });
        let b = ApproxBudget::up_to(0.8, 0.25);
        for j in 0..3 {
            aimd.admit(j, &b, 10);
            slo.admit(j, &b, 10);
        }
        let seeded = slo.degrade();
        assert!(seeded >= 0.5);
        // 0.9s latencies: under the 1.0s target, above the 0.7 band.
        for _ in 0..10 {
            aimd.on_job_complete(0.9, 0);
            slo.on_job_complete(0.9, 0);
        }
        assert!(
            aimd.degrade() < 0.05,
            "AIMD sheds the factor on healthy observations, got {}",
            aimd.degrade()
        );
        assert!(
            slo.degrade() > 0.7 * seeded,
            "SLO controller must hold near the knee, got {} from {seeded}",
            slo.degrade()
        );
        // Clear headroom does decay it.
        for _ in 0..80 {
            slo.on_job_complete(0.1, 0);
        }
        assert!(slo.degrade() < 0.1, "headroom must decay the factor");
    }

    #[test]
    fn slo_severity_scales_the_increase_step() {
        // p99 at 3x the target escalates faster than just past it.
        let mild = AdmissionController::new(AdmissionConfig {
            p99_target_secs: 1.0,
            ..Default::default()
        });
        let severe = AdmissionController::new(AdmissionConfig {
            p99_target_secs: 1.0,
            ..Default::default()
        });
        mild.on_job_complete(1.05, 0);
        severe.on_job_complete(3.0, 0);
        assert!(severe.degrade() > mild.degrade());
    }

    #[test]
    fn accuracy_ceiling_caps_degrade_and_recovers() {
        let c = AdmissionController::new(AdmissionConfig {
            p99_target_secs: 0.1,
            max_relative_bound: Some(0.05),
            increase_step: 0.5,
            ..Default::default()
        });
        // Overloaded completions with acceptable bounds: degrade climbs.
        c.on_job_outcome(1.0, 0, Some(0.01));
        c.on_job_outcome(1.0, 0, Some(0.01));
        assert!(c.degrade() > 0.9);
        assert_eq!(c.accuracy_violations(), 0);
        // A job comes back wider than the accuracy SLO: the ceiling
        // drops below the current factor and drags degrade down even
        // though latency still violates.
        c.on_job_outcome(1.0, 0, Some(0.2));
        assert_eq!(c.accuracy_violations(), 1);
        let capped = c.degrade();
        assert!(capped < 0.8, "ceiling must pull degrade down, got {capped}");
        assert!(c.degrade_ceiling() < 0.8);
        // In-SLO bounds recover the ceiling additively.
        for _ in 0..20 {
            c.on_job_outcome(1.0, 0, Some(0.01));
        }
        assert!(c.degrade_ceiling() > 0.9, "ceiling must recover");
        // Jobs with no reported bound never move the ceiling.
        let before = c.degrade_ceiling();
        c.on_job_outcome(1.0, 0, None);
        assert_eq!(c.degrade_ceiling(), before);
    }

    #[test]
    fn windowed_error_rate_trips_overload_without_p99_breach() {
        // p99 stays under target (1 violation in 64 < the 99th rank at
        // this window size is over target? no — craft it so p99 is under
        // but the violation rate exceeds tolerance).
        let c = AdmissionController::new(AdmissionConfig {
            p99_target_secs: 1.0,
            window: 10,
            violation_tolerance: 0.05,
            ..Default::default()
        });
        // 9 fast, 1 slow: p99 over a 10-window is the max → over target.
        // Use a window where rank p99 = the single slow sample anyway;
        // the interesting assertion is error_rate() bookkeeping.
        for _ in 0..9 {
            c.on_job_complete(0.1, 0);
        }
        assert_eq!(c.error_rate(), 0.0);
        c.on_job_complete(2.0, 0);
        assert!((c.error_rate() - 0.1).abs() < 1e-12);
        assert!(c.overloaded_observations() >= 1);
    }

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 0.50), Some(50.0));
        assert_eq!(percentile(&v, 0.99), Some(99.0));
        assert_eq!(percentile(&v, 1.0), Some(100.0));
        assert_eq!(percentile(&[], 0.5), None);
        assert_eq!(percentile(&[3.0], 0.99), Some(3.0));
    }

    #[test]
    fn incremental_window_matches_clone_and_sort() {
        // The maintained sorted mirror must agree with the reference
        // clone-and-sort percentile at every step, including evictions.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let mut w = LatencyWindow::default();
        let mut reference: VecDeque<f64> = VecDeque::new();
        for i in 0..500 {
            let v = (rng.gen::<f64>() * 10.0 * if i % 7 == 0 { 100.0 } else { 1.0 }).max(0.0);
            w.push(v, 64);
            reference.push_back(v);
            while reference.len() > 64 {
                reference.pop_front();
            }
            let flat: Vec<f64> = reference.iter().copied().collect();
            for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
                assert_eq!(w.percentile(q), percentile(&flat, q), "step {i} q {q}");
            }
        }
    }

    #[test]
    fn p50_p99_reporting() {
        let c = AdmissionController::new(AdmissionConfig::default());
        assert_eq!(c.p99(), None);
        for i in 1..=10 {
            c.on_job_complete(i as f64 / 10.0, 0);
        }
        assert_eq!(c.p50(), Some(0.5));
        assert_eq!(c.p99(), Some(1.0));
    }
}
