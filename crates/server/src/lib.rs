//! A multi-tenant job service over the ApproxHadoop-RS engine.
//!
//! The paper treats one job at a time: submit, approximate, report a
//! bound. A real cluster runs *many* jobs against *one* set of map
//! slots. This crate adds that service layer:
//!
//! * **[`service::JobService`]** — accepts concurrent submissions and
//!   schedules every job's map tasks onto one shared
//!   [`approxhadoop_runtime::pool::SlotPool`], with start-time fair
//!   queuing weighted per tenant. Each job gets per-job cancellation, an
//!   optional deadline (expiry drops the remaining maps — approximate
//!   completion rather than failure), and a stream of
//!   [`approxhadoop_runtime::event::JobEvent`]s.
//! * **[`admission::AdmissionController`]** — the ApproxHadoop twist on
//!   admission control: when p99 latency exceeds its target or the pool
//!   backlog builds, the service does not reject or queue-forever —
//!   it **degrades** new jobs (raises their drop ratio, lowers their
//!   sampling ratio) inside the [`admission::ApproxBudget`] each caller
//!   declared. An AIMD loop moves the degrade factor up under overload
//!   and decays it when the service is healthy.
//!
//! ```
//! use std::sync::Arc;
//! use approxhadoop_server::admission::{AdmissionConfig, ApproxBudget};
//! use approxhadoop_server::service::{JobService, JobSpec};
//! use approxhadoop_runtime::input::VecSource;
//! use approxhadoop_runtime::mapper::FnMapper;
//! use approxhadoop_runtime::reducer::GroupedReducer;
//!
//! let service = JobService::new(4, AdmissionConfig::default());
//! let spec = JobSpec {
//!     budget: ApproxBudget::up_to(0.5, 0.25), // degradable under load
//!     ..Default::default()
//! };
//! let handle = service
//!     .submit(
//!         spec,
//!         Arc::new(VecSource::new(vec![vec![1u32, 2], vec![3, 4]])),
//!         Arc::new(FnMapper::new(|x: &u32, emit: &mut dyn FnMut(u8, u32)| emit(0, *x))),
//!         |_| GroupedReducer::new(|_: &u8, vs: &[u32]| Some(vs.iter().sum::<u32>())),
//!     )
//!     .unwrap();
//! assert_eq!(handle.wait().unwrap().outputs, vec![10]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod loadgen;
pub mod service;

pub use admission::{
    AdmissionConfig, AdmissionController, ApproxBudget, ControllerMode, DegradeDecision,
};
pub use loadgen::{LoadConfig, LoadReport, SatConfig, SaturationReport, SloSpec};
pub use service::{ErrorGoal, JobHandle, JobService, JobSpec};
