//! The multi-tenant job service.
//!
//! One [`JobService`] owns a shared [`SlotPool`] and accepts concurrent
//! job submissions from many threads. Each submission is admitted
//! through the [`AdmissionController`] (which may degrade the job's
//! ratios within its declared [`ApproxBudget`]), registered as a pool
//! tenant for weighted fair sharing, and driven by a lightweight
//! tracker thread; the heavy map work runs on the shared slots. The
//! caller gets a [`JobHandle`] carrying the admission decision, a
//! stream of [`JobEvent`]s, a cancellation handle, and the result.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver};

use approxhadoop_core::spec::{ErrorTarget, PilotSpec};
use approxhadoop_core::target::{SharedApproxState, TargetErrorCoordinator};
use approxhadoop_ipc::Wire;
use approxhadoop_obs::Obs;
use approxhadoop_runtime::engine::{
    run_job_on_pool, run_job_process, JobConfig, JobResult, WorkerSpec,
};
use approxhadoop_runtime::event::{CancelHandle, JobEvent, JobId, JobSession};
use approxhadoop_runtime::input::InputSource;
use approxhadoop_runtime::mapper::Mapper;
use approxhadoop_runtime::metrics::JobMetrics;
use approxhadoop_runtime::pool::SlotPool;
use approxhadoop_runtime::reducer::Reducer;
use approxhadoop_runtime::{
    DatasetFixedCoordinator, DatasetRatios, FaultPlan, FaultPolicy, FixedCoordinator, RuntimeError,
};

use crate::admission::{AdmissionConfig, AdmissionController, ApproxBudget};

/// The worst *final* relative error bound across the job's reducers, if
/// any reported a finite one — the accuracy signal fed back into the
/// admission controller's error loop after every completion.
fn worst_final_bound(metrics: &JobMetrics) -> Option<f64> {
    let mut last: HashMap<usize, f64> = HashMap::new();
    for p in &metrics.bound_series {
        last.insert(p.reducer, p.relative_bound);
    }
    last.values()
        .copied()
        .filter(|b| b.is_finite())
        .fold(None, |acc: Option<f64>, b| {
            Some(acc.map_or(b, |a| a.max(b)))
        })
}

/// What a submitter asks for: identity, fair-share weight, shape, and
/// the approximation budget the service may spend under load.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Human-readable job name (shows up in the load generator report).
    pub name: String,
    /// Fair-share weight across tenants (higher = more slots under
    /// contention). Must be positive.
    pub weight: f64,
    /// The job's own cap on map attempts in flight (its "slots" within
    /// the shared pool).
    pub map_slots: usize,
    /// Reduce tasks.
    pub reduce_tasks: usize,
    /// Seed for task ordering, drop selection and per-task sampling.
    pub seed: u64,
    /// The caller's error budget; admission interpolates inside it.
    pub budget: ApproxBudget,
    /// Optional deadline: on expiry remaining maps are dropped and the
    /// job completes approximately (never killed).
    pub deadline: Option<Duration>,
    /// Retries per failed map task before it is degraded to a dropped
    /// cluster (`0` = fail fast on the first task failure).
    pub max_task_retries: u32,
    /// Optional deterministic fault injection for this job's map path
    /// (testing/chaos).
    pub fault_plan: Option<FaultPlan>,
    /// With retries enabled, fail the job anyway if the final worst
    /// relative error bound of a degraded run exceeds this limit.
    pub max_degraded_bound: Option<f64>,
    /// Worker processes the job runs on when submitted through
    /// [`JobService::submit_process`]; ignored on the shared-pool path.
    pub workers: usize,
    /// Per-worker in-memory shuffle budget in bytes before map output
    /// spills to sorted on-disk runs (process backend only).
    pub shuffle_mem_bytes: usize,
    /// Per-dataset approximation ratios for **multi-input** (tagged)
    /// jobs, indexed by `DatasetId`. Empty (the default) means a
    /// single-input job whose ratios the admission controller decides
    /// within `budget`. Non-empty ratios are explicit and used as-is:
    /// the scheduler samples/drops each dataset independently and
    /// admission does not degrade them (a join's build side must stay
    /// precise, which a global degrade factor cannot know).
    pub datasets: Vec<DatasetRatios>,
}

impl Default for JobSpec {
    fn default() -> Self {
        let engine = JobConfig::default();
        JobSpec {
            name: "job".to_string(),
            weight: 1.0,
            map_slots: 4,
            reduce_tasks: 1,
            seed: 0,
            budget: ApproxBudget::precise(),
            deadline: None,
            max_task_retries: 0,
            fault_plan: None,
            max_degraded_bound: None,
            workers: engine.workers,
            shuffle_mem_bytes: engine.shuffle_mem_bytes,
            datasets: Vec::new(),
        }
    }
}

/// What a target-error submitter asks for: an accuracy goal instead of
/// mechanism ratios ("±1% relative at 95%"), per EARL and the paper's
/// Section 4.4. The service picks the mechanism — a
/// [`TargetErrorCoordinator`] runs a first (or pilot) wave on the shared
/// pool, plans the cheapest continuation (Eq. 4–7), and drops the
/// remaining maps the moment every reducer confirms the bound.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorGoal {
    /// The error bound the job must reach before stopping early.
    pub target: ErrorTarget,
    /// Confidence level for the bound (e.g. `0.95`).
    pub confidence: f64,
    /// Optional pilot wave replacing the precise first wave.
    pub pilot: Option<PilotSpec>,
    /// How far admission may *relax* the goal under load, as a fraction
    /// of the target: at degrade factor `d` the effective target becomes
    /// `target × (1 + d × max_relaxation)`. `0` (the default) keeps the
    /// goal firm regardless of load — the goal-job analogue of
    /// [`ApproxBudget::precise`].
    pub max_relaxation: f64,
}

impl ErrorGoal {
    /// A firm relative goal at 95% confidence: "±`relative_error` at
    /// 95%" (e.g. `0.01` for ±1%).
    pub fn relative(relative_error: f64) -> Self {
        ErrorGoal {
            target: ErrorTarget::Relative(relative_error),
            confidence: 0.95,
            pilot: None,
            max_relaxation: 0.0,
        }
    }

    /// Validates ranges.
    pub fn validate(&self) -> Result<(), String> {
        let v = match self.target {
            ErrorTarget::Relative(x) | ErrorTarget::Absolute(x) => x,
        };
        if !(v > 0.0 && v.is_finite()) {
            return Err(format!("error target must be positive and finite, got {v}"));
        }
        if !(self.confidence > 0.0 && self.confidence < 1.0) {
            return Err(format!(
                "confidence must lie in (0, 1), got {}",
                self.confidence
            ));
        }
        if !(self.max_relaxation >= 0.0 && self.max_relaxation.is_finite()) {
            return Err(format!(
                "max_relaxation must be non-negative and finite, got {}",
                self.max_relaxation
            ));
        }
        if let Some(p) = self.pilot {
            if p.tasks < 2 {
                return Err(format!(
                    "pilot wave needs at least 2 tasks, got {}",
                    p.tasks
                ));
            }
            if !(p.sampling_ratio > 0.0 && p.sampling_ratio <= 1.0) {
                return Err(format!(
                    "pilot sampling ratio must lie in (0, 1], got {}",
                    p.sampling_ratio
                ));
            }
        }
        Ok(())
    }

    /// The goal after admission spends `degrade` of the relaxation
    /// allowance.
    fn relaxed(&self, degrade: f64) -> ErrorTarget {
        let f = 1.0 + degrade.clamp(0.0, 1.0) * self.max_relaxation;
        match self.target {
            ErrorTarget::Relative(x) => ErrorTarget::Relative(x * f),
            ErrorTarget::Absolute(x) => ErrorTarget::Absolute(x * f),
        }
    }
}

/// A submitted job: admission decision, event stream, cancellation, and
/// the (eventual) result.
#[derive(Debug)]
pub struct JobHandle<O> {
    /// The job's service-wide identity.
    pub id: JobId,
    /// The name from the spec.
    pub name: String,
    /// Degrade factor the controller applied at admission.
    pub degrade: f64,
    /// Effective drop ratio the job was admitted at.
    pub drop_ratio: f64,
    /// Effective sampling ratio the job was admitted at.
    pub sampling_ratio: f64,
    events: Receiver<JobEvent>,
    cancel: CancelHandle,
    result: Receiver<Result<JobResult<O>, RuntimeError>>,
}

impl<O> JobHandle<O> {
    /// The stream of lifecycle events
    /// (`Queued → Wave*/Estimate* → Done | Failed`).
    pub fn events(&self) -> &Receiver<JobEvent> {
        &self.events
    }

    /// Requests cancellation; the job fails with
    /// [`RuntimeError::Cancelled`].
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// A clonable cancellation handle.
    pub fn cancel_handle(&self) -> CancelHandle {
        self.cancel.clone()
    }

    /// Blocks until the job finishes and returns its result.
    pub fn wait(self) -> Result<JobResult<O>, RuntimeError> {
        self.result.recv().unwrap_or_else(|_| {
            Err(RuntimeError::TaskPanicked {
                what: "job tracker thread".into(),
            })
        })
    }

    /// Non-blocking poll: `Some(result)` once the job finished.
    pub fn try_wait(&self) -> Option<Result<JobResult<O>, RuntimeError>> {
        self.result.try_recv().ok()
    }
}

/// The multi-tenant job service (see the module docs).
#[derive(Debug)]
pub struct JobService {
    pool: Arc<SlotPool>,
    controller: Arc<AdmissionController>,
    next_job: AtomicU64,
    obs: Arc<Obs>,
}

impl JobService {
    /// Creates a service with `slots` shared map slots and the given
    /// admission configuration. The service always carries an
    /// observability context (see [`JobService::with_obs`] to share
    /// one across services or pre-register metrics).
    pub fn new(slots: usize, admission: AdmissionConfig) -> Self {
        Self::with_obs(slots, admission, Obs::shared())
    }

    /// Creates a service publishing metrics and trace events into a
    /// caller-supplied [`Obs`] context: the pool reports queue/slot
    /// gauges and per-tenant waits, the admission controller reports
    /// its feedback-loop state and per-decision events, and every job
    /// records a `job → wave → task` span tree on its own trace lane.
    pub fn with_obs(slots: usize, admission: AdmissionConfig, obs: Arc<Obs>) -> Self {
        JobService {
            pool: SlotPool::new_with_obs(slots, Some(Arc::clone(&obs))),
            controller: Arc::new(AdmissionController::with_obs(
                admission,
                Some(Arc::clone(&obs)),
            )),
            next_job: AtomicU64::new(0),
            obs,
        }
    }

    /// The service-wide observability context: metrics registry
    /// (Prometheus text / JSON snapshot) and trace ring (Chrome trace).
    pub fn obs(&self) -> &Arc<Obs> {
        &self.obs
    }

    /// The shared slot pool (for instrumentation).
    pub fn pool(&self) -> &Arc<SlotPool> {
        &self.pool
    }

    /// The admission controller (for instrumentation).
    pub fn controller(&self) -> &Arc<AdmissionController> {
        &self.controller
    }

    /// Jobs submitted so far.
    pub fn submitted(&self) -> u64 {
        self.next_job.load(Ordering::SeqCst)
    }

    /// Submits a job. Validates the spec, takes an admission decision
    /// (possibly degrading within `spec.budget`), and starts a tracker
    /// thread driving the job over the shared pool. Returns immediately
    /// with the job's handle.
    pub fn submit<S, M, R, FR>(
        &self,
        spec: JobSpec,
        input: Arc<S>,
        mapper: Arc<M>,
        make_reducer: FR,
    ) -> Result<JobHandle<R::Output>, RuntimeError>
    where
        S: InputSource + 'static,
        M: Mapper<Item = S::Item> + 'static,
        R: Reducer<Key = M::Key, Value = M::Value> + Send + 'static,
        R::Output: Send + 'static,
        FR: Fn(usize) -> R + Send + 'static,
    {
        spec.budget.validate().map_err(RuntimeError::invalid)?;
        if !(spec.weight > 0.0 && spec.weight.is_finite()) {
            return Err(RuntimeError::invalid(format!(
                "weight must be positive and finite, got {}",
                spec.weight
            )));
        }
        // Validate the engine configuration before allocating a job id,
        // so rejected submissions are invisible (no id, no tracker
        // thread, no admission-controller state). Only the sampling and
        // drop ratios are decided later, by the admission controller,
        // which produces them within valid range by construction.
        let provisional = JobConfig {
            map_slots: spec.map_slots,
            servers: 1,
            reduce_tasks: spec.reduce_tasks,
            sampling_ratio: 1.0,
            drop_ratio: 0.0,
            seed: spec.seed,
            combining: true,
            speculative: false,
            straggler_factor: 2.0,
            fault_plan: spec.fault_plan.clone(),
            fault_policy: FaultPolicy {
                max_task_retries: spec.max_task_retries,
                degrade_to_drop: spec.max_task_retries > 0,
                max_degraded_bound: spec.max_degraded_bound,
                ..Default::default()
            },
            obs: Some(Arc::clone(&self.obs)),
            workers: spec.workers,
            shuffle_mem_bytes: spec.shuffle_mem_bytes,
            spill_dir: None,
            flight_dir: None,
            datasets: spec.datasets.clone(),
        };
        provisional.validate()?;
        let id = JobId(self.next_job.fetch_add(1, Ordering::SeqCst));
        let decision = self
            .controller
            .admit(id.0, &spec.budget, self.pool.queued());
        let config = JobConfig {
            sampling_ratio: decision.sampling_ratio,
            drop_ratio: decision.drop_ratio,
            ..provisional
        };

        let (event_tx, event_rx) = unbounded();
        let mut session = JobSession::new(id).with_events(event_tx);
        if let Some(d) = spec.deadline {
            session = session.with_deadline(Instant::now() + d);
        }
        let cancel = session.cancel_handle();
        session.emit(JobEvent::Queued { job: id });

        let (result_tx, result_rx) = unbounded();
        let pool = Arc::clone(&self.pool);
        let controller = Arc::clone(&self.controller);
        let submitted = Instant::now();
        let weight = spec.weight;
        let seed = spec.seed;
        std::thread::Builder::new()
            .name(format!("tracker-{id}"))
            .spawn(move || {
                let tenant = pool.register_tenant(weight);
                let splits = input.splits();
                let outcome = if splits.is_empty() {
                    Err(RuntimeError::invalid("input has no splits"))
                } else if config.datasets.is_empty() {
                    let mut coordinator = FixedCoordinator::new(
                        splits.len(),
                        config.sampling_ratio,
                        config.drop_ratio,
                        seed,
                    );
                    run_job_on_pool(
                        input,
                        mapper,
                        make_reducer,
                        config,
                        &mut coordinator,
                        &pool,
                        tenant,
                        &session,
                    )
                } else {
                    // A multi-input job: per-dataset ratios, validated
                    // against the tagged input's actual dataset count.
                    match DatasetFixedCoordinator::new(&splits, &config.datasets, seed) {
                        Ok(mut coordinator) => run_job_on_pool(
                            input,
                            mapper,
                            make_reducer,
                            config,
                            &mut coordinator,
                            &pool,
                            tenant,
                            &session,
                        ),
                        Err(e) => Err(e),
                    }
                };
                pool.unregister_tenant(tenant);
                // Cancelled jobs say nothing about service health; all
                // other completions (and failures) feed the controller,
                // including the achieved error bound when the job's
                // reducers reported one (the accuracy half of the SLO).
                if !matches!(outcome, Err(RuntimeError::Cancelled)) {
                    let bound = outcome
                        .as_ref()
                        .ok()
                        .and_then(|r| worst_final_bound(&r.metrics));
                    controller.on_job_outcome(
                        submitted.elapsed().as_secs_f64(),
                        pool.queued(),
                        bound,
                    );
                }
                if let Ok(r) = &outcome {
                    let m = &r.metrics;
                    if m.failed_maps > 0 || m.retried_maps > 0 || m.degraded_to_drop > 0 {
                        controller.on_job_faults(m.failed_maps, m.retried_maps, m.degraded_to_drop);
                    }
                }
                match &outcome {
                    Ok(r) => session.emit(JobEvent::Done {
                        job: id,
                        wall_secs: r.metrics.wall_secs,
                    }),
                    Err(e) => session.emit(JobEvent::Failed {
                        job: id,
                        reason: e.to_string(),
                    }),
                }
                let _ = result_tx.send(outcome);
            })
            .expect("spawn job tracker thread");

        Ok(JobHandle {
            id,
            name: spec.name,
            degrade: decision.degrade,
            drop_ratio: decision.drop_ratio,
            sampling_ratio: decision.sampling_ratio,
            events: event_rx,
            cancel,
            result: result_rx,
        })
    }

    /// Submits a **target-error job**: the caller states a goal
    /// ([`ErrorGoal`], e.g. "±1% relative at 95%") instead of
    /// drop/sampling ratios, and the service runs it on the shared pool
    /// through a [`TargetErrorCoordinator`] — a precise (or pilot)
    /// first wave, a timing-model fit, the Eq. 4–7 plan, and an early
    /// stop that drops every remaining map once all reducers confirm
    /// the bound.
    ///
    /// `make_reducer` receives the job's [`SharedApproxState`] so it
    /// can attach a bound monitor (e.g.
    /// `MultiStageReducer::with_monitor`) — without reducer reports the
    /// coordinator never confirms the bound and the job degenerates to
    /// a precise run.
    ///
    /// Admission still applies: the decision is recorded, and under
    /// load the controller may *relax* the goal within
    /// [`ErrorGoal::max_relaxation`] (the goal-job analogue of
    /// degrading within an [`ApproxBudget`]). `spec.budget` is ignored
    /// — the coordinator owns the ratios.
    pub fn submit_with_goal<S, M, R, FR>(
        &self,
        spec: JobSpec,
        goal: ErrorGoal,
        input: Arc<S>,
        mapper: Arc<M>,
        make_reducer: FR,
    ) -> Result<JobHandle<R::Output>, RuntimeError>
    where
        S: InputSource + 'static,
        M: Mapper<Item = S::Item> + 'static,
        R: Reducer<Key = M::Key, Value = M::Value> + Send + 'static,
        R::Output: Send + 'static,
        FR: Fn(usize, &Arc<SharedApproxState>) -> R + Send + 'static,
    {
        goal.validate().map_err(RuntimeError::invalid)?;
        if !spec.datasets.is_empty() {
            // The target-error coordinator plans over one homogeneous
            // cluster population; per-dataset ratio planning is a
            // different (open) problem. Joins submit with explicit
            // ratios through `submit`/`submit_process` instead.
            return Err(RuntimeError::invalid(
                "target-error jobs are single-input (spec.datasets must be empty)",
            ));
        }
        if !(spec.weight > 0.0 && spec.weight.is_finite()) {
            return Err(RuntimeError::invalid(format!(
                "weight must be positive and finite, got {}",
                spec.weight
            )));
        }
        // The coordinator decides per-task sampling and the drop point;
        // the engine config stays precise.
        let config = JobConfig {
            map_slots: spec.map_slots,
            servers: 1,
            reduce_tasks: spec.reduce_tasks,
            sampling_ratio: 1.0,
            drop_ratio: 0.0,
            seed: spec.seed,
            combining: true,
            speculative: false,
            straggler_factor: 2.0,
            fault_plan: spec.fault_plan.clone(),
            fault_policy: FaultPolicy {
                max_task_retries: spec.max_task_retries,
                degrade_to_drop: spec.max_task_retries > 0,
                max_degraded_bound: spec.max_degraded_bound,
                ..Default::default()
            },
            obs: Some(Arc::clone(&self.obs)),
            workers: spec.workers,
            shuffle_mem_bytes: spec.shuffle_mem_bytes,
            spill_dir: None,
            flight_dir: None,
            datasets: Vec::new(),
        };
        config.validate()?;
        let id = JobId(self.next_job.fetch_add(1, Ordering::SeqCst));
        // Goal jobs carry no ratio budget; the decision still records
        // the degrade factor, which relaxes the goal within the caller's
        // allowance.
        let decision = self
            .controller
            .admit(id.0, &ApproxBudget::precise(), self.pool.queued());
        let effective_target = goal.relaxed(decision.degrade);

        let (event_tx, event_rx) = unbounded();
        let mut session = JobSession::new(id).with_events(event_tx);
        if let Some(d) = spec.deadline {
            session = session.with_deadline(Instant::now() + d);
        }
        let cancel = session.cancel_handle();
        session.emit(JobEvent::Queued { job: id });

        let (result_tx, result_rx) = unbounded();
        let pool = Arc::clone(&self.pool);
        let controller = Arc::clone(&self.controller);
        let submitted = Instant::now();
        let weight = spec.weight;
        let wave_size = spec.map_slots;
        let reduce_tasks = spec.reduce_tasks;
        let pilot = goal.pilot;
        let confidence = goal.confidence;
        std::thread::Builder::new()
            .name(format!("tracker-{id}"))
            .spawn(move || {
                let tenant = pool.register_tenant(weight);
                let total = input.splits().len();
                let outcome = if total == 0 {
                    Err(RuntimeError::invalid("input has no splits"))
                } else {
                    let shared = Arc::new(SharedApproxState::new(reduce_tasks));
                    let mut coordinator = TargetErrorCoordinator::new(
                        total,
                        effective_target,
                        confidence,
                        wave_size,
                        pilot,
                        Arc::clone(&shared),
                    );
                    let reducer_shared = Arc::clone(&shared);
                    run_job_on_pool(
                        input,
                        mapper,
                        move |partition| make_reducer(partition, &reducer_shared),
                        config,
                        &mut coordinator,
                        &pool,
                        tenant,
                        &session,
                    )
                };
                pool.unregister_tenant(tenant);
                if !matches!(outcome, Err(RuntimeError::Cancelled)) {
                    let bound = outcome
                        .as_ref()
                        .ok()
                        .and_then(|r| worst_final_bound(&r.metrics));
                    controller.on_job_outcome(
                        submitted.elapsed().as_secs_f64(),
                        pool.queued(),
                        bound,
                    );
                }
                if let Ok(r) = &outcome {
                    let m = &r.metrics;
                    if m.failed_maps > 0 || m.retried_maps > 0 || m.degraded_to_drop > 0 {
                        controller.on_job_faults(m.failed_maps, m.retried_maps, m.degraded_to_drop);
                    }
                }
                match &outcome {
                    Ok(r) => session.emit(JobEvent::Done {
                        job: id,
                        wall_secs: r.metrics.wall_secs,
                    }),
                    Err(e) => session.emit(JobEvent::Failed {
                        job: id,
                        reason: e.to_string(),
                    }),
                }
                let _ = result_tx.send(outcome);
            })
            .expect("spawn job tracker thread");

        Ok(JobHandle {
            id,
            name: spec.name,
            degrade: decision.degrade,
            drop_ratio: decision.drop_ratio,
            sampling_ratio: decision.sampling_ratio,
            events: event_rx,
            cancel,
            result: result_rx,
        })
    }

    /// Submits a job onto the **process backend**: the map work runs in
    /// `spec.workers` separate worker processes (started from `worker`)
    /// instead of on the shared slot pool, with a spill-capable shuffle
    /// bounded by `spec.shuffle_mem_bytes`.
    ///
    /// Admission control still applies — the job's sampling/drop ratios
    /// are degraded within its budget under load and its completion
    /// feeds the latency controller — but weighted fair sharing does
    /// not: process jobs own their workers outright, so `spec.weight`
    /// is ignored beyond validation. The worker binary must register
    /// the job named in `worker` (see `JobRegistry`).
    pub fn submit_process<S, R, FR>(
        &self,
        spec: JobSpec,
        input: Arc<S>,
        worker: WorkerSpec,
        make_reducer: FR,
    ) -> Result<JobHandle<R::Output>, RuntimeError>
    where
        S: InputSource + 'static,
        S::Item: Wire,
        R: Reducer + Send + 'static,
        R::Key: Wire,
        R::Value: Wire,
        R::Output: Send + 'static,
        FR: Fn(usize) -> R + Send + Sync + 'static,
    {
        spec.budget.validate().map_err(RuntimeError::invalid)?;
        if !(spec.weight > 0.0 && spec.weight.is_finite()) {
            return Err(RuntimeError::invalid(format!(
                "weight must be positive and finite, got {}",
                spec.weight
            )));
        }
        let provisional = JobConfig {
            map_slots: spec.map_slots,
            servers: 1,
            reduce_tasks: spec.reduce_tasks,
            sampling_ratio: 1.0,
            drop_ratio: 0.0,
            seed: spec.seed,
            combining: true,
            speculative: false,
            straggler_factor: 2.0,
            fault_plan: spec.fault_plan.clone(),
            fault_policy: FaultPolicy {
                max_task_retries: spec.max_task_retries,
                degrade_to_drop: spec.max_task_retries > 0,
                max_degraded_bound: spec.max_degraded_bound,
                ..Default::default()
            },
            obs: Some(Arc::clone(&self.obs)),
            workers: spec.workers,
            shuffle_mem_bytes: spec.shuffle_mem_bytes,
            spill_dir: None,
            flight_dir: None,
            datasets: spec.datasets.clone(),
        };
        provisional.validate()?;
        let id = JobId(self.next_job.fetch_add(1, Ordering::SeqCst));
        let decision = self
            .controller
            .admit(id.0, &spec.budget, self.pool.queued());
        let config = JobConfig {
            sampling_ratio: decision.sampling_ratio,
            drop_ratio: decision.drop_ratio,
            ..provisional
        };

        let (event_tx, event_rx) = unbounded();
        let mut session = JobSession::new(id).with_events(event_tx);
        if let Some(d) = spec.deadline {
            session = session.with_deadline(Instant::now() + d);
        }
        let cancel = session.cancel_handle();
        session.emit(JobEvent::Queued { job: id });

        let (result_tx, result_rx) = unbounded();
        let controller = Arc::clone(&self.controller);
        let pool = Arc::clone(&self.pool);
        let submitted = Instant::now();
        let seed = spec.seed;
        std::thread::Builder::new()
            .name(format!("tracker-{id}"))
            .spawn(move || {
                let splits = input.splits();
                let outcome = if splits.is_empty() {
                    Err(RuntimeError::invalid("input has no splits"))
                } else if config.datasets.is_empty() {
                    let mut coordinator = FixedCoordinator::new(
                        splits.len(),
                        config.sampling_ratio,
                        config.drop_ratio,
                        seed,
                    );
                    run_job_process(
                        input.as_ref(),
                        &worker,
                        make_reducer,
                        config,
                        &mut coordinator,
                        &session,
                    )
                } else {
                    match DatasetFixedCoordinator::new(&splits, &config.datasets, seed) {
                        Ok(mut coordinator) => run_job_process(
                            input.as_ref(),
                            &worker,
                            make_reducer,
                            config,
                            &mut coordinator,
                            &session,
                        ),
                        Err(e) => Err(e),
                    }
                };
                if !matches!(outcome, Err(RuntimeError::Cancelled)) {
                    // Process jobs run beside the shared pool, not on
                    // it, but in a mixed fleet a backed-up pool is still
                    // an overload signal this completion should carry —
                    // a hard-coded depth of 0 blinded the controller to
                    // it under `--backend process`.
                    let bound = outcome
                        .as_ref()
                        .ok()
                        .and_then(|r| worst_final_bound(&r.metrics));
                    controller.on_job_outcome(
                        submitted.elapsed().as_secs_f64(),
                        pool.queued(),
                        bound,
                    );
                }
                if let Ok(r) = &outcome {
                    let m = &r.metrics;
                    if m.failed_maps > 0 || m.retried_maps > 0 || m.degraded_to_drop > 0 {
                        controller.on_job_faults(m.failed_maps, m.retried_maps, m.degraded_to_drop);
                    }
                }
                match &outcome {
                    Ok(r) => session.emit(JobEvent::Done {
                        job: id,
                        wall_secs: r.metrics.wall_secs,
                    }),
                    Err(e) => session.emit(JobEvent::Failed {
                        job: id,
                        reason: e.to_string(),
                    }),
                }
                let _ = result_tx.send(outcome);
            })
            .expect("spawn job tracker thread");

        Ok(JobHandle {
            id,
            name: spec.name,
            degrade: decision.degrade,
            drop_ratio: decision.drop_ratio,
            sampling_ratio: decision.sampling_ratio,
            events: event_rx,
            cancel,
            result: result_rx,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use approxhadoop_runtime::input::VecSource;
    use approxhadoop_runtime::mapper::FnMapper;
    use approxhadoop_runtime::reducer::GroupedReducer;

    fn count_job(service: &JobService, spec: JobSpec, blocks: Vec<Vec<u32>>) -> JobHandle<usize> {
        service
            .submit(
                spec,
                Arc::new(VecSource::new(blocks)),
                Arc::new(FnMapper::new(|i: &u32, emit: &mut dyn FnMut(u8, u32)| {
                    emit(0, *i)
                })),
                |_| GroupedReducer::new(|_: &u8, vs: &[u32]| Some(vs.len())),
            )
            .unwrap()
    }

    #[test]
    fn submit_runs_to_completion_with_events() {
        let service = JobService::new(4, AdmissionConfig::default());
        let blocks: Vec<Vec<u32>> = (0..6).map(|i| vec![i, i]).collect();
        let h = count_job(&service, JobSpec::default(), blocks);
        assert_eq!(h.degrade, 0.0);
        let result = h.wait().unwrap();
        assert_eq!(result.outputs, vec![12]);
        assert_eq!(service.submitted(), 1);
    }

    #[test]
    fn faulty_job_retries_and_feeds_fault_totals() {
        let service = JobService::new(4, AdmissionConfig::default());
        let blocks: Vec<Vec<u32>> = (0..8).map(|i| vec![i, i]).collect();
        let spec = JobSpec {
            max_task_retries: 5,
            fault_plan: Some(FaultPlan::parse("io=0.4,seed=1").unwrap()),
            ..Default::default()
        };
        let h = count_job(&service, spec, blocks);
        let result = h.wait().unwrap();
        assert_eq!(result.outputs, vec![16], "all retries must succeed");
        assert!(result.metrics.failed_maps > 0, "plan must inject failures");
        assert_eq!(result.metrics.failed_maps, result.metrics.retried_maps);
        assert_eq!(result.metrics.degraded_to_drop, 0);
        assert_eq!(result.metrics.killed_maps, 0, "failures are not kills");
        let (failed, retried, degraded) = service.controller().fault_totals();
        assert_eq!(failed, result.metrics.failed_maps as u64);
        assert_eq!(retried, result.metrics.retried_maps as u64);
        assert_eq!(degraded, 0);
    }

    /// An input whose `splits()` is empty — `VecSource` refuses to be
    /// constructed that way, but a dynamic source may come up dry.
    struct EmptySource;

    impl InputSource for EmptySource {
        type Item = u32;

        fn splits(&self) -> Vec<approxhadoop_runtime::input::SplitMeta> {
            Vec::new()
        }

        fn read_split(
            &self,
            _index: usize,
            _sampling_ratio: f64,
            _seed: u64,
        ) -> approxhadoop_runtime::Result<approxhadoop_runtime::input::SampledItems<u32>> {
            unreachable!("no splits to read")
        }
    }

    #[test]
    fn empty_input_fails_cleanly() {
        let service = JobService::new(2, AdmissionConfig::default());
        let h = service
            .submit(
                JobSpec::default(),
                Arc::new(EmptySource),
                Arc::new(FnMapper::new(|i: &u32, emit: &mut dyn FnMut(u8, u32)| {
                    emit(0, *i)
                })),
                |_| GroupedReducer::new(|_: &u8, vs: &[u32]| Some(vs.len())),
            )
            .unwrap();
        assert!(h.wait().is_err());
    }

    #[test]
    fn invalid_specs_rejected_at_submit() {
        let service = JobService::new(2, AdmissionConfig::default());
        let bad_weight = JobSpec {
            weight: 0.0,
            ..Default::default()
        };
        let r = service.submit(
            bad_weight,
            Arc::new(VecSource::new(vec![vec![1u32]])),
            Arc::new(FnMapper::new(|i: &u32, emit: &mut dyn FnMut(u8, u32)| {
                emit(0, *i)
            })),
            |_| GroupedReducer::new(|_: &u8, vs: &[u32]| Some(vs.len())),
        );
        assert!(r.is_err());
        let mut bad_budget = JobSpec::default();
        bad_budget.budget.max_drop_ratio = 1.5;
        let r = service.submit(
            bad_budget,
            Arc::new(VecSource::new(vec![vec![1u32]])),
            Arc::new(FnMapper::new(|i: &u32, emit: &mut dyn FnMut(u8, u32)| {
                emit(0, *i)
            })),
            |_| GroupedReducer::new(|_: &u8, vs: &[u32]| Some(vs.len())),
        );
        assert!(r.is_err());
        assert_eq!(service.submitted(), 0, "rejected jobs take no job id");
    }
}
