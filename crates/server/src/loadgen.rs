//! Poisson open-loop load generator over the [`JobService`].
//!
//! The harness fires jobs at the service with exponentially distributed
//! inter-arrival times (an *open loop*: arrivals do not wait for
//! completions, so backlog builds exactly as it would under real
//! tenant traffic). Every job is a project-popularity aggregation over
//! a synthetic Wikipedia access log and declares an [`ApproxBudget`]
//! the admission controller may spend.
//!
//! [`run`] executes the same arrival sequence twice — once with the
//! controller disabled (every job admitted precise) and once enabled
//! (AIMD degradation inside each job's budget) — and reports
//! throughput, p50/p99 latency, peak concurrency, per-job achieved
//! error bounds, and every degradation decision. The two phases share
//! seeds, so the p99 delta isolates the controller's effect.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use approxhadoop_core::multistage::{
    Aggregation, BoundMonitor, MultiStageMapper, MultiStageReducer,
};
use approxhadoop_core::target::SharedApproxState;
use approxhadoop_obs::{Obs, RegistrySnapshot};
use approxhadoop_runtime::engine::WorkerSpec;
use approxhadoop_runtime::metrics::BoundPoint;
use approxhadoop_stats::Interval;
use approxhadoop_workloads::wikilog::{LogEntry, WikiLog};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::admission::{percentile, AdmissionConfig, ApproxBudget, DegradeDecision};
use crate::service::{JobService, JobSpec};

/// Knobs of one load-generation run.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct LoadConfig {
    /// Shared map slots in the service pool.
    pub slots: usize,
    /// Jobs fired per phase.
    pub jobs: usize,
    /// Mean arrival rate in jobs/second (Poisson process).
    pub arrival_rate: f64,
    /// Map tasks (blocks) per job.
    pub blocks_per_job: u64,
    /// Log entries per block (controls per-map work).
    pub entries_per_block: u64,
    /// Every job's budget: how far drop may rise under load.
    pub max_drop_ratio: f64,
    /// Every job's budget: how far sampling may fall under load.
    pub min_sampling_ratio: f64,
    /// The controller's p99 latency target, seconds.
    pub p99_target_secs: f64,
    /// Base seed for arrivals and per-job data/sampling.
    pub seed: u64,
    /// `0` (the default) runs jobs on the shared thread pool; a
    /// positive value runs every job on the **process backend** with
    /// that many worker processes (started from the sibling
    /// `approx-worker` binary) and a spill-capable shuffle.
    pub process_workers: usize,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            slots: 4,
            jobs: 16,
            arrival_rate: 8.0,
            blocks_per_job: 48,
            entries_per_block: 50_000,
            max_drop_ratio: 0.7,
            min_sampling_ratio: 0.25,
            p99_target_secs: 0.4,
            seed: 0,
            process_workers: 0,
        }
    }
}

/// One completed job, as reported in the JSON output.
#[derive(Debug, Clone, serde::Serialize)]
pub struct JobOutcome {
    /// Service-wide job id.
    pub job: u64,
    /// Tenant name.
    pub name: String,
    /// Seconds after phase start the job arrived.
    pub arrival_secs: f64,
    /// Degrade factor applied at admission.
    pub degrade: f64,
    /// Admitted drop ratio.
    pub drop_ratio: f64,
    /// Admitted sampling ratio.
    pub sampling_ratio: f64,
    /// Submission-to-completion latency, seconds.
    pub latency_secs: f64,
    /// Engine wall time, seconds.
    pub wall_secs: f64,
    /// Map tasks in the job.
    pub total_maps: usize,
    /// Map tasks that ran.
    pub executed_maps: usize,
    /// Map tasks dropped by approximation.
    pub dropped_maps: usize,
    /// Worst relative 95%-confidence half-width across output keys
    /// (`None` if the job produced no bounded keys).
    pub worst_relative_bound: Option<f64>,
    /// Per-reducer error-bound convergence over the job's lifetime:
    /// how fast the bound tightened as maps were folded in.
    pub bound_series: Vec<BoundPoint>,
}

/// One phase (controller on or off) of a load run.
#[derive(Debug, Clone, serde::Serialize)]
pub struct PhaseReport {
    /// Whether the admission controller was active.
    pub controller_enabled: bool,
    /// First submission to last completion, seconds.
    pub makespan_secs: f64,
    /// Completed jobs per second over the makespan.
    pub throughput_jobs_per_sec: f64,
    /// Median job latency, seconds.
    pub p50_latency_secs: f64,
    /// 99th-percentile job latency, seconds.
    pub p99_latency_secs: f64,
    /// Mean job latency, seconds.
    pub mean_latency_secs: f64,
    /// Most jobs simultaneously in flight.
    pub peak_concurrency: usize,
    /// Controller updates that saw the service overloaded.
    pub overloaded_observations: u64,
    /// Every admission decision, in admission order.
    pub decisions: Vec<DegradeDecision>,
    /// Per-job outcomes, in completion order.
    pub jobs: Vec<JobOutcome>,
    /// Prometheus text exposition of the observability registry at
    /// phase end. When phases share an `Obs` context (the default in
    /// [`run`]), counters are cumulative across phases, exactly as a
    /// live scrape would see them.
    pub prometheus: String,
    /// The same registry as a structured JSON snapshot.
    pub metrics: RegistrySnapshot,
}

/// The full report: both phases plus the headline comparison.
#[derive(Debug, Clone, serde::Serialize)]
pub struct LoadReport {
    /// The configuration that produced this report.
    pub config: LoadConfig,
    /// Controller disabled: every job admitted precise.
    pub baseline: PhaseReport,
    /// Controller enabled: jobs degraded within their budgets.
    pub controlled: PhaseReport,
    /// `baseline.p99 − controlled.p99`, seconds (positive = the
    /// controller lowered tail latency).
    pub p99_improvement_secs: f64,
    /// `baseline.p99 / controlled.p99`.
    pub p99_speedup: f64,
}

/// Exponentially distributed arrival offsets for a Poisson process at
/// `rate` jobs/sec; deterministic in `seed`.
fn arrival_times(jobs: usize, rate: f64, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xA11A_17A1);
    let mut t = 0.0;
    (0..jobs)
        .map(|_| {
            let u: f64 = rng.gen();
            t += -(1.0 - u).ln() / rate.max(1e-9);
            t
        })
        .collect()
}

/// Worst relative confidence half-width across a job's output keys.
fn worst_relative_bound(outputs: &[(u64, Interval)]) -> Option<f64> {
    outputs
        .iter()
        .filter(|(_, iv)| iv.estimate.abs() > 0.0)
        .map(|(_, iv)| iv.half_width / iv.estimate.abs())
        .fold(None, |acc, b| Some(acc.map_or(b, |a: f64| a.max(b))))
}

/// Runs one phase: the full arrival sequence against a fresh service
/// with its own observability context.
pub fn run_phase(config: &LoadConfig, controller_enabled: bool) -> PhaseReport {
    run_phase_with_obs(config, controller_enabled, Obs::shared())
}

/// Runs one phase against a fresh service publishing into `obs` —
/// callers that keep the `Arc` can render the Chrome trace or scrape
/// the registry afterwards.
pub fn run_phase_with_obs(
    config: &LoadConfig,
    controller_enabled: bool,
    obs: Arc<Obs>,
) -> PhaseReport {
    let service = JobService::with_obs(
        config.slots,
        AdmissionConfig {
            p99_target_secs: config.p99_target_secs,
            // A backlog deeper than one full round of slots means jobs
            // are already waiting — react at admission, not first
            // completion.
            queue_threshold: config.slots,
            increase_step: 0.35,
            enabled: controller_enabled,
            ..Default::default()
        },
        Arc::clone(&obs),
    );
    let arrivals = arrival_times(config.jobs, config.arrival_rate, config.seed);
    let budget = ApproxBudget::up_to(config.max_drop_ratio, config.min_sampling_ratio);

    let in_flight = Arc::new(AtomicUsize::new(0));
    let peak = Arc::new(AtomicUsize::new(0));
    let (done_tx, done_rx) = crossbeam::channel::unbounded::<JobOutcome>();

    let start = Instant::now();
    let mut waiters = Vec::with_capacity(config.jobs);
    for (j, arrival) in arrivals.iter().copied().enumerate() {
        // Open loop: submit at the scheduled instant no matter how far
        // behind the service is.
        let due = start + Duration::from_secs_f64(arrival);
        if let Some(wait) = due.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
        let log = WikiLog {
            days: 1,
            entries_per_block: config.entries_per_block,
            blocks_per_day: config.blocks_per_job,
            pages: 5_000,
            projects: 12,
            seed: config.seed.wrapping_add(1 + j as u64),
        };
        let spec = JobSpec {
            name: format!("tenant-{j}"),
            weight: 1.0,
            map_slots: config.slots.max(2),
            reduce_tasks: 1,
            seed: config.seed.wrapping_add(101 + j as u64),
            budget,
            deadline: None,
            workers: config.process_workers.max(1),
            ..Default::default()
        };
        // A monitor (without a freeze target) makes the reducer stream
        // its error bound to the JobTracker after every map output —
        // that is what feeds the bound-convergence series and live
        // bound gauges.
        let make_reducer = |_| {
            MultiStageReducer::<u64>::new(Aggregation::Sum, 0.95).with_monitor(BoundMonitor {
                shared: Arc::new(SharedApproxState::new(1)),
                report_absolute: false,
                check_every: 1,
                freeze_threshold: None,
                min_maps_before_freeze: usize::MAX,
            })
        };
        let handle = if config.process_workers > 0 {
            let worker = WorkerSpec::sibling("approx-worker", "wikilog-project-bytes")
                .expect("worker binary installed next to the load generator");
            service
                .submit_process(spec, Arc::new(log.source()), worker, make_reducer)
                .expect("valid loadgen spec")
        } else {
            service
                .submit(
                    spec,
                    Arc::new(log.source()),
                    Arc::new(MultiStageMapper::new(
                        |e: &LogEntry, emit: &mut dyn FnMut(u64, f64)| {
                            emit(e.project, e.bytes as f64)
                        },
                    )),
                    make_reducer,
                )
                .expect("valid loadgen spec")
        };
        let now = in_flight.fetch_add(1, Ordering::SeqCst) + 1;
        peak.fetch_max(now, Ordering::SeqCst);

        let in_flight = Arc::clone(&in_flight);
        let done_tx = done_tx.clone();
        let submitted = Instant::now();
        waiters.push(
            std::thread::Builder::new()
                .name(format!("waiter-{j}"))
                .spawn(move || {
                    let (id, name) = (handle.id, handle.name.clone());
                    let (degrade, drop_ratio, sampling_ratio) =
                        (handle.degrade, handle.drop_ratio, handle.sampling_ratio);
                    let result = handle.wait();
                    let latency = submitted.elapsed().as_secs_f64();
                    in_flight.fetch_sub(1, Ordering::SeqCst);
                    let mut result = result.expect("loadgen job failed");
                    let _ = done_tx.send(JobOutcome {
                        job: id.0,
                        name,
                        arrival_secs: arrival,
                        degrade,
                        drop_ratio,
                        sampling_ratio,
                        latency_secs: latency,
                        wall_secs: result.metrics.wall_secs,
                        total_maps: result.metrics.total_maps,
                        executed_maps: result.metrics.executed_maps,
                        dropped_maps: result.metrics.dropped_maps,
                        worst_relative_bound: worst_relative_bound(&result.outputs),
                        bound_series: std::mem::take(&mut result.metrics.bound_series),
                    });
                })
                .expect("spawn waiter"),
        );
    }
    drop(done_tx);
    for w in waiters {
        w.join().expect("waiter panicked");
    }
    let makespan = start.elapsed().as_secs_f64();
    let jobs: Vec<JobOutcome> = done_rx.try_iter().collect();

    let latencies: Vec<f64> = jobs.iter().map(|o| o.latency_secs).collect();
    let mean = latencies.iter().sum::<f64>() / latencies.len().max(1) as f64;
    PhaseReport {
        controller_enabled,
        makespan_secs: makespan,
        throughput_jobs_per_sec: jobs.len() as f64 / makespan.max(1e-9),
        p50_latency_secs: percentile(&latencies, 0.50).unwrap_or(0.0),
        p99_latency_secs: percentile(&latencies, 0.99).unwrap_or(0.0),
        mean_latency_secs: mean,
        peak_concurrency: peak.load(Ordering::SeqCst),
        overloaded_observations: service.controller().overloaded_observations(),
        decisions: service.controller().decisions(),
        jobs,
        prometheus: obs.registry.render_prometheus(),
        metrics: obs.registry.snapshot(),
    }
}

/// Runs the baseline (controller off) and controlled (controller on)
/// phases over the same arrival sequence and reports both.
pub fn run(config: &LoadConfig) -> LoadReport {
    run_with_obs(config, Obs::shared())
}

/// [`run`] with a caller-supplied observability context shared by both
/// phases, so the Chrome trace shows them back to back on one timeline.
pub fn run_with_obs(config: &LoadConfig, obs: Arc<Obs>) -> LoadReport {
    let baseline = run_phase_with_obs(config, false, Arc::clone(&obs));
    let controlled = run_phase_with_obs(config, true, obs);
    let p99_improvement_secs = baseline.p99_latency_secs - controlled.p99_latency_secs;
    let p99_speedup = baseline.p99_latency_secs / controlled.p99_latency_secs.max(1e-9);
    LoadReport {
        config: *config,
        baseline,
        controlled,
        p99_improvement_secs,
        p99_speedup,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> LoadConfig {
        LoadConfig {
            slots: 2,
            jobs: 4,
            arrival_rate: 200.0,
            blocks_per_job: 8,
            entries_per_block: 60,
            p99_target_secs: 1e-6, // force overload immediately
            ..Default::default()
        }
    }

    #[test]
    fn phase_report_accounts_for_every_job() {
        let report = run_phase(&tiny(), true);
        assert_eq!(report.jobs.len(), 4);
        assert_eq!(report.decisions.len(), 4);
        assert!(report.throughput_jobs_per_sec > 0.0);
        assert!(report.p99_latency_secs >= report.p50_latency_secs);
        for o in &report.jobs {
            assert_eq!(o.total_maps, 8);
            assert_eq!(o.executed_maps + o.dropped_maps, 8);
        }
    }

    #[test]
    fn baseline_phase_admits_everything_precise() {
        let report = run_phase(&tiny(), false);
        for o in &report.jobs {
            assert_eq!(o.drop_ratio, 0.0);
            assert_eq!(o.sampling_ratio, 1.0);
            assert_eq!(o.executed_maps, 8);
            // Precise jobs carry zero-width bounds.
            assert_eq!(o.worst_relative_bound, Some(0.0));
        }
    }

    #[test]
    fn controlled_phase_degrades_under_impossible_target() {
        let report = run(&tiny());
        assert!(!report.baseline.controller_enabled);
        assert!(report.controlled.controller_enabled);
        // With a p99 target of 1µs every completion is over target, so
        // at least the later jobs must be admitted degraded.
        assert!(
            report.controlled.jobs.iter().any(|o| o.degrade > 0.0),
            "controller never degraded: {:?}",
            report.controlled.decisions
        );
        // Degraded jobs report non-trivial bounds that stay finite.
        for o in report.controlled.jobs.iter().filter(|o| o.degrade > 0.0) {
            if let Some(b) = o.worst_relative_bound {
                assert!(b.is_finite());
            }
        }
        let json = serde_json::to_string_pretty(&report).unwrap();
        assert!(json.contains("\"p99_speedup\""));
        assert!(json.contains("\"worst_relative_bound\""));
    }
}
