//! Poisson open-loop load generator over the [`JobService`].
//!
//! The harness fires jobs at the service with exponentially distributed
//! inter-arrival times (an *open loop*: arrivals do not wait for
//! completions, so backlog builds exactly as it would under real
//! tenant traffic). Every job is a project-popularity aggregation over
//! a synthetic Wikipedia access log and declares an [`ApproxBudget`]
//! the admission controller may spend.
//!
//! [`run`] executes the same arrival sequence twice — once with the
//! controller disabled (every job admitted precise) and once enabled
//! (degradation inside each job's budget) — and reports throughput,
//! p50/p99 latency, peak concurrency, per-job achieved error bounds,
//! and every degradation decision. The two phases share seeds, so the
//! p99 delta isolates the controller's effect.
//!
//! [`find_max_tps`] instead *searches*: it hill-climbs the offered
//! arrival rate — multiplicative ramp until the stated [`SloSpec`]
//! breaks, then binary refinement of the bracket — to find the
//! service's maximum sustainable TPS at that SLO (the knee), detecting
//! when the *generator* rather than the service saturates
//! (scheduled-vs-actual submission lag), and finally measures the
//! SLO-mode and AIMD-mode controllers at the knee with the same seeds.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use approxhadoop_core::multistage::{
    Aggregation, BoundMonitor, MultiStageMapper, MultiStageReducer,
};
use approxhadoop_core::target::SharedApproxState;
use approxhadoop_obs::{Obs, RegistrySnapshot};
use approxhadoop_runtime::engine::WorkerSpec;
use approxhadoop_runtime::metrics::BoundPoint;
use approxhadoop_stats::Interval;
use approxhadoop_workloads::wikilog::{LogEntry, WikiLog};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::admission::{
    percentile, AdmissionConfig, ApproxBudget, ControllerMode, DegradeDecision,
};
use crate::service::{JobService, JobSpec};

/// Knobs of one load-generation run.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct LoadConfig {
    /// Shared map slots in the service pool.
    pub slots: usize,
    /// Jobs fired per phase.
    pub jobs: usize,
    /// Mean arrival rate in jobs/second (Poisson process).
    pub arrival_rate: f64,
    /// Map tasks (blocks) per job.
    pub blocks_per_job: u64,
    /// Log entries per block (controls per-map work).
    pub entries_per_block: u64,
    /// Every job's budget: how far drop may rise under load.
    pub max_drop_ratio: f64,
    /// Every job's budget: how far sampling may fall under load.
    pub min_sampling_ratio: f64,
    /// The controller's p99 latency target, seconds.
    pub p99_target_secs: f64,
    /// The controller's accuracy SLO: worst relative interval
    /// half-width it tries to stay under (`None` = latency only).
    pub max_relative_bound: Option<f64>,
    /// The feedback law for the controlled phase (the baseline phase
    /// always runs with the controller disabled).
    pub mode: ControllerMode,
    /// Base seed for arrivals and per-job data/sampling.
    pub seed: u64,
    /// `0` (the default) runs jobs on the shared thread pool; a
    /// positive value runs every job on the **process backend** with
    /// that many worker processes (started from the sibling
    /// `approx-worker` binary) and a spill-capable shuffle.
    pub process_workers: usize,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            slots: 4,
            jobs: 16,
            arrival_rate: 8.0,
            blocks_per_job: 48,
            entries_per_block: 50_000,
            max_drop_ratio: 0.7,
            min_sampling_ratio: 0.25,
            p99_target_secs: 0.4,
            max_relative_bound: None,
            mode: ControllerMode::Slo,
            seed: 0,
            process_workers: 0,
        }
    }
}

/// One completed job, as reported in the JSON output.
#[derive(Debug, Clone, serde::Serialize)]
pub struct JobOutcome {
    /// Service-wide job id.
    pub job: u64,
    /// Tenant name.
    pub name: String,
    /// Seconds after phase start the job arrived.
    pub arrival_secs: f64,
    /// How far behind its scheduled arrival the generator actually
    /// submitted the job, seconds. A growing lag means the *generator*
    /// is the bottleneck (underpowered-generator saturation), not the
    /// service.
    pub submit_lag_secs: f64,
    /// Degrade factor applied at admission.
    pub degrade: f64,
    /// Admitted drop ratio.
    pub drop_ratio: f64,
    /// Admitted sampling ratio.
    pub sampling_ratio: f64,
    /// Submission-to-completion latency, seconds.
    pub latency_secs: f64,
    /// Engine wall time, seconds.
    pub wall_secs: f64,
    /// Map tasks in the job.
    pub total_maps: usize,
    /// Map tasks that ran.
    pub executed_maps: usize,
    /// Map tasks dropped by approximation.
    pub dropped_maps: usize,
    /// Worst relative 95%-confidence half-width across output keys
    /// (`None` if the job produced no bounded keys).
    pub worst_relative_bound: Option<f64>,
    /// Per-reducer error-bound convergence over the job's lifetime:
    /// how fast the bound tightened as maps were folded in.
    pub bound_series: Vec<BoundPoint>,
}

/// One phase (controller on or off) of a load run.
#[derive(Debug, Clone, serde::Serialize)]
pub struct PhaseReport {
    /// Whether the admission controller was active.
    pub controller_enabled: bool,
    /// First submission to last completion, seconds.
    pub makespan_secs: f64,
    /// Completed jobs per second over the makespan.
    pub throughput_jobs_per_sec: f64,
    /// Median job latency, seconds.
    pub p50_latency_secs: f64,
    /// 99th-percentile job latency, seconds.
    pub p99_latency_secs: f64,
    /// Mean job latency, seconds.
    pub mean_latency_secs: f64,
    /// Most jobs simultaneously in flight.
    pub peak_concurrency: usize,
    /// Arrival rate the generator actually achieved, jobs/second over
    /// the submission span. Falling visibly short of the configured
    /// rate means the generator saturated before the service did.
    pub achieved_arrival_rate: f64,
    /// Mean submission lag behind the open-loop schedule, seconds.
    pub mean_submit_lag_secs: f64,
    /// Controller updates that saw the service overloaded.
    pub overloaded_observations: u64,
    /// Recent admission decisions, in admission order (ring-capped; see
    /// `decisions_total` for the lifetime count).
    pub decisions: Vec<DegradeDecision>,
    /// Lifetime admission-decision count, including any evicted from
    /// the ring.
    pub decisions_total: u64,
    /// Per-job outcomes, in completion order.
    pub jobs: Vec<JobOutcome>,
    /// Prometheus text exposition of the observability registry at
    /// phase end. When phases share an `Obs` context (the default in
    /// [`run`]), counters are cumulative across phases, exactly as a
    /// live scrape would see them.
    pub prometheus: String,
    /// The same registry as a structured JSON snapshot.
    pub metrics: RegistrySnapshot,
}

/// The full report: both phases plus the headline comparison.
#[derive(Debug, Clone, serde::Serialize)]
pub struct LoadReport {
    /// The configuration that produced this report.
    pub config: LoadConfig,
    /// Controller disabled: every job admitted precise.
    pub baseline: PhaseReport,
    /// Controller enabled: jobs degraded within their budgets.
    pub controlled: PhaseReport,
    /// `baseline.p99 − controlled.p99`, seconds (positive = the
    /// controller lowered tail latency).
    pub p99_improvement_secs: f64,
    /// `baseline.p99 / controlled.p99`.
    pub p99_speedup: f64,
}

/// Exponentially distributed arrival offsets for a Poisson process at
/// `rate` jobs/sec; deterministic in `seed`.
fn arrival_times(jobs: usize, rate: f64, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xA11A_17A1);
    let mut t = 0.0;
    (0..jobs)
        .map(|_| {
            let u: f64 = rng.gen();
            t += -(1.0 - u).ln() / rate.max(1e-9);
            t
        })
        .collect()
}

/// Worst relative confidence half-width across a job's output keys.
fn worst_relative_bound(outputs: &[(u64, Interval)]) -> Option<f64> {
    outputs
        .iter()
        .filter(|(_, iv)| iv.estimate.abs() > 0.0)
        .map(|(_, iv)| iv.half_width / iv.estimate.abs())
        .fold(None, |acc, b| Some(acc.map_or(b, |a: f64| a.max(b))))
}

/// Runs one phase: the full arrival sequence against a fresh service
/// with its own observability context.
pub fn run_phase(config: &LoadConfig, controller_enabled: bool) -> PhaseReport {
    run_phase_with_obs(config, controller_enabled, Obs::shared())
}

/// Runs one phase against a fresh service publishing into `obs` —
/// callers that keep the `Arc` can render the Chrome trace or scrape
/// the registry afterwards.
pub fn run_phase_with_obs(
    config: &LoadConfig,
    controller_enabled: bool,
    obs: Arc<Obs>,
) -> PhaseReport {
    let service = JobService::with_obs(
        config.slots,
        AdmissionConfig {
            p99_target_secs: config.p99_target_secs,
            max_relative_bound: config.max_relative_bound,
            // A backlog deeper than one full round of slots means jobs
            // are already waiting — react at admission, not first
            // completion.
            queue_threshold: config.slots,
            increase_step: 0.35,
            mode: config.mode,
            enabled: controller_enabled,
            ..Default::default()
        },
        Arc::clone(&obs),
    );
    let arrivals = arrival_times(config.jobs, config.arrival_rate, config.seed);
    let budget = ApproxBudget::up_to(config.max_drop_ratio, config.min_sampling_ratio);

    let in_flight = Arc::new(AtomicUsize::new(0));
    let peak = Arc::new(AtomicUsize::new(0));
    let (done_tx, done_rx) = crossbeam::channel::unbounded::<JobOutcome>();

    let start = Instant::now();
    let mut waiters = Vec::with_capacity(config.jobs);
    let mut lag_sum = 0.0;
    let mut last_submit_secs = 0.0;
    for (j, arrival) in arrivals.iter().copied().enumerate() {
        // Open loop: submit at the scheduled instant no matter how far
        // behind the service is.
        let due = start + Duration::from_secs_f64(arrival);
        if let Some(wait) = due.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
        let submit_lag = (start.elapsed().as_secs_f64() - arrival).max(0.0);
        let log = WikiLog {
            days: 1,
            entries_per_block: config.entries_per_block,
            blocks_per_day: config.blocks_per_job,
            pages: 5_000,
            projects: 12,
            seed: config.seed.wrapping_add(1 + j as u64),
        };
        let spec = JobSpec {
            name: format!("tenant-{j}"),
            weight: 1.0,
            map_slots: config.slots.max(2),
            reduce_tasks: 1,
            seed: config.seed.wrapping_add(101 + j as u64),
            budget,
            deadline: None,
            workers: config.process_workers.max(1),
            ..Default::default()
        };
        // A monitor (without a freeze target) makes the reducer stream
        // its error bound to the JobTracker after every map output —
        // that is what feeds the bound-convergence series and live
        // bound gauges.
        let make_reducer = |_| {
            MultiStageReducer::<u64>::new(Aggregation::Sum, 0.95).with_monitor(BoundMonitor {
                shared: Arc::new(SharedApproxState::new(1)),
                report_absolute: false,
                check_every: 1,
                freeze_threshold: None,
                min_maps_before_freeze: usize::MAX,
            })
        };
        let handle = if config.process_workers > 0 {
            let worker = WorkerSpec::sibling("approx-worker", "wikilog-project-bytes")
                .expect("worker binary installed next to the load generator");
            service
                .submit_process(spec, Arc::new(log.source()), worker, make_reducer)
                .expect("valid loadgen spec")
        } else {
            service
                .submit(
                    spec,
                    Arc::new(log.source()),
                    Arc::new(MultiStageMapper::new(
                        |e: &LogEntry, emit: &mut dyn FnMut(u64, f64)| {
                            emit(e.project, e.bytes as f64)
                        },
                    )),
                    make_reducer,
                )
                .expect("valid loadgen spec")
        };
        lag_sum += submit_lag;
        last_submit_secs = start.elapsed().as_secs_f64();
        let now = in_flight.fetch_add(1, Ordering::SeqCst) + 1;
        peak.fetch_max(now, Ordering::SeqCst);

        let in_flight = Arc::clone(&in_flight);
        let done_tx = done_tx.clone();
        let submitted = Instant::now();
        waiters.push(
            std::thread::Builder::new()
                .name(format!("waiter-{j}"))
                .spawn(move || {
                    let (id, name) = (handle.id, handle.name.clone());
                    let (degrade, drop_ratio, sampling_ratio) =
                        (handle.degrade, handle.drop_ratio, handle.sampling_ratio);
                    let result = handle.wait();
                    let latency = submitted.elapsed().as_secs_f64();
                    in_flight.fetch_sub(1, Ordering::SeqCst);
                    let mut result = result.expect("loadgen job failed");
                    let _ = done_tx.send(JobOutcome {
                        job: id.0,
                        name,
                        arrival_secs: arrival,
                        submit_lag_secs: submit_lag,
                        degrade,
                        drop_ratio,
                        sampling_ratio,
                        latency_secs: latency,
                        wall_secs: result.metrics.wall_secs,
                        total_maps: result.metrics.total_maps,
                        executed_maps: result.metrics.executed_maps,
                        dropped_maps: result.metrics.dropped_maps,
                        worst_relative_bound: worst_relative_bound(&result.outputs),
                        bound_series: std::mem::take(&mut result.metrics.bound_series),
                    });
                })
                .expect("spawn waiter"),
        );
    }
    drop(done_tx);
    for w in waiters {
        w.join().expect("waiter panicked");
    }
    let makespan = start.elapsed().as_secs_f64();
    let jobs: Vec<JobOutcome> = done_rx.try_iter().collect();

    let latencies: Vec<f64> = jobs.iter().map(|o| o.latency_secs).collect();
    let mean = latencies.iter().sum::<f64>() / latencies.len().max(1) as f64;
    PhaseReport {
        controller_enabled,
        makespan_secs: makespan,
        throughput_jobs_per_sec: jobs.len() as f64 / makespan.max(1e-9),
        p50_latency_secs: percentile(&latencies, 0.50).unwrap_or(0.0),
        p99_latency_secs: percentile(&latencies, 0.99).unwrap_or(0.0),
        mean_latency_secs: mean,
        peak_concurrency: peak.load(Ordering::SeqCst),
        achieved_arrival_rate: jobs.len() as f64 / last_submit_secs.max(1e-9),
        mean_submit_lag_secs: lag_sum / jobs.len().max(1) as f64,
        overloaded_observations: service.controller().overloaded_observations(),
        decisions: service.controller().decisions(),
        decisions_total: service.controller().decisions_total(),
        jobs,
        prometheus: obs.registry.render_prometheus(),
        metrics: obs.registry.snapshot(),
    }
}

/// Runs the baseline (controller off) and controlled (controller on)
/// phases over the same arrival sequence and reports both.
pub fn run(config: &LoadConfig) -> LoadReport {
    run_with_obs(config, Obs::shared())
}

/// [`run`] with a caller-supplied observability context shared by both
/// phases, so the Chrome trace shows them back to back on one timeline.
pub fn run_with_obs(config: &LoadConfig, obs: Arc<Obs>) -> LoadReport {
    let baseline = run_phase_with_obs(config, false, Arc::clone(&obs));
    let controlled = run_phase_with_obs(config, true, obs);
    let p99_improvement_secs = baseline.p99_latency_secs - controlled.p99_latency_secs;
    let p99_speedup = baseline.p99_latency_secs / controlled.p99_latency_secs.max(1e-9);
    LoadReport {
        config: *config,
        baseline,
        controlled,
        p99_improvement_secs,
        p99_speedup,
    }
}

// ---------------------------------------------------------------------
// Saturation-seeking search (`loadtest --find-max-tps`)
// ---------------------------------------------------------------------

/// The service-level objective a saturation search holds the service
/// to while hunting for its maximum sustainable arrival rate.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct SloSpec {
    /// p99 job latency ceiling, seconds.
    pub p99_secs: f64,
    /// Worst relative interval half-width ceiling (`None` = latency
    /// only).
    pub max_relative_bound: Option<f64>,
    /// Fraction of a step's jobs allowed over the latency ceiling
    /// before the step counts as violating.
    pub violation_tolerance: f64,
}

impl Default for SloSpec {
    fn default() -> Self {
        SloSpec {
            p99_secs: 0.4,
            max_relative_bound: None,
            violation_tolerance: 0.1,
        }
    }
}

/// Knobs of a saturation search.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct SatConfig {
    /// Template for each measurement step (slots, job shape, budget,
    /// seed, backend); `arrival_rate`/`jobs`/`p99_target_secs` are
    /// overridden per step.
    pub base: LoadConfig,
    /// The SLO to hold.
    pub slo: SloSpec,
    /// First offered arrival rate, jobs/second.
    pub start_rate: f64,
    /// Jobs fired per measurement step.
    pub jobs_per_step: usize,
    /// Step budget across ramp and refinement.
    pub max_steps: usize,
    /// Refinement stops once the bracket narrows to this fraction of
    /// the passing rate.
    pub precision: f64,
    /// Also measure an AIMD-mode and an SLO-mode step at the knee
    /// (same seeds) for the controller comparison.
    pub compare_at_knee: bool,
}

impl Default for SatConfig {
    fn default() -> Self {
        SatConfig {
            base: LoadConfig::default(),
            slo: SloSpec::default(),
            start_rate: 1.0,
            jobs_per_step: 12,
            max_steps: 12,
            precision: 0.15,
            compare_at_knee: true,
        }
    }
}

/// Which stage of the search a step belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub enum SearchPhase {
    /// Multiplicative ramp: rate doubles until the SLO breaks.
    Ramp,
    /// Binary refinement inside the `[passing, failing]` bracket.
    Refine,
    /// Post-search comparison step at the knee.
    Knee,
}

/// One measured operating point.
#[derive(Debug, Clone, serde::Serialize)]
pub struct StepMeasurement {
    /// Search stage this step ran under.
    pub phase: SearchPhase,
    /// Controller mode the step's service ran.
    pub mode: ControllerMode,
    /// Offered (scheduled) arrival rate, jobs/second.
    pub offered_rate: f64,
    /// Arrival rate the generator actually achieved.
    pub achieved_rate: f64,
    /// Completed jobs per second over the step's makespan.
    pub throughput_jobs_per_sec: f64,
    /// p99 job latency, seconds.
    pub p99_latency_secs: f64,
    /// Fraction of jobs over the latency SLO.
    pub violation_rate: f64,
    /// Worst relative bound across the step's jobs, if any reported.
    pub worst_relative_bound: Option<f64>,
    /// Mean degrade factor across admissions.
    pub mean_degrade: f64,
    /// Whether the step held the SLO.
    pub slo_met: bool,
    /// Whether the *generator* fell behind its own schedule (achieved
    /// rate visibly short of offered): the measurement says nothing
    /// about the service past this rate.
    pub generator_saturated: bool,
}

/// The saturation search's verdict.
#[derive(Debug, Clone, serde::Serialize)]
pub struct SaturationReport {
    /// The search configuration.
    pub config: SatConfig,
    /// Every measured step, in execution order.
    pub steps: Vec<StepMeasurement>,
    /// Highest offered arrival rate that held the SLO (the knee), in
    /// jobs/second; `0` if even the starting rate violated it.
    pub knee_rate: f64,
    /// Measured completion throughput at the knee, jobs/second.
    pub max_sustainable_tps: f64,
    /// Whether the search found a stable operating point (at least one
    /// passing step, bracket refined or ramp exhausted).
    pub converged: bool,
    /// Whether the ramp stopped because the generator, not the
    /// service, saturated.
    pub generator_saturated: bool,
    /// SLO-mode measurement at the knee (when `compare_at_knee`).
    pub at_knee_slo: Option<StepMeasurement>,
    /// AIMD-mode measurement at the knee with the same seeds — the
    /// fixed-schedule baseline the dual controller is judged against.
    pub at_knee_aimd: Option<StepMeasurement>,
}

/// Threshold below which `achieved/offered` marks the generator as the
/// bottleneck.
const GENERATOR_SATURATION_FRACTION: f64 = 0.85;

/// Judges one completed phase against the SLO.
fn judge_step(
    phase: SearchPhase,
    mode: ControllerMode,
    offered_rate: f64,
    slo: &SloSpec,
    report: &PhaseReport,
) -> StepMeasurement {
    let violations = report
        .jobs
        .iter()
        .filter(|o| o.latency_secs > slo.p99_secs)
        .count();
    let violation_rate = violations as f64 / report.jobs.len().max(1) as f64;
    let worst_bound = report
        .jobs
        .iter()
        .filter_map(|o| o.worst_relative_bound)
        .fold(None, |acc: Option<f64>, b| {
            Some(acc.map_or(b, |a| a.max(b)))
        });
    let mean_degrade = report.decisions.iter().map(|d| d.degrade).sum::<f64>()
        / report.decisions.len().max(1) as f64;
    let bound_ok = match (slo.max_relative_bound, worst_bound) {
        (Some(max), Some(b)) => b <= max,
        _ => true,
    };
    let slo_met = report.p99_latency_secs <= slo.p99_secs
        && violation_rate <= slo.violation_tolerance
        && bound_ok;
    let generator_saturated =
        report.achieved_arrival_rate < GENERATOR_SATURATION_FRACTION * offered_rate;
    StepMeasurement {
        phase,
        mode,
        offered_rate,
        achieved_rate: report.achieved_arrival_rate,
        throughput_jobs_per_sec: report.throughput_jobs_per_sec,
        p99_latency_secs: report.p99_latency_secs,
        violation_rate,
        worst_relative_bound: worst_bound,
        mean_degrade,
        slo_met,
        generator_saturated,
    }
}

/// The search skeleton with a pluggable step runner, so the hill-climb
/// logic is testable against a synthetic service with a known knee.
/// `measure` receives `(offered_rate, phase, mode)` and returns the
/// measured operating point.
pub fn find_max_tps_with<F>(cfg: &SatConfig, mut measure: F) -> SaturationReport
where
    F: FnMut(f64, SearchPhase, ControllerMode) -> StepMeasurement,
{
    let mut steps: Vec<StepMeasurement> = Vec::new();
    let mut best_pass: Option<StepMeasurement> = None;
    let mut lo: Option<f64> = None; // highest passing rate
    let mut hi: Option<f64> = None; // lowest failing rate
    let mut generator_saturated = false;

    // Phase 1 — multiplicative ramp: double until the SLO breaks, the
    // generator saturates, or the step budget runs out.
    let mut rate = cfg.start_rate.max(1e-3);
    while steps.len() < cfg.max_steps {
        let m = measure(rate, SearchPhase::Ramp, cfg.base.mode);
        let passed = m.slo_met;
        let gen_sat = m.generator_saturated;
        steps.push(m.clone());
        if passed {
            lo = Some(rate);
            best_pass = Some(m);
            if gen_sat {
                // Passing but the generator cannot offer more load:
                // the knee is at least here; stop ramping.
                generator_saturated = true;
                break;
            }
            rate *= 2.0;
        } else {
            hi = Some(rate);
            break;
        }
    }

    // Phase 2 — binary refinement of the [lo, hi] bracket.
    if let (Some(mut lo_r), Some(mut hi_r)) = (lo, hi) {
        while steps.len() < cfg.max_steps && (hi_r - lo_r) > cfg.precision * lo_r {
            let mid = 0.5 * (lo_r + hi_r);
            let m = measure(mid, SearchPhase::Refine, cfg.base.mode);
            let passed = m.slo_met;
            steps.push(m.clone());
            if passed {
                lo_r = mid;
                best_pass = Some(m);
            } else {
                hi_r = mid;
            }
        }
        lo = Some(lo_r);
    }

    let knee_rate = lo.unwrap_or(0.0);
    let max_sustainable_tps = best_pass
        .as_ref()
        .map(|m| m.throughput_jobs_per_sec)
        .unwrap_or(0.0);
    let converged = best_pass.is_some();

    // Phase 3 — the controller comparison at the knee: same rate, same
    // seeds, SLO mode versus the AIMD baseline.
    let (at_knee_slo, at_knee_aimd) = if cfg.compare_at_knee && converged {
        (
            Some(measure(knee_rate, SearchPhase::Knee, ControllerMode::Slo)),
            Some(measure(knee_rate, SearchPhase::Knee, ControllerMode::Aimd)),
        )
    } else {
        (None, None)
    };

    SaturationReport {
        config: *cfg,
        steps,
        knee_rate,
        max_sustainable_tps,
        converged,
        generator_saturated,
        at_knee_slo,
        at_knee_aimd,
    }
}

/// Runs the saturation search against the real [`JobService`] on the
/// synthetic wikilog workload, publishing search state into `obs`
/// (`loadtest_target_tps`, `loadtest_search_phase` — 0 ramp / 1 refine
/// / 2 knee — and `loadtest_knee_tps`).
pub fn find_max_tps_with_obs(cfg: &SatConfig, obs: Arc<Obs>) -> SaturationReport {
    let report = find_max_tps_with(cfg, |rate, phase, mode| {
        obs.registry.gauge("loadtest_target_tps", &[]).set(rate);
        obs.registry
            .gauge("loadtest_search_phase", &[])
            .set(match phase {
                SearchPhase::Ramp => 0.0,
                SearchPhase::Refine => 1.0,
                SearchPhase::Knee => 2.0,
            });
        let step_config = LoadConfig {
            arrival_rate: rate,
            jobs: cfg.jobs_per_step,
            p99_target_secs: cfg.slo.p99_secs,
            max_relative_bound: cfg.slo.max_relative_bound,
            mode,
            ..cfg.base
        };
        let phase_report = run_phase_with_obs(&step_config, true, Arc::clone(&obs));
        judge_step(phase, mode, rate, &cfg.slo, &phase_report)
    });
    obs.registry
        .gauge("loadtest_knee_tps", &[])
        .set(report.knee_rate);
    report
}

/// [`find_max_tps_with_obs`] with a private observability context.
pub fn find_max_tps(cfg: &SatConfig) -> SaturationReport {
    find_max_tps_with_obs(cfg, Obs::shared())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> LoadConfig {
        LoadConfig {
            slots: 2,
            jobs: 4,
            arrival_rate: 200.0,
            blocks_per_job: 8,
            entries_per_block: 60,
            p99_target_secs: 1e-6, // force overload immediately
            ..Default::default()
        }
    }

    /// Synthetic service: holds the SLO up to `knee` offered jobs/s,
    /// violates above it; the generator cannot exceed `gen_limit`.
    fn synthetic_step(
        rate: f64,
        phase: SearchPhase,
        mode: ControllerMode,
        knee: f64,
        gen_limit: f64,
    ) -> StepMeasurement {
        let achieved = rate.min(gen_limit);
        StepMeasurement {
            phase,
            mode,
            offered_rate: rate,
            achieved_rate: achieved,
            throughput_jobs_per_sec: achieved.min(knee),
            p99_latency_secs: if rate <= knee { 0.1 } else { 1.0 },
            violation_rate: if rate <= knee { 0.0 } else { 0.5 },
            worst_relative_bound: None,
            mean_degrade: 0.0,
            slo_met: rate <= knee,
            generator_saturated: achieved < GENERATOR_SATURATION_FRACTION * rate,
        }
    }

    #[test]
    fn search_converges_on_a_synthetic_knee() {
        let cfg = SatConfig {
            start_rate: 1.0,
            max_steps: 20,
            precision: 0.1,
            ..Default::default()
        };
        let report =
            find_max_tps_with(&cfg, |r, p, m| synthetic_step(r, p, m, 10.0, f64::INFINITY));
        assert!(report.converged);
        assert!(!report.generator_saturated);
        // The knee is found within the configured precision and never
        // overshoots the true knee (it is the highest *passing* rate).
        assert!(report.knee_rate <= 10.0 + 1e-9, "{}", report.knee_rate);
        assert!(
            (10.0 - report.knee_rate) <= cfg.precision * 10.0,
            "knee {} too far from 10.0",
            report.knee_rate
        );
        assert!(report.max_sustainable_tps > 0.0);
        // The ramp comes first, refinement after; both respect the
        // step budget (knee-comparison steps are stored separately).
        assert!(report.steps.len() <= cfg.max_steps);
        let first_refine = report
            .steps
            .iter()
            .position(|s| s.phase == SearchPhase::Refine)
            .expect("bracket was refined");
        assert!(report.steps[..first_refine]
            .iter()
            .all(|s| s.phase == SearchPhase::Ramp));
        // The knee comparison ran both controllers at the same rate.
        let slo = report.at_knee_slo.expect("slo knee step");
        let aimd = report.at_knee_aimd.expect("aimd knee step");
        assert_eq!(slo.mode, ControllerMode::Slo);
        assert_eq!(aimd.mode, ControllerMode::Aimd);
        assert_eq!(slo.offered_rate, aimd.offered_rate);
        assert_eq!(slo.offered_rate, report.knee_rate);
    }

    #[test]
    fn underpowered_generator_stops_the_ramp_and_is_reported() {
        let cfg = SatConfig {
            start_rate: 1.0,
            max_steps: 20,
            ..Default::default()
        };
        // Service knee at 10 jobs/s but the generator tops out at 3:
        // the search must stop at the last honest measurement instead
        // of crediting the service with rates it never saw.
        let report = find_max_tps_with(&cfg, |r, p, m| synthetic_step(r, p, m, 10.0, 3.0));
        assert!(report.converged);
        assert!(report.generator_saturated);
        assert!(
            report.knee_rate < 10.0,
            "knee {} claims more than the generator could offer",
            report.knee_rate
        );
    }

    #[test]
    fn search_without_a_passing_step_does_not_converge() {
        let cfg = SatConfig {
            start_rate: 1.0,
            max_steps: 8,
            ..Default::default()
        };
        // Even the starting rate violates the SLO.
        let report =
            find_max_tps_with(&cfg, |r, p, m| synthetic_step(r, p, m, 0.25, f64::INFINITY));
        assert!(!report.converged);
        assert_eq!(report.knee_rate, 0.0);
        assert_eq!(report.max_sustainable_tps, 0.0);
        assert!(report.at_knee_slo.is_none() && report.at_knee_aimd.is_none());
    }

    #[test]
    fn ramp_respects_the_step_budget() {
        let cfg = SatConfig {
            start_rate: 1.0,
            max_steps: 3,
            ..Default::default()
        };
        // SLO never breaks: the ramp must stop at the budget with the
        // best measured rate rather than doubling forever.
        let report = find_max_tps_with(&cfg, |r, p, m| {
            synthetic_step(r, p, m, f64::INFINITY, f64::INFINITY)
        });
        assert!(report.converged);
        assert_eq!(report.steps.len(), 3);
        assert_eq!(report.knee_rate, 4.0); // 1 -> 2 -> 4
    }

    #[test]
    fn phase_report_accounts_for_every_job() {
        let report = run_phase(&tiny(), true);
        assert_eq!(report.jobs.len(), 4);
        assert_eq!(report.decisions.len(), 4);
        assert!(report.throughput_jobs_per_sec > 0.0);
        assert!(report.p99_latency_secs >= report.p50_latency_secs);
        for o in &report.jobs {
            assert_eq!(o.total_maps, 8);
            assert_eq!(o.executed_maps + o.dropped_maps, 8);
        }
    }

    #[test]
    fn baseline_phase_admits_everything_precise() {
        let report = run_phase(&tiny(), false);
        for o in &report.jobs {
            assert_eq!(o.drop_ratio, 0.0);
            assert_eq!(o.sampling_ratio, 1.0);
            assert_eq!(o.executed_maps, 8);
            // Precise jobs carry zero-width bounds.
            assert_eq!(o.worst_relative_bound, Some(0.0));
        }
    }

    #[test]
    fn controlled_phase_degrades_under_impossible_target() {
        let report = run(&tiny());
        assert!(!report.baseline.controller_enabled);
        assert!(report.controlled.controller_enabled);
        // With a p99 target of 1µs every completion is over target, so
        // at least the later jobs must be admitted degraded.
        assert!(
            report.controlled.jobs.iter().any(|o| o.degrade > 0.0),
            "controller never degraded: {:?}",
            report.controlled.decisions
        );
        // Degraded jobs report non-trivial bounds that stay finite.
        for o in report.controlled.jobs.iter().filter(|o| o.degrade > 0.0) {
            if let Some(b) = o.worst_relative_bound {
                assert!(b.is_finite());
            }
        }
        let json = serde_json::to_string_pretty(&report).unwrap();
        assert!(json.contains("\"p99_speedup\""));
        assert!(json.contains("\"worst_relative_bound\""));
    }
}
