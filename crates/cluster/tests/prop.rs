//! Property-based tests for the discrete-event cluster simulator.

use approxhadoop_cluster::{simulate, ClusterSpec, SimApprox, SimJobSpec};
use proptest::prelude::*;

fn job(maps: usize, records: u64) -> SimJobSpec {
    SimJobSpec::log_processing(maps, records)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Conservation: every map ends in exactly one terminal state.
    #[test]
    fn task_accounting_is_conserved(
        maps in 1usize..200,
        servers in 1usize..12,
        drop_pct in 0u32..90,
        sample_pct in 1u32..=100,
        seed in 0u64..30,
    ) {
        let approx = SimApprox::Ratios {
            drop_ratio: drop_pct as f64 / 100.0,
            sampling_ratio: sample_pct as f64 / 100.0,
        };
        let r = simulate(&ClusterSpec::xeon(servers), &job(maps, 10_000), approx, seed).unwrap();
        prop_assert_eq!(r.executed_maps + r.dropped_maps + r.killed_maps, maps);
        prop_assert!(r.wall_secs > 0.0);
        prop_assert!(r.energy_wh > 0.0);
    }

    /// Precise runs are exact and deterministic.
    #[test]
    fn precise_runs_are_exact(maps in 1usize..100, seed in 0u64..30) {
        let j = job(maps, 5_000);
        let a = simulate(&ClusterSpec::xeon(4), &j, SimApprox::Precise, seed).unwrap();
        let b = simulate(&ClusterSpec::xeon(4), &j, SimApprox::Precise, seed).unwrap();
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.executed_maps, maps);
        prop_assert!(a.actual_error_rel < 1e-9);
        prop_assert_eq!(a.bound_rel, 0.0);
    }

    /// More servers never slow the job down (same work, more slots).
    #[test]
    fn more_servers_never_slower(maps in 20usize..120, seed in 0u64..20) {
        let j = job(maps, 20_000);
        let small = simulate(&ClusterSpec::xeon(2), &j, SimApprox::Precise, seed).unwrap();
        let large = simulate(&ClusterSpec::xeon(8), &j, SimApprox::Precise, seed).unwrap();
        prop_assert!(
            large.wall_secs <= small.wall_secs * 1.01,
            "8 servers {} vs 2 servers {}",
            large.wall_secs,
            small.wall_secs
        );
    }

    /// S3 never increases energy, never changes accounting.
    #[test]
    fn s3_never_increases_energy(
        maps in 10usize..120,
        drop_pct in 0u32..80,
        seed in 0u64..20,
    ) {
        let j = job(maps, 20_000);
        let approx = SimApprox::Ratios {
            drop_ratio: drop_pct as f64 / 100.0,
            sampling_ratio: 1.0,
        };
        let base = simulate(&ClusterSpec::xeon(5), &j, approx, seed).unwrap();
        let s3 = simulate(&ClusterSpec::xeon(5).with_s3(), &j, approx, seed).unwrap();
        prop_assert!(s3.energy_wh <= base.energy_wh + 1e-9);
        prop_assert_eq!(s3.executed_maps, base.executed_maps);
        prop_assert_eq!(s3.wall_secs, base.wall_secs);
    }

    /// Target mode: bounds reported as met are met, and the job never
    /// outlives the precise run.
    #[test]
    fn target_mode_within_precise_runtime(maps in 50usize..300, seed in 0u64..15) {
        let j = job(maps, 50_000);
        let cluster = ClusterSpec::xeon(5);
        let precise = simulate(&cluster, &j, SimApprox::Precise, seed).unwrap();
        let target = simulate(
            &cluster,
            &j,
            SimApprox::Target { relative_error: 0.02 },
            seed,
        )
        .unwrap();
        prop_assert!(target.wall_secs <= precise.wall_secs * 1.05);
        if target.dropped_maps + target.killed_maps > 0 {
            prop_assert!(
                target.bound_rel <= 0.02 + 1e-9,
                "early-stopped with bound {}",
                target.bound_rel
            );
        }
    }
}
