//! A minimal discrete-event queue over `f64` timestamps.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event scheduled at a simulated time.
#[derive(Debug, Clone, PartialEq)]
pub struct Scheduled<E> {
    /// Simulated timestamp in seconds.
    pub time: f64,
    /// Tie-break sequence number (FIFO for equal times).
    pub seq: u64,
    /// The payload.
    pub event: E,
}

impl<E: PartialEq> Eq for Scheduled<E> {}

impl<E: PartialEq> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E: PartialEq> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse so the BinaryHeap becomes a min-heap on (time, seq).
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered event queue.
#[derive(Debug)]
pub struct EventQueue<E: PartialEq> {
    heap: BinaryHeap<Scheduled<E>>,
    seq: u64,
}

impl<E: PartialEq> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` at `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is NaN.
    pub fn push(&mut self, time: f64, event: E) {
        assert!(!time.is_nan(), "event time must not be NaN");
        self.heap.push(Scheduled {
            time,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        self.heap.pop()
    }

    /// Whether any events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }
}

impl<E: PartialEq> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(3.0, "c");
        q.push(1.0, "a");
        q.push(2.0, "b");
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop().unwrap().event, "a");
        assert_eq!(q.pop().unwrap().event, "b");
        assert_eq!(q.pop().unwrap().event, "c");
        assert!(q.pop().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        q.push(1.0, 1);
        q.push(1.0, 2);
        q.push(1.0, 3);
        assert_eq!(q.pop().unwrap().event, 1);
        assert_eq!(q.pop().unwrap().event, 2);
        assert_eq!(q.pop().unwrap().event, 3);
    }

    #[test]
    #[should_panic]
    fn nan_time_rejected() {
        let mut q = EventQueue::new();
        q.push(f64::NAN, ());
    }
}
