//! Discrete-event cluster simulator for ApproxHadoop-RS.
//!
//! The paper evaluates on a 10-server Xeon cluster (and a 60-server Atom
//! cluster for the 12.5 TB runs). This crate reproduces those
//! cluster-scale *timing and energy* results on a laptop:
//!
//! * servers with a fixed number of map slots — waves of map tasks
//!   emerge from slot scheduling exactly as in the real JobTracker;
//! * the paper's map-task time model `t_map(M, m) = t0 + M·t_r + m·t_p`
//!   (Eq. 5) with optional straggler noise;
//! * the paper's linear power model (60 W idle → 150 W peak per server)
//!   plus an ACPI-S3 sleep state for servers left without work when map
//!   tasks are dropped (Figure 12's energy savings);
//! * **the real approximation stack**: the simulator drives the actual
//!   [`approxhadoop_core::target::TargetErrorCoordinator`] and
//!   [`approxhadoop_core::multistage::MultiStageReducer`] with
//!   synthetic per-block statistics, so plans, bounds and early
//!   termination are computed by the same code that runs real jobs.
//!
//! # Example
//!
//! ```
//! use approxhadoop_cluster::{simulate, ClusterSpec, SimApprox, SimJobSpec};
//!
//! let cluster = ClusterSpec::xeon(10);
//! let job = SimJobSpec::log_processing(740, 600_000);
//! let precise = simulate(&cluster, &job, SimApprox::Precise, 1).unwrap();
//! let approx = simulate(
//!     &cluster,
//!     &job,
//!     SimApprox::Target { relative_error: 0.01 },
//!     1,
//! )
//! .unwrap();
//! assert!(approx.wall_secs < precise.wall_secs);
//! assert!(approx.bound_rel <= 0.01 + 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod power;
pub mod sim;
pub mod spec;

pub use power::PowerModel;
pub use sim::{simulate, SimError, SimResult};
pub use spec::{ClusterSpec, KeyStatModel, SimApprox, SimJobSpec};
