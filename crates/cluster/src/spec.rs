//! Cluster and simulated-job specifications.

use approxhadoop_core::spec::PilotSpec;
use approxhadoop_core::target::TimingModel;

use crate::power::PowerModel;

/// A homogeneous server cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterSpec {
    /// Number of servers.
    pub servers: usize,
    /// Map slots per server.
    pub map_slots_per_server: usize,
    /// Per-server power model.
    pub power: PowerModel,
    /// Whether idle servers may enter ACPI-S3 once they have no more
    /// work (Figure 12's energy knob).
    pub s3_enabled: bool,
    /// Relative CPU speed (1.0 = the paper's Xeon; the Atom cluster is
    /// slower).
    pub speed: f64,
}

impl ClusterSpec {
    /// The paper's Xeon cluster: 8 map slots per server, 60/150 W.
    pub fn xeon(servers: usize) -> Self {
        ClusterSpec {
            servers,
            map_slots_per_server: 8,
            power: PowerModel::xeon(),
            s3_enabled: false,
            speed: 1.0,
        }
    }

    /// The paper's Atom cluster (used for the 12.5 TB runs): 4 map slots,
    /// low power, roughly a quarter of the Xeon's speed.
    pub fn atom(servers: usize) -> Self {
        ClusterSpec {
            servers,
            map_slots_per_server: 4,
            power: PowerModel::atom(),
            s3_enabled: false,
            speed: 0.25,
        }
    }

    /// Enables the S3 sleep state.
    pub fn with_s3(mut self) -> Self {
        self.s3_enabled = true;
        self
    }

    /// Total map slots across the cluster.
    pub fn total_slots(&self) -> usize {
        self.servers * self.map_slots_per_server
    }
}

/// Statistical model of the *worst intermediate key* of a simulated job:
/// per-item values have mean `item_mean` and standard deviation
/// `item_std`; block means vary with standard deviation `block_std`
/// (data within blocks has locality — the paper's explanation for why
/// task dropping widens intervals more than item sampling).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KeyStatModel {
    /// Mean per-item value of the watched key.
    pub item_mean: f64,
    /// Within-block per-item standard deviation.
    pub item_std: f64,
    /// Between-block standard deviation of the block means.
    pub block_std: f64,
}

/// A simulated MapReduce job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimJobSpec {
    /// Number of map tasks (input blocks).
    pub num_maps: usize,
    /// Records per block (`M`).
    pub records_per_map: u64,
    /// The true per-task timing model (on a speed-1.0 server).
    pub timing: TimingModel,
    /// Log-scale standard deviation of multiplicative task-time noise
    /// (stragglers).
    pub straggler_std: f64,
    /// Time between the last map finishing and job completion (the
    /// incremental reduce tail; the Map phase dominates per the paper).
    pub reduce_tail_secs: f64,
    /// Statistics of the worst key.
    pub stats: KeyStatModel,
    /// Confidence level for bounds.
    pub confidence: f64,
}

impl SimJobSpec {
    /// A Wikipedia-log-processing-shaped job (Project/Page Popularity):
    /// heavy log blocks, read-dominated, top key appearing in roughly
    /// half the records with mild block locality. Calibrated so a
    /// one-week log (740 maps of 2.6 M records) takes ≈ 980 s precise on
    /// the 10-server Xeon cluster, matching Figure 9(a).
    pub fn log_processing(num_maps: usize, records_per_map: u64) -> Self {
        SimJobSpec {
            num_maps,
            records_per_map,
            // Read-dominated: decompressing and parsing a log record
            // costs more than counting it, so 1% sampling cuts only the
            // ~37% processing share (paper Fig. 7a).
            timing: TimingModel {
                t0: 2.0,
                tr: 2.5e-5,
                tp: 1.5e-5,
            },
            straggler_std: 0.08,
            reduce_tail_secs: 15.0,
            stats: KeyStatModel {
                item_mean: 0.5,
                item_std: 0.5,
                block_std: 0.015,
            },
            confidence: 0.95,
        }
    }

    /// A Wikipedia-dump-analysis-shaped job (WikiLength /
    /// WikiPageRank): fewer, heavier blocks, processing-dominated.
    pub fn data_analysis(num_maps: usize, records_per_map: u64) -> Self {
        SimJobSpec {
            num_maps,
            records_per_map,
            // bzip2 decompression dominates (paper Fig. 6a: 1% sampling
            // saves ~21% of the runtime).
            timing: TimingModel {
                t0: 3.0,
                tr: 8.0e-4,
                tp: 2.2e-4,
            },
            straggler_std: 0.06,
            reduce_tail_secs: 10.0,
            stats: KeyStatModel {
                item_mean: 0.15,
                item_std: 0.36,
                block_std: 0.01,
            },
            confidence: 0.95,
        }
    }

    /// Total records in the simulated input.
    pub fn total_records(&self) -> u64 {
        self.num_maps as u64 * self.records_per_map
    }
}

/// How the simulated job approximates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SimApprox {
    /// No approximation.
    Precise,
    /// User-specified ratios.
    Ratios {
        /// Fraction of maps dropped, `[0, 1)`.
        drop_ratio: f64,
        /// Within-block sampling ratio, `(0, 1]`.
        sampling_ratio: f64,
    },
    /// Target relative error bound (first wave precise).
    Target {
        /// Maximum relative error at the job's confidence level.
        relative_error: f64,
    },
    /// Target bound with a pilot wave (paper Section 4.4 / Figure 9b).
    TargetWithPilot {
        /// Maximum relative error.
        relative_error: f64,
        /// Pilot configuration.
        pilot: PilotSpec,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_presets() {
        let x = ClusterSpec::xeon(10);
        assert_eq!(x.total_slots(), 80);
        assert!(!x.s3_enabled);
        assert!(x.with_s3().s3_enabled);
        let a = ClusterSpec::atom(60);
        assert_eq!(a.total_slots(), 240);
        assert!(a.speed < x.speed);
    }

    #[test]
    fn week_log_job_is_calibrated_to_the_paper() {
        // 740 maps × ~106 s each on 80 slots ≈ 10 waves ≈ 980 s.
        let job = SimJobSpec::log_processing(740, 2_600_000);
        let per_map = job.timing.t_map(2_600_000.0, 2_600_000.0);
        assert!((100.0..115.0).contains(&per_map), "per-map {per_map}");
        assert_eq!(job.total_records(), 740 * 2_600_000);
    }
}
