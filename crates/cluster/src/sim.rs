//! The simulator core.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use approxhadoop_core::multistage::{Aggregation, BoundMonitor, MultiStageReducer};
use approxhadoop_core::spec::ErrorTarget;
use approxhadoop_core::target::{SharedApproxState, TargetErrorCoordinator};
use approxhadoop_core::KeyStat;
use approxhadoop_runtime::control::{Coordinator, FixedCoordinator, JobControl, MapDirective};
use approxhadoop_runtime::input::SplitMeta;
use approxhadoop_runtime::metrics::MapStats;
use approxhadoop_runtime::reducer::{MapOutputMeta, ReduceContext, Reducer};
use approxhadoop_runtime::types::TaskId;
use approxhadoop_stats::sampling::random_order;

use crate::event::EventQueue;
use crate::spec::{ClusterSpec, SimApprox, SimJobSpec};

/// Errors from the simulator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// An input parameter was out of range.
    Invalid {
        /// Description of the problem.
        reason: String,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Invalid { reason } => write!(f, "invalid simulation: {reason}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Outcome of one simulated job execution.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Simulated wall-clock job time in seconds.
    pub wall_secs: f64,
    /// Simulated cluster energy in watt-hours.
    pub energy_wh: f64,
    /// Maps that ran to completion.
    pub executed_maps: usize,
    /// Maps dropped before launch.
    pub dropped_maps: usize,
    /// Maps killed mid-flight.
    pub killed_maps: usize,
    /// Effective within-block sampling ratio over executed maps.
    pub effective_sampling_ratio: f64,
    /// The final estimate of the watched key's total.
    pub estimate: f64,
    /// The achieved relative error bound (half-width / estimate).
    pub bound_rel: f64,
    /// The actual relative error against the synthetic ground truth.
    pub actual_error_rel: f64,
}

#[derive(Debug, PartialEq)]
struct FinishEvent {
    task: usize,
    server: usize,
    sampled: u64,
    duration: f64,
}

/// Draws a standard normal via Box–Muller.
fn normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Simulates one job execution on the cluster.
///
/// The approximation stack is the real one: a
/// [`MultiStageReducer`] receives synthetic per-block statistics for the
/// watched key, publishes bounds, and the chosen coordinator
/// ([`FixedCoordinator`] or [`TargetErrorCoordinator`]) makes the same
/// decisions it makes in live runs.
pub fn simulate(
    cluster: &ClusterSpec,
    job: &SimJobSpec,
    approx: SimApprox,
    seed: u64,
) -> Result<SimResult, SimError> {
    if cluster.servers == 0 || cluster.map_slots_per_server == 0 {
        return Err(SimError::Invalid {
            reason: "cluster must have servers and slots".into(),
        });
    }
    if job.num_maps == 0 || job.records_per_map == 0 {
        return Err(SimError::Invalid {
            reason: "job must have maps and records".into(),
        });
    }
    if let SimApprox::Ratios {
        drop_ratio,
        sampling_ratio,
    } = approx
    {
        let ratios_ok =
            (0.0..1.0).contains(&drop_ratio) && sampling_ratio > 0.0 && sampling_ratio <= 1.0;
        if !ratios_ok {
            return Err(SimError::Invalid {
                reason: format!("bad ratios: drop {drop_ratio}, sampling {sampling_ratio}"),
            });
        }
    }

    let total = job.num_maps;
    let mut rng = StdRng::seed_from_u64(seed);

    // Ground truth: the *realized* per-block mean of the watched key's
    // per-item value — the superpopulation block mean plus the finite
    // block's own sampling deviation, so a census is exactly right.
    let m_total = job.records_per_map as f64;
    let block_mu: Vec<f64> = (0..total)
        .map(|_| {
            job.stats.item_mean
                + job.stats.block_std * normal(&mut rng)
                + job.stats.item_std / m_total.sqrt() * normal(&mut rng)
        })
        .collect();
    let truth: f64 = block_mu
        .iter()
        .map(|mu| mu * job.records_per_map as f64)
        .sum();

    // The real approximation stack.
    let control = Arc::new(JobControl::new(1));
    let shared = Arc::new(SharedApproxState::new(1));
    let mut reducer =
        MultiStageReducer::<u8>::new(Aggregation::Sum, job.confidence).with_monitor(BoundMonitor {
            shared: Arc::clone(&shared),
            report_absolute: false,
            check_every: (total / 200).max(1),
            freeze_threshold: match approx {
                SimApprox::Target { relative_error }
                | SimApprox::TargetWithPilot { relative_error, .. } => Some(relative_error),
                _ => None,
            },
            min_maps_before_freeze: match approx {
                SimApprox::TargetWithPilot { pilot, .. } => pilot.tasks.min(total),
                _ => cluster.total_slots().max(2).min(total),
            },
        });
    let mut rctx = ReduceContext::new(0, total, Arc::clone(&control));
    let mut coordinator: Box<dyn Coordinator> = match approx {
        SimApprox::Precise => Box::new(FixedCoordinator::new(total, 1.0, 0.0, seed)),
        SimApprox::Ratios {
            drop_ratio,
            sampling_ratio,
        } => Box::new(FixedCoordinator::new(
            total,
            sampling_ratio,
            drop_ratio,
            seed,
        )),
        SimApprox::Target { relative_error } => Box::new(TargetErrorCoordinator::new(
            total,
            ErrorTarget::Relative(relative_error),
            job.confidence,
            cluster.total_slots(),
            None,
            Arc::clone(&shared),
        )),
        SimApprox::TargetWithPilot {
            relative_error,
            pilot,
        } => Box::new(TargetErrorCoordinator::new(
            total,
            ErrorTarget::Relative(relative_error),
            job.confidence,
            cluster.total_slots(),
            Some(pilot),
            Arc::clone(&shared),
        )),
    };

    // Scheduling state.
    let mut pending: VecDeque<usize> = random_order(&mut rng, total).into_iter().collect();
    let mut busy = vec![0usize; cluster.servers];
    let mut running: HashMap<usize, usize> = HashMap::new(); // task -> server
    let mut killed_set: HashSet<usize> = HashSet::new();
    let mut events = EventQueue::<FinishEvent>::new();
    let meta_template = SplitMeta {
        index: 0,
        records: job.records_per_map,
        bytes: 0,
        locations: vec![],
        dataset: Default::default(),
    };

    let mut time = 0.0f64;
    let mut energy_wh = 0.0f64;
    let mut executed = 0usize;
    let mut dropped = 0usize;
    let mut killed = 0usize;
    let mut total_records_exec = 0u64;
    let mut sampled_records_exec = 0u64;
    let mut dropping = false;

    // Energy between two instants given current busy counts.
    let integrate = |energy: &mut f64,
                     from: f64,
                     to: f64,
                     busy: &[usize],
                     can_sleep: bool,
                     cluster: &ClusterSpec| {
        if to <= from {
            return;
        }
        let secs = to - from;
        for &b in busy {
            let watts = if b == 0 && can_sleep && cluster.s3_enabled {
                cluster.power.sleep_watts
            } else {
                cluster.power.watts(b, cluster.map_slots_per_server)
            };
            *energy += watts * secs / 3600.0;
        }
    };

    loop {
        // 1. Early-termination check.
        if !dropping && (control.drop_requested() || coordinator.want_drop_remaining(&control)) {
            dropping = true;
        }
        if dropping {
            while let Some(t) = pending.pop_front() {
                dropped += 1;
                rctx.note_map();
                reducer.on_map_dropped(TaskId(t), &mut rctx);
            }
            // Kill running tasks immediately: slots free now.
            for (t, server) in running.drain() {
                killed += 1;
                killed_set.insert(t);
                busy[server] = busy[server].saturating_sub(1);
                rctx.note_map();
                reducer.on_map_dropped(TaskId(t), &mut rctx);
            }
        }

        // 2. Dispatch to free slots.
        if !dropping {
            #[allow(clippy::needless_range_loop)] // `busy[server]` is mutated inside
            'dispatch: for server in 0..cluster.servers {
                while busy[server] < cluster.map_slots_per_server {
                    let Some(t) = pending.pop_front() else {
                        break 'dispatch;
                    };
                    match coordinator.directive(TaskId(t), &meta_template) {
                        MapDirective::Drop => {
                            dropped += 1;
                            rctx.note_map();
                            reducer.on_map_dropped(TaskId(t), &mut rctx);
                        }
                        MapDirective::Run { sampling_ratio } => {
                            let m = ((job.records_per_map as f64 * sampling_ratio).round() as u64)
                                .clamp(1, job.records_per_map);
                            let noise = (job.straggler_std * normal(&mut rng)).exp();
                            let duration = job.timing.t_map(job.records_per_map as f64, m as f64)
                                / cluster.speed
                                * noise;
                            busy[server] += 1;
                            running.insert(t, server);
                            events.push(
                                time + duration,
                                FinishEvent {
                                    task: t,
                                    server,
                                    sampled: m,
                                    duration,
                                },
                            );
                        }
                    }
                }
            }
        }

        // 3. Advance to the next completion.
        let Some(ev) = events.pop() else {
            if pending.is_empty() && running.is_empty() {
                break;
            }
            // dropping drained everything; loop once more to exit
            continue;
        };
        let can_sleep = pending.is_empty() || dropping;
        integrate(&mut energy_wh, time, ev.time, &busy, can_sleep, cluster);
        time = ev.time;
        let fin = ev.event;
        if killed_set.contains(&fin.task) {
            continue; // slot already freed at kill time
        }
        busy[fin.server] = busy[fin.server].saturating_sub(1);
        running.remove(&fin.task);
        executed += 1;
        total_records_exec += job.records_per_map;
        sampled_records_exec += fin.sampled;

        // Synthesize the watched key's statistics for this block: the
        // sample mean of m-of-M items drawn without replacement has
        // variance σ²·(1/m − 1/M) around the realized block mean, so a
        // full read (m = M) is exact.
        let m = fin.sampled as f64;
        let mu = block_mu[fin.task];
        let fpc = (1.0 / m - 1.0 / m_total).max(0.0);
        let sample_mean = mu + job.stats.item_std * fpc.sqrt() * normal(&mut rng);
        let sum = m * sample_mean;
        let sum_sq = m * (job.stats.item_std * job.stats.item_std + sample_mean * sample_mean);
        let meta = MapOutputMeta {
            task: TaskId(fin.task),
            dataset: Default::default(),
            total_records: job.records_per_map,
            sampled_records: fin.sampled,
            duration_secs: fin.duration,
        };
        rctx.note_map();
        reducer.on_map_output(
            &meta,
            vec![(
                0u8,
                KeyStat {
                    sum,
                    sum_sq,
                    emitting_units: fin.sampled,
                },
            )],
            &mut rctx,
        );
        coordinator.on_map_complete(&MapStats {
            task: TaskId(fin.task),
            dataset: Default::default(),
            total_records: job.records_per_map,
            sampled_records: fin.sampled,
            emitted: 1,
            shuffled: 1,
            duration_secs: fin.duration,
            read_secs: job.records_per_map as f64 * job.timing.tr / cluster.speed,
        });
    }

    // Reduce tail: maps are done; idle servers may sleep.
    let wall_secs = time + job.reduce_tail_secs;
    integrate(&mut energy_wh, time, wall_secs, &busy, true, cluster);

    let outputs = reducer.finish(&mut rctx);
    let (estimate, bound_rel, actual_error_rel) = match outputs.first() {
        Some((_, iv)) => (iv.estimate, iv.relative_error(), iv.actual_error(truth)),
        None => (0.0, f64::INFINITY, f64::INFINITY),
    };

    Ok(SimResult {
        wall_secs,
        energy_wh,
        executed_maps: executed,
        dropped_maps: dropped,
        killed_maps: killed,
        effective_sampling_ratio: if total_records_exec == 0 {
            1.0
        } else {
            sampled_records_exec as f64 / total_records_exec as f64
        },
        estimate,
        bound_rel,
        actual_error_rel,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use approxhadoop_core::spec::PilotSpec;

    fn small_job() -> SimJobSpec {
        SimJobSpec::log_processing(160, 50_000)
    }

    #[test]
    fn precise_run_executes_everything_exactly() {
        let r = simulate(&ClusterSpec::xeon(10), &small_job(), SimApprox::Precise, 1).unwrap();
        assert_eq!(r.executed_maps, 160);
        assert_eq!(r.dropped_maps + r.killed_maps, 0);
        assert_eq!(r.bound_rel, 0.0);
        assert!(r.actual_error_rel < 1e-9);
        assert!(r.wall_secs > 0.0 && r.energy_wh > 0.0);
    }

    #[test]
    fn waves_emerge_from_slots() {
        // 160 maps on 80 slots = 2 waves → wall ≈ 2 × per-map time.
        let job = small_job();
        let r = simulate(&ClusterSpec::xeon(10), &job, SimApprox::Precise, 2).unwrap();
        let per_map = job.timing.t_map(50_000.0, 50_000.0);
        assert!(
            r.wall_secs > 1.7 * per_map && r.wall_secs < 3.0 * per_map + job.reduce_tail_secs,
            "wall {} vs per-map {per_map}",
            r.wall_secs
        );
    }

    #[test]
    fn sampling_reduces_runtime_less_than_dropping() {
        let job = small_job();
        let precise = simulate(&ClusterSpec::xeon(10), &job, SimApprox::Precise, 3).unwrap();
        let sampled = simulate(
            &ClusterSpec::xeon(10),
            &job,
            SimApprox::Ratios {
                drop_ratio: 0.0,
                sampling_ratio: 0.01,
            },
            3,
        )
        .unwrap();
        let dropped = simulate(
            &ClusterSpec::xeon(10),
            &job,
            SimApprox::Ratios {
                drop_ratio: 0.5,
                sampling_ratio: 1.0,
            },
            3,
        )
        .unwrap();
        assert!(sampled.wall_secs < precise.wall_secs);
        assert!(dropped.wall_secs < precise.wall_secs);
        // Sampling still pays the read cost; dropping eliminates it.
        // At these ratios, dropping halves the work while 1% sampling
        // only removes the processing component.
        assert!(sampled.effective_sampling_ratio < 0.02);
        assert_eq!(dropped.dropped_maps, 80);
        // Dropping widens the interval compared to sampling (locality).
        assert!(dropped.bound_rel > 0.0);
        assert!(sampled.bound_rel > 0.0);
    }

    #[test]
    fn target_mode_meets_bound_and_saves_time() {
        let job = SimJobSpec::log_processing(740, 100_000);
        let cluster = ClusterSpec::xeon(10);
        let precise = simulate(&cluster, &job, SimApprox::Precise, 4).unwrap();
        let target = simulate(
            &cluster,
            &job,
            SimApprox::Target {
                relative_error: 0.01,
            },
            4,
        )
        .unwrap();
        assert!(
            target.bound_rel <= 0.01 + 1e-9,
            "bound {} misses target",
            target.bound_rel
        );
        assert!(
            target.wall_secs < precise.wall_secs,
            "target {} vs precise {}",
            target.wall_secs,
            precise.wall_secs
        );
        assert!(target.actual_error_rel < 0.02);
    }

    #[test]
    fn pilot_reduces_precise_work() {
        let job = SimJobSpec::log_processing(740, 100_000);
        let cluster = ClusterSpec::xeon(10);
        let no_pilot = simulate(
            &cluster,
            &job,
            SimApprox::Target {
                relative_error: 0.01,
            },
            5,
        )
        .unwrap();
        let pilot = simulate(
            &cluster,
            &job,
            SimApprox::TargetWithPilot {
                relative_error: 0.01,
                pilot: PilotSpec {
                    tasks: 8,
                    sampling_ratio: 0.01,
                },
            },
            5,
        )
        .unwrap();
        assert!(pilot.bound_rel <= 0.01 + 1e-9);
        // The pilot avoids a full precise first wave, so it should
        // process fewer records precisely.
        assert!(
            pilot.effective_sampling_ratio <= no_pilot.effective_sampling_ratio + 0.05,
            "pilot {} vs no pilot {}",
            pilot.effective_sampling_ratio,
            no_pilot.effective_sampling_ratio
        );
    }

    #[test]
    fn s3_saves_energy_when_dropping_single_wave() {
        // Single wave (80 maps, 80 slots): dropping half the maps frees
        // whole servers; S3 turns that into energy savings even though
        // runtime barely changes.
        let job = SimJobSpec::log_processing(80, 200_000);
        let base = ClusterSpec::xeon(10);
        let s3 = base.with_s3();
        let approx = SimApprox::Ratios {
            drop_ratio: 0.5,
            sampling_ratio: 1.0,
        };
        let without = simulate(&base, &job, approx, 6).unwrap();
        let with = simulate(&s3, &job, approx, 6).unwrap();
        assert!(
            with.energy_wh < without.energy_wh,
            "S3 {} Wh vs no-S3 {} Wh",
            with.energy_wh,
            without.energy_wh
        );
        // Runtime is essentially unchanged by dropping within one wave.
        assert!((with.wall_secs - without.wall_secs).abs() < 1.0);
    }

    #[test]
    fn invalid_inputs_rejected() {
        let job = small_job();
        assert!(simulate(&ClusterSpec::xeon(0), &job, SimApprox::Precise, 0).is_err());
        let mut empty = job;
        empty.num_maps = 0;
        assert!(simulate(&ClusterSpec::xeon(1), &empty, SimApprox::Precise, 0).is_err());
        assert!(simulate(
            &ClusterSpec::xeon(1),
            &job,
            SimApprox::Ratios {
                drop_ratio: 1.0,
                sampling_ratio: 1.0
            },
            0
        )
        .is_err());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let job = small_job();
        let a = simulate(&ClusterSpec::xeon(4), &job, SimApprox::Precise, 42).unwrap();
        let b = simulate(&ClusterSpec::xeon(4), &job, SimApprox::Precise, 42).unwrap();
        assert_eq!(a, b);
    }
}
