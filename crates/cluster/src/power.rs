//! The per-server power model (paper Section 5.1): 60 W idle, 150 W at
//! peak, linear in slot utilisation, plus an ACPI-S3 sleep state.

/// Linear utilisation→power model for one server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    /// Power when idle (all slots empty) in watts.
    pub idle_watts: f64,
    /// Power at full utilisation in watts.
    pub peak_watts: f64,
    /// Power in the ACPI-S3 sleep state in watts.
    pub sleep_watts: f64,
}

impl PowerModel {
    /// The paper's measured Xeon server: 60 W idle / 150 W peak.
    pub fn xeon() -> Self {
        PowerModel {
            idle_watts: 60.0,
            peak_watts: 150.0,
            sleep_watts: 5.0,
        }
    }

    /// A low-power Atom server (used for the 12.5 TB experiments).
    pub fn atom() -> Self {
        PowerModel {
            idle_watts: 22.0,
            peak_watts: 42.0,
            sleep_watts: 3.0,
        }
    }

    /// Instantaneous power at `busy` of `slots` occupied.
    ///
    /// # Panics
    ///
    /// Panics if `busy > slots` or `slots == 0`.
    pub fn watts(&self, busy: usize, slots: usize) -> f64 {
        assert!(slots > 0, "server must have slots");
        assert!(busy <= slots, "busy slots exceed capacity");
        self.idle_watts + (self.peak_watts - self.idle_watts) * busy as f64 / slots as f64
    }

    /// Energy in watt-hours for `watts` drawn over `secs`.
    pub fn wh(watts: f64, secs: f64) -> f64 {
        watts * secs / 3600.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints() {
        let p = PowerModel::xeon();
        assert_eq!(p.watts(0, 8), 60.0);
        assert_eq!(p.watts(8, 8), 150.0);
        assert_eq!(p.watts(4, 8), 105.0);
    }

    #[test]
    fn energy_units() {
        // 150 W for one hour = 150 Wh.
        assert!((PowerModel::wh(150.0, 3600.0) - 150.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn busy_cannot_exceed_slots() {
        PowerModel::xeon().watts(9, 8);
    }
}
