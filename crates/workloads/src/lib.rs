//! Synthetic workload generators and the ApproxHadoop paper's
//! applications (Table 1).
//!
//! The paper evaluates on datasets we cannot ship (the May-2014
//! Wikipedia dump, a year of Wikipedia access logs, a departmental web
//! server log, a movie). Each is replaced by a deterministic generator
//! that reproduces the statistical properties the results depend on —
//! heavy-tailed popularity (Zipf), diurnal request rates, block-level
//! locality, rare attack patterns — at laptop scale, with the paper's
//! full scale available through the cluster simulator.
//!
//! Applications, by approximation mechanism and error estimation
//! (Table 1):
//!
//! | Application | Input | Approximation | Error bounds |
//! |---|---|---|---|
//! | WikiLength, WikiPageRank | Wikipedia dump | sampling + dropping | multi-stage |
//! | Project/Page Popularity, Request Rate, Page Traffic | Wikipedia log | sampling + dropping | multi-stage |
//! | Total Size, Request Size, Clients, Client Browser, Attack Freq. | web server log | sampling + dropping | multi-stage |
//! | DC Placement | grids | dropping | GEV |
//! | Video Encoding | movie frames | user-defined | user-defined |
//! | K-Means | documents | user-defined | user-defined |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
pub mod dcgrid;
pub mod deptlog;
pub mod inventory;
pub mod join;
pub mod kmeans;
pub mod video;
pub mod wikidump;
pub mod wikilog;

pub use inventory::{AppDescriptor, APPLICATIONS};
