//! Synthetic Wikipedia dump: articles with heavy-tailed lengths and a
//! preferential-attachment link graph.
//!
//! Stands in for the paper's May-2014 English Wikipedia snapshot
//! (14 M articles, 40 GB uncompressed, 161 blocks). Lengths follow a
//! log-normal-ish heavy tail (so the WikiLength histogram matches
//! Figure 5a's shape) and link targets follow a Zipf distribution over
//! article ranks (so in-degrees match Figure 5b's power law).

use approxhadoop_runtime::input::{FnSource, SplitMeta};
use approxhadoop_stats::sampling::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One article of the synthetic dump.
#[derive(Debug, Clone, PartialEq)]
pub struct Article {
    /// Article id (global, dense).
    pub id: u64,
    /// Body length in bytes.
    pub length: u64,
    /// Ids of articles this article links to.
    pub links: Vec<u64>,
}

impl Article {
    /// Renders the article as one text line (`id|length|l1,l2,…`).
    pub fn to_line(&self) -> String {
        let links: Vec<String> = self.links.iter().map(u64::to_string).collect();
        format!("{}|{}|{}", self.id, self.length, links.join(","))
    }

    /// The watched word's occurrence count per paragraph of this
    /// article, derived deterministically from the id and length.
    /// Paragraphs are ~500 bytes; used by the three-stage sampling
    /// application (mean occurrences per paragraph, paper §3.1).
    pub fn paragraph_mentions(&self) -> Vec<u64> {
        let paragraphs = (self.length / 500 + 1).min(64);
        (0..paragraphs)
            .map(|p| {
                let h = self
                    .id
                    .wrapping_mul(0x9E37_79B9)
                    .wrapping_add(p.wrapping_mul(0x85EB_CA6B));
                (h >> 13) % 4 // 0..=3 mentions per paragraph
            })
            .collect()
    }

    /// Parses a line produced by [`Article::to_line`].
    pub fn parse(line: &str) -> Option<Article> {
        let mut parts = line.splitn(3, '|');
        let id = parts.next()?.parse().ok()?;
        let length = parts.next()?.parse().ok()?;
        let links_str = parts.next()?;
        let links = if links_str.is_empty() {
            Vec::new()
        } else {
            links_str
                .split(',')
                .map(|s| s.parse().ok())
                .collect::<Option<Vec<u64>>>()?
        };
        Some(Article { id, length, links })
    }
}

/// Deterministic generator of a blocked synthetic dump.
#[derive(Debug, Clone, Copy)]
pub struct WikiDump {
    /// Total articles.
    pub articles: u64,
    /// Articles per block (per map task).
    pub articles_per_block: u64,
    /// Base RNG seed.
    pub seed: u64,
}

impl WikiDump {
    /// A laptop-scale default: 200k articles in blocks of 2 000
    /// (100 blocks ≈ the paper's 161-block layout, scaled).
    pub fn small(seed: u64) -> Self {
        WikiDump {
            articles: 200_000,
            articles_per_block: 2_000,
            seed,
        }
    }

    /// Number of blocks (map tasks).
    pub fn num_blocks(&self) -> u64 {
        self.articles.div_ceil(self.articles_per_block)
    }

    /// Generates the articles of one block; deterministic per block.
    pub fn block(&self, block: u64) -> Vec<Article> {
        let start = block * self.articles_per_block;
        let end = (start + self.articles_per_block).min(self.articles);
        let mut rng = StdRng::seed_from_u64(self.seed ^ block.wrapping_mul(0x9E37_79B9));
        let link_targets = Zipf::new(self.articles, 1.05);
        (start..end)
            .map(|id| {
                // Heavy-tailed length: log-uniform between 64 B and 512 KiB
                // with a bias towards short articles.
                let u: f64 = rng.gen::<f64>();
                let length = (64.0 * (8192.0f64).powf(u * u)) as u64;
                // Links: a handful per article, targets Zipf-distributed
                // (rank 1 = most linked-to), mapped onto article ids.
                let n_links = rng.gen_range(0..25);
                let links = (0..n_links)
                    .map(|_| link_targets.sample(&mut rng) - 1)
                    .collect();
                Article { id, length, links }
            })
            .collect()
    }

    /// An [`FnSource`] over the blocked dump for the MapReduce engine.
    pub fn source(
        &self,
    ) -> FnSource<Article, impl Fn(usize) -> Vec<Article> + Send + Sync + use<>> {
        let this = *self;
        let metas = (0..self.num_blocks())
            .map(|b| {
                let start = b * this.articles_per_block;
                let end = (start + this.articles_per_block).min(this.articles);
                SplitMeta {
                    index: b as usize,
                    records: end - start,
                    bytes: (end - start) * 256,
                    locations: vec![],
                    dataset: Default::default(),
                }
            })
            .collect();
        FnSource::new(metas, move |i| this.block(i as u64))
    }

    /// The histogram bin (power of two) used by WikiLength.
    pub fn length_bin(length: u64) -> u64 {
        length.next_power_of_two()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use approxhadoop_runtime::input::InputSource;

    #[test]
    fn blocks_are_deterministic_and_cover_all_articles() {
        let dump = WikiDump {
            articles: 5_000,
            articles_per_block: 1_000,
            seed: 7,
        };
        assert_eq!(dump.num_blocks(), 5);
        let b2 = dump.block(2);
        assert_eq!(b2, dump.block(2));
        assert_eq!(b2.len(), 1_000);
        assert_eq!(b2[0].id, 2_000);
        // Last block may be short.
        let dump2 = WikiDump {
            articles: 4_500,
            articles_per_block: 1_000,
            seed: 7,
        };
        assert_eq!(dump2.num_blocks(), 5);
        assert_eq!(dump2.block(4).len(), 500);
    }

    #[test]
    fn lengths_are_heavy_tailed() {
        let dump = WikiDump::small(1);
        let articles = dump.block(0);
        let short = articles.iter().filter(|a| a.length < 1_000).count();
        let long = articles.iter().filter(|a| a.length > 100_000).count();
        assert!(short > long * 3, "short {short} vs long {long}");
        assert!(long > 0, "tail must exist");
    }

    #[test]
    fn links_favor_popular_targets() {
        let dump = WikiDump {
            articles: 10_000,
            articles_per_block: 5_000,
            seed: 3,
        };
        let mut indegree = vec![0u32; 100];
        for b in 0..2 {
            for a in dump.block(b) {
                for l in a.links {
                    if (l as usize) < 100 {
                        indegree[l as usize] += 1;
                    }
                }
            }
        }
        assert!(indegree[0] > indegree[50]);
        assert!(indegree[0] > indegree[99]);
    }

    #[test]
    fn line_roundtrip() {
        let a = Article {
            id: 42,
            length: 1234,
            links: vec![1, 2, 3],
        };
        assert_eq!(Article::parse(&a.to_line()).unwrap(), a);
        let no_links = Article {
            id: 1,
            length: 10,
            links: vec![],
        };
        assert_eq!(Article::parse(&no_links.to_line()).unwrap(), no_links);
        assert!(Article::parse("garbage").is_none());
    }

    #[test]
    fn source_exposes_blocks() {
        let dump = WikiDump {
            articles: 3_000,
            articles_per_block: 1_000,
            seed: 9,
        };
        let src = dump.source();
        assert_eq!(src.splits().len(), 3);
        let read = src.read_split(1, 1.0, 0).unwrap();
        assert_eq!(read.total, 1_000);
        assert_eq!(read.items[0].id, 1_000);
    }

    #[test]
    fn length_bins_are_powers_of_two() {
        assert_eq!(WikiDump::length_bin(100), 128);
        assert_eq!(WikiDump::length_bin(128), 128);
        assert_eq!(WikiDump::length_bin(129), 256);
    }
}
