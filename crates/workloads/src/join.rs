//! Approximate equi-join: access logs × page metadata with a map-side
//! Bloom pre-filter and per-stratum error bounds.
//!
//! This is the first two-input workload: dataset `0` is the synthetic
//! Wikipedia access log ([`WikiLog`]) and dataset `1` is a page
//! metadata catalogue ([`PageCatalog`]) assigning each catalogued page
//! a category. The job joins `access.page = meta.page` and reports
//! **bytes served per category** — only for accesses whose page exists
//! in the catalogue.
//!
//! The three approximation mechanisms compose per ApproxJoin:
//!
//! * **Bloom pre-filter** — every map task over the log holds a Bloom
//!   filter built from the catalogue's join keys and discards accesses
//!   that cannot join *before* the shuffle. False positives only cost
//!   shuffle bytes (the reduce-side join still drops them); the result
//!   is never changed. Discard/pass totals are exported as the
//!   `join_filter_discarded_total` / `join_filter_passed_total`
//!   counters.
//! * **Per-dataset sampling** — the log side may be sampled and/or
//!   dropped ([`approxhadoop_runtime::control::DatasetRatios`]) while
//!   the catalogue side always runs precisely; a sampled-out or
//!   filtered-out access is a **zero-valued sampled unit**, so every
//!   cluster's `(M_i, m_i)` stays exactly the split's counts and
//!   Eq. 1–3 remain valid.
//! * **Per-stratum bounds** — each category is a stratum estimated by
//!   its own two-stage estimator over the *log* dataset's cluster
//!   population; the whole-join bound combines the strata in
//!   quadrature (`ε = sqrt(Σ ε_k²)`,
//!   [`approxhadoop_stats::stratified`]).
//!
//! The same workload runs on all three executors — scoped threads,
//! the shared slot pool, and worker OS processes — and produces
//! bit-identical outcomes for the same config and seed.

use std::collections::BTreeMap;
use std::sync::Arc;

use approxhadoop_core::keystat::KeyStat;
use approxhadoop_core::Result;
use approxhadoop_ipc::{Decoder, Wire, WireError};
use approxhadoop_obs::{Counter, Obs};
use approxhadoop_runtime::control::{DatasetFixedCoordinator, DatasetRatios};
use approxhadoop_runtime::engine::{
    run_job, run_job_on_pool, run_job_process, JobConfig, JobResult, WorkerSpec,
};
use approxhadoop_runtime::input::{
    BoxedSource, DatasetId, FnSource, InputSource, SplitMeta, TaggedSource,
};
use approxhadoop_runtime::mapper::{MapTaskContext, MultiMapper, TaggedMapper};
use approxhadoop_runtime::metrics::{JobMetrics, TaskOutcome};
use approxhadoop_runtime::pool::SlotPool;
use approxhadoop_runtime::reducer::{MapOutputMeta, ReduceContext, Reducer};
use approxhadoop_runtime::types::TaskId;
use approxhadoop_runtime::{JobId, JobSession, RuntimeError};
use approxhadoop_stats::bloom::BloomFilter;
use approxhadoop_stats::multistage::ClusterObservation;
use approxhadoop_stats::stratified::{combine_strata, StratifiedEstimator};
use approxhadoop_stats::Interval;

use crate::wikilog::{LogEntry, WikiLog};

/// The job name the process backend dispatches to worker binaries;
/// workers must register it with [`register_join_job`].
pub const JOIN_JOB: &str = "join-category-traffic";

// ---------------------------------------------------------------------
// The metadata side: a deterministic page catalogue
// ---------------------------------------------------------------------

/// One catalogued page: the join key plus its category.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageMeta {
    /// Page rank (the join key; matches [`LogEntry::page`]).
    pub page: u64,
    /// Category the page belongs to (1-based).
    pub category: u64,
}

impl Wire for PageMeta {
    fn encode(&self, out: &mut Vec<u8>) {
        self.page.encode(out);
        self.category.encode(out);
    }

    fn decode(d: &mut Decoder<'_>) -> Result2<Self> {
        Ok(PageMeta {
            page: u64::decode(d)?,
            category: u64::decode(d)?,
        })
    }
}

type Result2<T> = std::result::Result<T, WireError>;

/// A deterministic page-metadata catalogue covering pages
/// `1..=pages`: the **small side** of the join, and the key set the
/// Bloom pre-filter is built from.
///
/// Everything — block contents, category assignment, the Bloom filter —
/// is a pure function of the fields, so the submitting process and
/// every worker process reconstruct identical state from the
/// `Wire`-encoded spec alone.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PageCatalog {
    /// Pages `1..=pages` are catalogued; log accesses to higher ranks
    /// cannot join and are what the Bloom filter discards.
    pub pages: u64,
    /// Pages per input split of the catalogue dataset.
    pub pages_per_block: u64,
    /// Number of categories (strata); page `p` belongs to
    /// `p % categories + 1`.
    pub categories: u64,
    /// Seed of the Bloom filter's hash family.
    pub seed: u64,
    /// Target false-positive rate of the Bloom filter.
    pub fpr: f64,
}

impl Wire for PageCatalog {
    fn encode(&self, out: &mut Vec<u8>) {
        self.pages.encode(out);
        self.pages_per_block.encode(out);
        self.categories.encode(out);
        self.seed.encode(out);
        self.fpr.encode(out);
    }

    fn decode(d: &mut Decoder<'_>) -> Result2<Self> {
        let c = PageCatalog {
            pages: u64::decode(d)?,
            pages_per_block: u64::decode(d)?,
            categories: u64::decode(d)?,
            seed: u64::decode(d)?,
            fpr: f64::decode(d)?,
        };
        if c.pages == 0
            || c.pages_per_block == 0
            || c.categories == 0
            || !(c.fpr > 0.0 && c.fpr < 1.0)
        {
            return Err(WireError::Corrupt {
                what: "PageCatalog",
            });
        }
        Ok(c)
    }
}

impl PageCatalog {
    /// Number of input splits the catalogue contributes.
    pub fn num_blocks(&self) -> u64 {
        self.pages.div_ceil(self.pages_per_block)
    }

    /// The category of a catalogued page.
    pub fn category_of(&self, page: u64) -> u64 {
        page % self.categories + 1
    }

    /// The pages of catalogue block `b`, in page order.
    pub fn block(&self, b: u64) -> Vec<PageMeta> {
        let first = b * self.pages_per_block + 1;
        let last = (first + self.pages_per_block - 1).min(self.pages);
        (first..=last)
            .map(|page| PageMeta {
                page,
                category: self.category_of(page),
            })
            .collect()
    }

    /// Builds the Bloom filter over the catalogue's join keys. The
    /// result is bit-identical wherever it is built — parent or worker
    /// — because the filter's hashing is seeded and from-scratch.
    pub fn bloom(&self) -> BloomFilter {
        let mut filter = BloomFilter::with_capacity(self.pages as usize, self.fpr, self.seed);
        for page in 1..=self.pages {
            filter.insert(&page.to_le_bytes());
        }
        filter
    }

    /// The catalogue as an input source of [`JoinRecord::Meta`] rows.
    pub fn source(
        &self,
    ) -> FnSource<JoinRecord, impl Fn(usize) -> Vec<JoinRecord> + Send + Sync + use<>> {
        let this = *self;
        let metas = (0..self.num_blocks())
            .map(|b| {
                let first = b * this.pages_per_block + 1;
                let last = (first + this.pages_per_block - 1).min(this.pages);
                SplitMeta {
                    index: b as usize,
                    dataset: Default::default(),
                    records: last - first + 1,
                    bytes: (last - first + 1) * 16,
                    locations: vec![],
                }
            })
            .collect();
        FnSource::new(metas, move |i| {
            this.block(i as u64)
                .into_iter()
                .map(JoinRecord::Meta)
                .collect()
        })
    }
}

// ---------------------------------------------------------------------
// Tagged records and shuffle payloads
// ---------------------------------------------------------------------

/// One record of the two-input join job. The variant mirrors the
/// dataset the record was read from: `Access` rows come from dataset 0
/// (the log), `Meta` rows from dataset 1 (the catalogue).
#[derive(Debug, Clone, PartialEq)]
pub enum JoinRecord {
    /// An access-log entry (dataset 0).
    Access(LogEntry),
    /// A catalogue row (dataset 1).
    Meta(PageMeta),
}

impl Wire for JoinRecord {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            JoinRecord::Access(e) => {
                0u8.encode(out);
                e.encode(out);
            }
            JoinRecord::Meta(m) => {
                1u8.encode(out);
                m.encode(out);
            }
        }
    }

    fn decode(d: &mut Decoder<'_>) -> Result2<Self> {
        match u8::decode(d)? {
            0 => Ok(JoinRecord::Access(LogEntry::decode(d)?)),
            1 => Ok(JoinRecord::Meta(PageMeta::decode(d)?)),
            _ => Err(WireError::Corrupt {
                what: "JoinRecord tag",
            }),
        }
    }
}

/// The shuffle value of the join job, keyed by page (the join key).
#[derive(Debug, Clone, PartialEq)]
pub enum JoinValue {
    /// Per-task access statistics for the page: `Σ bytes`, `Σ bytes²`
    /// and how many sampled accesses emitted them — exactly what the
    /// per-stratum estimators consume.
    Access(KeyStat),
    /// The page's category, shipped from the catalogue side.
    Meta {
        /// The category (stratum) the page belongs to.
        category: u64,
    },
}

impl Wire for JoinValue {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            JoinValue::Access(s) => {
                0u8.encode(out);
                s.encode(out);
            }
            JoinValue::Meta { category } => {
                1u8.encode(out);
                category.encode(out);
            }
        }
    }

    fn decode(d: &mut Decoder<'_>) -> Result2<Self> {
        match u8::decode(d)? {
            0 => Ok(JoinValue::Access(KeyStat::decode(d)?)),
            1 => Ok(JoinValue::Meta {
                category: u64::decode(d)?,
            }),
            _ => Err(WireError::Corrupt {
                what: "JoinValue tag",
            }),
        }
    }
}

// ---------------------------------------------------------------------
// Map side: Bloom pre-filter + per-task aggregation
// ---------------------------------------------------------------------

/// The join's map function, written against [`MultiMapper`]: access
/// rows (dataset 0) are Bloom-filtered and aggregated per page within
/// the task; catalogue rows (dataset 1) ship `(page, category)`
/// directly. A record whose variant contradicts its dataset tag is
/// ignored rather than miscounted.
pub struct JoinMapper {
    bloom: BloomFilter,
    discarded: Option<Arc<Counter>>,
    passed: Option<Arc<Counter>>,
}

impl JoinMapper {
    /// A mapper holding `catalog`'s Bloom filter, with no counters.
    pub fn new(catalog: &PageCatalog) -> Self {
        JoinMapper {
            bloom: catalog.bloom(),
            discarded: None,
            passed: None,
        }
    }

    /// Attaches the Bloom discard/pass counters to `obs`. In worker
    /// processes, pass [`Obs::shared`]: the worker telemetry path
    /// piggybacks shared-registry counter deltas back to the parent,
    /// so the discards show up on the parent's `/metrics` even though
    /// the filtering happened in another address space.
    #[must_use]
    pub fn with_obs(mut self, obs: &Obs) -> Self {
        let labels = [("app", JOIN_JOB)];
        self.discarded = Some(obs.registry.counter("join_filter_discarded_total", &labels));
        self.passed = Some(obs.registry.counter("join_filter_passed_total", &labels));
        self
    }

    /// The Bloom filter the mapper screens access rows against.
    pub fn bloom(&self) -> &BloomFilter {
        &self.bloom
    }
}

impl MultiMapper for JoinMapper {
    type Item = JoinRecord;
    type Key = u64;
    type Value = JoinValue;
    // Per-page stats accumulate in a BTreeMap so `end_task` emits in
    // page order — deterministic shuffle bytes on every backend.
    type TaskState = BTreeMap<u64, KeyStat>;

    fn begin_task(&self, _ctx: &MapTaskContext) -> Self::TaskState {
        BTreeMap::new()
    }

    fn map(
        &self,
        state: &mut Self::TaskState,
        dataset: DatasetId,
        item: JoinRecord,
        emit: &mut dyn FnMut(u64, JoinValue),
    ) {
        match (dataset, item) {
            (DatasetId(0), JoinRecord::Access(e)) => {
                if self.bloom.contains(&e.page.to_le_bytes()) {
                    if let Some(c) = &self.passed {
                        c.inc();
                    }
                    state.entry(e.page).or_default().add_value(e.bytes as f64);
                } else {
                    // Cannot join: discard before the shuffle. The
                    // access remains a sampled unit of its cluster —
                    // it just contributes zero to every stratum.
                    if let Some(c) = &self.discarded {
                        c.inc();
                    }
                }
            }
            (DatasetId(1), JoinRecord::Meta(m)) => {
                emit(
                    m.page,
                    JoinValue::Meta {
                        category: m.category,
                    },
                );
            }
            // A record mistagged relative to its dataset: drop it.
            _ => {}
        }
    }

    fn end_task(&self, state: Self::TaskState, emit: &mut dyn FnMut(u64, JoinValue)) {
        for (page, stat) in state {
            emit(page, JoinValue::Access(stat));
        }
    }
}

// ---------------------------------------------------------------------
// Reduce side: the join + per-stratum cluster observations
// ---------------------------------------------------------------------

/// One reducer's contribution to a category: the category's
/// [`ClusterObservation`]s over every executed log cluster, in task
/// order, restricted to the pages this reducer's partition owns.
///
/// Per-category estimates cannot be finished inside a single reducer —
/// a category's pages hash across all partitions — so reducers emit
/// these partials and [`finish_join`] merges them (same cluster set
/// everywhere; sums add) before estimating.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinPartial {
    /// The category (stratum).
    pub category: u64,
    /// Observations over this reducer's share of the category, one per
    /// executed log cluster, sorted by cluster id.
    pub clusters: Vec<ClusterObservation>,
}

/// The join's reduce task: joins access stats against the catalogue's
/// page → category map and emits per-category cluster partials.
///
/// Only **dataset-0** (log) map outputs count as clusters for the
/// estimators; dataset-1 outputs carry the join's build side and have
/// no sampling semantics (the catalogue always runs precisely). A page
/// whose category is unknown — a Bloom false positive, or a page
/// missing from the catalogue — joins nothing and contributes nothing,
/// which is exactly the precise join's behaviour.
pub struct JoinReducer {
    /// Executed log clusters in arrival order: `(task, M_i, m_i)`.
    clusters: Vec<(TaskId, u64, u64)>,
    /// page → (cluster index → access stats).
    page_stats: BTreeMap<u64, BTreeMap<u32, KeyStat>>,
    /// page → category, from the catalogue side.
    page_category: BTreeMap<u64, u64>,
}

impl JoinReducer {
    /// An empty join reducer.
    pub fn new() -> Self {
        JoinReducer {
            clusters: Vec::new(),
            page_stats: BTreeMap::new(),
            page_category: BTreeMap::new(),
        }
    }
}

impl Default for JoinReducer {
    fn default() -> Self {
        Self::new()
    }
}

impl Reducer for JoinReducer {
    type Key = u64;
    type Value = JoinValue;
    type Output = JoinPartial;

    fn on_map_output(
        &mut self,
        meta: &MapOutputMeta,
        pairs: Vec<(u64, JoinValue)>,
        _ctx: &mut ReduceContext,
    ) {
        if meta.dataset == DatasetId(0) {
            let ci = self.clusters.len() as u32;
            self.clusters
                .push((meta.task, meta.total_records, meta.sampled_records));
            for (page, value) in pairs {
                if let JoinValue::Access(stat) = value {
                    self.page_stats
                        .entry(page)
                        .or_default()
                        .entry(ci)
                        .or_default()
                        .merge(&stat);
                }
            }
        } else {
            for (page, value) in pairs {
                if let JoinValue::Meta { category } = value {
                    self.page_category.insert(page, category);
                }
            }
        }
    }

    fn finish(&mut self, _ctx: &mut ReduceContext) -> Vec<JoinPartial> {
        // The join: fold each page's per-cluster stats into its
        // category. BTreeMaps make every addition order deterministic.
        let mut cats: BTreeMap<u64, BTreeMap<u32, KeyStat>> = BTreeMap::new();
        for (page, per_cluster) in &self.page_stats {
            let Some(&category) = self.page_category.get(page) else {
                continue; // Bloom false positive or uncatalogued page.
            };
            let slot = cats.entry(category).or_default();
            for (&ci, stat) in per_cluster {
                slot.entry(ci).or_default().merge(stat);
            }
        }
        // Observations in cluster-id order, independent of the order
        // map outputs happened to arrive in.
        let mut order: Vec<u32> = (0..self.clusters.len() as u32).collect();
        order.sort_by_key(|&ci| self.clusters[ci as usize].0);
        cats.into_iter()
            .map(|(category, per_cluster)| JoinPartial {
                category,
                clusters: order
                    .iter()
                    .map(|&ci| {
                        let (task, total, sampled) = self.clusters[ci as usize];
                        let stat = per_cluster.get(&ci).copied().unwrap_or_default();
                        ClusterObservation {
                            cluster_id: task.0 as u64,
                            total_units: total,
                            sampled_units: sampled,
                            sum: stat.sum,
                            sum_sq: stat.sum_sq,
                        }
                    })
                    .collect(),
            })
            .collect()
    }
}

// ---------------------------------------------------------------------
// The workload and its runners
// ---------------------------------------------------------------------

/// The two-input workload: an access log joined against a page
/// catalogue.
#[derive(Debug, Clone, Copy)]
pub struct JoinWorkload {
    /// Dataset 0: the access log (the big, sampled side).
    pub log: WikiLog,
    /// Dataset 1: the page catalogue (the small, precise side).
    pub catalog: PageCatalog,
}

impl JoinWorkload {
    /// A demo-sized workload: `mult` scales the log volume, `seed`
    /// drives both generators and the Bloom hash family. Roughly 40% of
    /// the log's page *ranks* are uncatalogued, so the Bloom filter has
    /// real work; popular (low-rank) pages are catalogued, so most
    /// traffic joins.
    pub fn demo(mult: u64, seed: u64) -> Self {
        JoinWorkload {
            log: WikiLog {
                days: 2,
                entries_per_block: 4_000 * mult,
                blocks_per_day: 12,
                pages: 50_000,
                projects: 100,
                seed,
            },
            catalog: PageCatalog {
                pages: 30_000,
                pages_per_block: 6_000,
                categories: 8,
                seed,
                fpr: 0.01,
            },
        }
    }

    /// The tagged two-dataset input: dataset 0 = the log, dataset 1 =
    /// the catalogue.
    pub fn source(&self) -> Result<TaggedSource<JoinRecord>> {
        let log = self.log;
        let log_metas = (0..log.num_blocks())
            .map(|b| SplitMeta {
                index: b as usize,
                dataset: Default::default(),
                records: log.entries_per_block,
                bytes: log.entries_per_block * 64,
                locations: vec![],
            })
            .collect();
        let access = FnSource::new(log_metas, move |i| {
            log.block(i as u64)
                .into_iter()
                .map(JoinRecord::Access)
                .collect::<Vec<_>>()
        });
        let sources: Vec<BoxedSource<JoinRecord>> =
            vec![Box::new(access), Box::new(self.catalog.source())];
        Ok(TaggedSource::try_new(sources)?)
    }

    /// The log dataset's cluster population `N` — the denominator of
    /// every stratum's estimator.
    pub fn log_clusters(&self) -> u64 {
        self.log.num_blocks()
    }

    /// The per-dataset approximation config: `ratios` for the log,
    /// precise for the catalogue (dropping catalogue blocks would lose
    /// join keys, not widen an interval).
    pub fn dataset_ratios(&self, ratios: DatasetRatios) -> Vec<DatasetRatios> {
        vec![ratios, DatasetRatios::precise()]
    }

    /// The precise join aggregate, computed directly (no engine):
    /// bytes per category over accesses whose page is catalogued. The
    /// ground truth the approximate intervals must cover.
    pub fn precise_by_category(&self) -> BTreeMap<u64, f64> {
        let mut totals = BTreeMap::new();
        for b in 0..self.log.num_blocks() {
            for e in self.log.block(b) {
                if e.page <= self.catalog.pages {
                    *totals
                        .entry(self.catalog.category_of(e.page))
                        .or_insert(0.0) += e.bytes as f64;
                }
            }
        }
        totals
    }
}

/// The outcome of a join run: per-stratum intervals plus the
/// quadrature-combined whole-join interval.
#[derive(Debug)]
pub struct JoinOutcome {
    /// Per-category `(estimate, interval)` rows in category order.
    pub categories: Vec<(u64, Interval)>,
    /// The whole-join interval: estimates summed, half-widths combined
    /// in quadrature.
    pub combined: Interval,
    /// Engine metrics of the run.
    pub metrics: JobMetrics,
}

/// Merges every reducer's [`JoinPartial`]s and estimates each stratum
/// over the log dataset's `total_log_clusters` population.
pub fn finish_join(
    result: JobResult<JoinPartial>,
    total_log_clusters: u64,
    confidence: f64,
) -> Result<JoinOutcome> {
    // (category, cluster) cells from different reducers cover disjoint
    // page sets of the same cluster: sums add, (M_i, m_i) agree.
    let mut merged: BTreeMap<u64, BTreeMap<u64, ClusterObservation>> = BTreeMap::new();
    for partial in result.outputs {
        let per_cat = merged.entry(partial.category).or_default();
        for obs in partial.clusters {
            per_cat
                .entry(obs.cluster_id)
                .and_modify(|acc| {
                    acc.sum += obs.sum;
                    acc.sum_sq += obs.sum_sq;
                })
                .or_insert(obs);
        }
    }
    let mut est: StratifiedEstimator<u64> = StratifiedEstimator::new(total_log_clusters);
    for (category, per_cluster) in &merged {
        for obs in per_cluster.values() {
            est.push(*category, *obs);
        }
    }
    let (categories, combined) = if est.num_strata() == 0 {
        // Nothing joined (e.g. the filter discarded everything): the
        // exact empty result.
        (Vec::new(), combine_strata(&[], confidence))
    } else {
        (
            est.estimate_strata(confidence)?,
            est.estimate_combined(confidence)?,
        )
    };
    Ok(JoinOutcome {
        categories,
        combined,
        metrics: result.metrics,
    })
}

/// Errors when any catalogue (build-side) cluster failed to complete.
/// Losing a *log* cluster widens the intervals (Eq. 1–3 account for
/// it); losing a *catalogue* cluster silently removes join keys — every
/// access to its pages would be skipped as "uncatalogued" with no trace
/// in any bound — so it must be a hard error, never a degradation.
fn ensure_build_side_complete(w: &JoinWorkload, metrics: &JobMetrics) -> Result<()> {
    // Dataset-1 tasks occupy the contiguous tail of the flattened task
    // space (the tagged source lays datasets out in order).
    let n_log = w.log.num_blocks() as usize;
    if let Some(rec) = metrics
        .task_outcomes
        .iter()
        .find(|r| r.task.0 >= n_log && r.outcome != TaskOutcome::Completed)
    {
        return Err(RuntimeError::invalid(format!(
            "catalogue cluster {} did not complete ({:?}): the join's \
             build side must run precisely (its loss cannot be bounded)",
            rec.task.0, rec.outcome
        ))
        .into());
    }
    Ok(())
}

/// Builds the mapper, attaching Bloom counters when the config carries
/// an observability context.
fn join_mapper(w: &JoinWorkload, config: &JobConfig) -> TaggedMapper<JoinMapper> {
    let mut mapper = JoinMapper::new(&w.catalog);
    if let Some(obs) = &config.obs {
        mapper = mapper.with_obs(obs);
    }
    TaggedMapper::new(mapper)
}

/// Runs the join on the **scoped-threads** backend.
pub fn join_category_traffic(
    w: &JoinWorkload,
    ratios: DatasetRatios,
    config: JobConfig,
    confidence: f64,
) -> Result<JoinOutcome> {
    let config = JobConfig {
        datasets: w.dataset_ratios(ratios),
        ..config
    };
    let source = w.source()?;
    let result = run_job(
        &source,
        &join_mapper(w, &config),
        |_| JoinReducer::new(),
        config,
    )?;
    ensure_build_side_complete(w, &result.metrics)?;
    finish_join(result, w.log_clusters(), confidence)
}

/// Runs the join on the **shared slot pool** backend (a private pool of
/// `pool_slots` slots for this one job — the service-mode executor).
pub fn join_category_traffic_pooled(
    w: &JoinWorkload,
    ratios: DatasetRatios,
    config: JobConfig,
    confidence: f64,
    pool_slots: usize,
) -> Result<JoinOutcome> {
    let config = JobConfig {
        datasets: w.dataset_ratios(ratios),
        ..config
    };
    let source = w.source()?;
    let splits = source.splits();
    let mut coordinator = DatasetFixedCoordinator::new(&splits, &config.datasets, config.seed)?;
    let pool = SlotPool::new(pool_slots.max(1));
    let tenant = pool.register_tenant(1.0);
    let session = JobSession::new(JobId(0));
    let mapper = join_mapper(w, &config);
    let result = run_job_on_pool(
        Arc::new(source),
        Arc::new(mapper),
        |_| JoinReducer::new(),
        config,
        &mut coordinator,
        &pool,
        tenant,
        &session,
    );
    pool.unregister_tenant(tenant);
    let result = result?;
    ensure_build_side_complete(w, &result.metrics)?;
    finish_join(result, w.log_clusters(), confidence)
}

/// Runs the join on the **worker-process** backend. `worker.bin` must
/// register [`JOIN_JOB`] (see [`register_join_job`]); the catalogue
/// travels as the job's params blob, so workers rebuild a bit-identical
/// Bloom filter on their side of the process boundary.
pub fn join_category_traffic_process(
    w: &JoinWorkload,
    ratios: DatasetRatios,
    config: JobConfig,
    confidence: f64,
    worker: &WorkerSpec,
) -> Result<JoinOutcome> {
    let config = JobConfig {
        datasets: w.dataset_ratios(ratios),
        ..config
    };
    let spec = WorkerSpec::new(&worker.bin, JOIN_JOB).with_params(w.catalog.to_bytes());
    let source = w.source()?;
    let splits = source.splits();
    let mut coordinator = DatasetFixedCoordinator::new(&splits, &config.datasets, config.seed)?;
    let session = JobSession::new(JobId(0));
    let result = run_job_process(
        &source,
        &spec,
        |_| JoinReducer::new(),
        config,
        &mut coordinator,
        &session,
    )?;
    ensure_build_side_complete(w, &result.metrics)?;
    finish_join(result, w.log_clusters(), confidence)
}

/// The join mapper wrapped for single-`Mapper` call sites (e.g.
/// [`JobService::submit`]-style generic submission), without counters.
///
/// [`JobService::submit`]: https://docs.rs/approxhadoop-server
pub fn tagged_join_mapper(catalog: &PageCatalog) -> TaggedMapper<JoinMapper> {
    TaggedMapper::new(JoinMapper::new(catalog))
}

/// Registers the join job in a worker binary's registry under
/// [`JOIN_JOB`]: decodes the [`PageCatalog`] from the params blob and
/// rebuilds the Bloom-filtering mapper. Counters attach to the worker
/// process's own observability context
/// ([`approxhadoop_runtime::engine::process::worker_obs`]), whose
/// deltas the frame loop piggybacks back to the parent's registry when
/// the job enables telemetry.
pub fn register_join_job(registry: &mut approxhadoop_runtime::engine::process::JobRegistry) {
    registry.register(JOIN_JOB, |params: &[u8]| {
        let catalog =
            PageCatalog::from_bytes(params).map_err(|e| format!("bad {JOIN_JOB} params: {e}"))?;
        Ok(TaggedMapper::new(JoinMapper::new(&catalog).with_obs(
            &approxhadoop_runtime::engine::process::worker_obs(),
        )))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use approxhadoop_runtime::input::InputSource;

    fn small() -> JoinWorkload {
        JoinWorkload {
            log: WikiLog {
                days: 1,
                entries_per_block: 300,
                blocks_per_day: 8,
                pages: 2_000,
                projects: 10,
                seed: 42,
            },
            catalog: PageCatalog {
                pages: 1_200,
                pages_per_block: 500,
                categories: 4,
                seed: 42,
                fpr: 0.01,
            },
        }
    }

    #[test]
    fn catalog_blocks_cover_every_page_once() {
        let c = small().catalog;
        let mut pages: Vec<u64> = (0..c.num_blocks())
            .flat_map(|b| c.block(b))
            .map(|m| m.page)
            .collect();
        pages.sort_unstable();
        assert_eq!(pages, (1..=c.pages).collect::<Vec<_>>());
    }

    #[test]
    fn join_record_wire_roundtrips() {
        let records = vec![
            JoinRecord::Access(LogEntry {
                timestamp: 7,
                project: 3,
                page: 999,
                bytes: 120,
            }),
            JoinRecord::Meta(PageMeta {
                page: 999,
                category: 2,
            }),
        ];
        for r in &records {
            assert_eq!(&JoinRecord::from_bytes(&r.to_bytes()).unwrap(), r);
        }
        // An invalid tag is rejected, not misread.
        let mut bad = records[0].to_bytes();
        bad[0] = 9;
        assert!(JoinRecord::from_bytes(&bad).is_err());
    }

    #[test]
    fn tagged_source_flattens_datasets_in_order() {
        let w = small();
        let source = w.source().unwrap();
        let splits = source.splits();
        assert_eq!(
            splits.len() as u64,
            w.log.num_blocks() + w.catalog.num_blocks()
        );
        assert!(splits[..w.log.num_blocks() as usize]
            .iter()
            .all(|s| s.dataset == DatasetId(0)));
        assert!(splits[w.log.num_blocks() as usize..]
            .iter()
            .all(|s| s.dataset == DatasetId(1)));
    }

    #[test]
    fn precise_join_is_exact_and_matches_truth() {
        let w = small();
        let outcome = join_category_traffic(
            &w,
            DatasetRatios::precise(),
            JobConfig {
                reduce_tasks: 2,
                seed: 1,
                ..Default::default()
            },
            0.95,
        )
        .unwrap();
        let truth = w.precise_by_category();
        assert_eq!(outcome.categories.len(), truth.len());
        for (category, interval) in &outcome.categories {
            assert_eq!(interval.half_width, 0.0, "census must be exact");
            let t = truth[category];
            assert!(
                (interval.estimate - t).abs() < 1e-6,
                "category {category}: {} != {t}",
                interval.estimate
            );
        }
        let total: f64 = truth.values().sum();
        assert!((outcome.combined.estimate - total).abs() < 1e-6);
        assert_eq!(outcome.combined.half_width, 0.0);
    }

    #[test]
    fn sampled_join_covers_truth_per_stratum() {
        let w = small();
        let outcome = join_category_traffic(
            &w,
            DatasetRatios {
                sampling_ratio: 0.5,
                drop_ratio: 0.25,
            },
            JobConfig {
                reduce_tasks: 2,
                seed: 3,
                ..Default::default()
            },
            0.95,
        )
        .unwrap();
        let truth = w.precise_by_category();
        assert!(outcome.metrics.dropped_maps > 0, "drops must engage");
        let mut covered = 0usize;
        for (category, interval) in &outcome.categories {
            assert!(interval.half_width > 0.0, "sampling must widen intervals");
            if interval.contains(truth[category]) {
                covered += 1;
            }
        }
        // 95% intervals: demand every stratum covers here (seed chosen
        // to behave; the e2e matrix exercises more seeds).
        assert_eq!(
            covered,
            outcome.categories.len(),
            "strata must cover their precise values"
        );
        assert!(outcome.combined.contains(truth.values().sum()));
    }

    #[test]
    fn bloom_prefilter_discards_uncatalogued_traffic() {
        let w = small();
        let obs = Obs::shared();
        let outcome = join_category_traffic(
            &w,
            DatasetRatios::precise(),
            JobConfig {
                reduce_tasks: 2,
                seed: 1,
                obs: Some(Arc::clone(&obs)),
                ..Default::default()
            },
            0.95,
        )
        .unwrap();
        drop(outcome);
        let metrics = obs.registry.render_prometheus();
        let discarded = metrics
            .lines()
            .find(|l| l.starts_with("join_filter_discarded_total"))
            .and_then(|l| l.rsplit(' ').next()?.parse::<f64>().ok())
            .unwrap_or(0.0);
        let passed = metrics
            .lines()
            .find(|l| l.starts_with("join_filter_passed_total"))
            .and_then(|l| l.rsplit(' ').next()?.parse::<f64>().ok())
            .unwrap_or(0.0);
        assert!(
            discarded > 0.0,
            "uncatalogued pages must be filtered map-side:\n{metrics}"
        );
        assert!(passed > 0.0, "catalogued traffic must pass the filter");
    }

    #[test]
    fn mistagged_records_are_ignored() {
        let mapper = JoinMapper::new(&small().catalog);
        let mut state = MultiMapper::begin_task(
            &mapper,
            &MapTaskContext {
                task: TaskId(0),
                dataset: DatasetId(0),
                sampling_ratio: 1.0,
                attempt: 0,
            },
        );
        let mut out = Vec::new();
        // A Meta record tagged as dataset 0 and an Access tagged as 1:
        // both contradictions, both dropped.
        MultiMapper::map(
            &mapper,
            &mut state,
            DatasetId(0),
            JoinRecord::Meta(PageMeta {
                page: 1,
                category: 1,
            }),
            &mut |k, v| out.push((k, v)),
        );
        MultiMapper::map(
            &mapper,
            &mut state,
            DatasetId(1),
            JoinRecord::Access(LogEntry {
                timestamp: 0,
                project: 1,
                page: 1,
                bytes: 10,
            }),
            &mut |k, v| out.push((k, v)),
        );
        MultiMapper::end_task(&mapper, state, &mut |k, v| out.push((k, v)));
        assert!(out.is_empty(), "mistagged records must contribute nothing");
    }
}
