//! K-means clustering over synthetic document vectors (the paper's
//! K-Means application on the Apache mailing list, user-defined
//! approximation + input sampling).
//!
//! One MapReduce iteration: each map task assigns its points to the
//! nearest centroid and emits per-centroid partial sums; the reduce
//! averages them into new centroids. The approximate version samples
//! points within each block; quality is measured by inertia (total
//! squared distance), the user-defined error metric.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A point in `D` dimensions.
pub type Point = Vec<f64>;

/// Deterministic generator of clustered document vectors.
#[derive(Debug, Clone, Copy)]
pub struct DocVectors {
    /// Number of points.
    pub points: u64,
    /// Points per block.
    pub points_per_block: u64,
    /// Dimensionality.
    pub dims: usize,
    /// True underlying clusters.
    pub true_clusters: usize,
    /// RNG seed.
    pub seed: u64,
}

impl DocVectors {
    /// Laptop-scale default: 40k points, 8 dims, 5 clusters.
    pub fn small(seed: u64) -> Self {
        DocVectors {
            points: 40_000,
            points_per_block: 2_000,
            dims: 8,
            true_clusters: 5,
            seed,
        }
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> u64 {
        self.points.div_ceil(self.points_per_block)
    }

    /// The true cluster centres.
    pub fn true_centres(&self) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xCE_17E5);
        (0..self.true_clusters)
            .map(|_| (0..self.dims).map(|_| rng.gen_range(-10.0..10.0)).collect())
            .collect()
    }

    /// Generates one block of points; deterministic per block.
    pub fn block(&self, block: u64) -> Vec<Point> {
        let centres = self.true_centres();
        let start = block * self.points_per_block;
        let end = (start + self.points_per_block).min(self.points);
        let mut rng = StdRng::seed_from_u64(self.seed ^ block.wrapping_mul(0xD0C5));
        (start..end)
            .map(|_| {
                let c = &centres[rng.gen_range(0..centres.len())];
                c.iter().map(|&x| x + rng.gen_range(-1.5..1.5)).collect()
            })
            .collect()
    }
}

/// Squared Euclidean distance.
pub fn dist_sq(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Index of the nearest centroid.
pub fn nearest(point: &[f64], centroids: &[Point]) -> usize {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (i, c) in centroids.iter().enumerate() {
        let d = dist_sq(point, c);
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

/// Per-centroid partial aggregate emitted by a map task.
#[derive(Debug, Clone, PartialEq)]
pub struct CentroidUpdate {
    /// Sum of assigned points, per dimension.
    pub sum: Vec<f64>,
    /// Number of assigned points.
    pub count: u64,
    /// Total squared distance of assigned points (inertia contribution).
    pub inertia: f64,
}

impl CentroidUpdate {
    /// A zero update of the given dimensionality.
    pub fn zero(dims: usize) -> Self {
        CentroidUpdate {
            sum: vec![0.0; dims],
            count: 0,
            inertia: 0.0,
        }
    }

    /// Folds one assigned point in.
    pub fn add(&mut self, point: &[f64], d2: f64) {
        for (s, x) in self.sum.iter_mut().zip(point) {
            *s += x;
        }
        self.count += 1;
        self.inertia += d2;
    }

    /// Merges another update.
    pub fn merge(&mut self, other: &CentroidUpdate) {
        for (s, x) in self.sum.iter_mut().zip(&other.sum) {
            *s += x;
        }
        self.count += other.count;
        self.inertia += other.inertia;
    }

    /// The resulting centroid (`None` if no points were assigned).
    pub fn centroid(&self) -> Option<Point> {
        (self.count > 0).then(|| self.sum.iter().map(|s| s / self.count as f64).collect())
    }
}

/// Deterministic shared initial centroids, so the sequential baseline
/// and the MapReduce implementation start from the same state and their
/// inertias are directly comparable.
pub fn initial_centroids(data: &DocVectors, k: usize) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(data.seed ^ 0x4B4D);
    (0..k)
        .map(|_| (0..data.dims).map(|_| rng.gen_range(-10.0..10.0)).collect())
        .collect()
}

/// Runs `iterations` of Lloyd's algorithm sequentially over all blocks
/// (the ground-truth baseline); returns `(centroids, inertia)`.
pub fn lloyd_baseline(data: &DocVectors, k: usize, iterations: usize) -> (Vec<Point>, f64) {
    let mut centroids = initial_centroids(data, k);
    let mut inertia = f64::INFINITY;
    for _ in 0..iterations {
        let mut updates: Vec<CentroidUpdate> =
            (0..k).map(|_| CentroidUpdate::zero(data.dims)).collect();
        for b in 0..data.num_blocks() {
            for p in data.block(b) {
                let i = nearest(&p, &centroids);
                let d2 = dist_sq(&p, &centroids[i]);
                updates[i].add(&p, d2);
            }
        }
        inertia = updates.iter().map(|u| u.inertia).sum();
        for (c, u) in centroids.iter_mut().zip(&updates) {
            if let Some(nc) = u.centroid() {
                *c = nc;
            }
        }
    }
    (centroids, inertia)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_deterministic() {
        let d = DocVectors::small(1);
        assert_eq!(d.block(3), d.block(3));
        assert_eq!(d.num_blocks(), 20);
        assert_eq!(d.block(0).len(), 2_000);
        assert_eq!(d.block(0)[0].len(), 8);
    }

    #[test]
    fn nearest_and_distance() {
        let cents = vec![vec![0.0, 0.0], vec![10.0, 10.0]];
        assert_eq!(nearest(&[1.0, 1.0], &cents), 0);
        assert_eq!(nearest(&[9.0, 9.0], &cents), 1);
        assert_eq!(dist_sq(&[0.0, 3.0], &[4.0, 0.0]), 25.0);
    }

    #[test]
    fn updates_merge_and_average() {
        let mut a = CentroidUpdate::zero(2);
        a.add(&[2.0, 4.0], 1.0);
        let mut b = CentroidUpdate::zero(2);
        b.add(&[4.0, 8.0], 2.0);
        a.merge(&b);
        assert_eq!(a.count, 2);
        assert_eq!(a.centroid().unwrap(), vec![3.0, 6.0]);
        assert_eq!(a.inertia, 3.0);
        assert!(CentroidUpdate::zero(2).centroid().is_none());
    }

    #[test]
    fn lloyd_reduces_inertia_towards_truth() {
        let d = DocVectors {
            points: 4_000,
            points_per_block: 1_000,
            dims: 4,
            true_clusters: 3,
            seed: 5,
        };
        let (_, i1) = lloyd_baseline(&d, 3, 1);
        let (_, i8) = lloyd_baseline(&d, 3, 8);
        assert!(i8 < i1, "inertia should fall: {i8} vs {i1}");
    }
}
