//! The paper's applications (Table 1), each expressed against the
//! ApproxHadoop-RS public API.
//!
//! Every function takes the approximation [`ApproxSpec`] and engine
//! [`JobConfig`] so benches can sweep ratios and target bounds.

use approxhadoop_core::extreme::ExtremeOutput;
use approxhadoop_core::job::{AggregationJob, ApproxResult, ExtremeJob};
use approxhadoop_core::spec::ApproxSpec;
use approxhadoop_core::userdef::UserDefinedMapper;
use approxhadoop_core::CoreError;
use approxhadoop_core::Result;
use approxhadoop_runtime::engine::{run_job, JobConfig, WorkerSpec};
use approxhadoop_runtime::input::VecSource;
use approxhadoop_runtime::mapper::{MapTaskContext, Mapper};
use approxhadoop_runtime::reducer::GroupedReducer;
use approxhadoop_stats::Interval;

use crate::dcgrid::{anneal, AnnealConfig, Grid};
use crate::deptlog::{DeptLog, Request, BROWSERS};
use crate::kmeans::{dist_sq, nearest, CentroidUpdate, DocVectors, Point};
use crate::video::{encode_frame, Frame, APPROX_QUANT, PRECISE_QUANT};
use crate::wikidump::{Article, WikiDump};
use crate::wikilog::{LogEntry, WikiLog};

// ---------------------------------------------------------------------
// Wikipedia dump analysis (Figures 5a/5b, 6)
// ---------------------------------------------------------------------

/// **WikiLength**: histogram of article lengths (key = power-of-two
/// size bin, value = article count). Paper Figure 5(a).
pub fn wiki_length(
    dump: &WikiDump,
    spec: ApproxSpec,
    config: JobConfig,
) -> Result<ApproxResult<(u64, Interval)>> {
    AggregationJob::count(|a: &Article, emit: &mut dyn FnMut(u64, f64)| {
        emit(WikiDump::length_bin(a.length), 1.0)
    })
    .spec(spec)
    .config(config)
    .run(&dump.source())
}

/// **WikiPageRank**: number of articles linking to each article
/// (the in-degree kernel of PageRank). Paper Figure 5(b).
pub fn wiki_page_rank(
    dump: &WikiDump,
    spec: ApproxSpec,
    config: JobConfig,
) -> Result<ApproxResult<(u64, Interval)>> {
    AggregationJob::count(|a: &Article, emit: &mut dyn FnMut(u64, f64)| {
        for &l in &a.links {
            emit(l, 1.0);
        }
    })
    .spec(spec)
    .config(config)
    .run(&dump.source())
}

// ---------------------------------------------------------------------
// Wikipedia access-log processing (Figures 5c/5d, 7, 9a/9b, 13)
// ---------------------------------------------------------------------

/// **Project Popularity**: accesses per project. Paper Figure 5(c).
pub fn project_popularity(
    log: &WikiLog,
    spec: ApproxSpec,
    config: JobConfig,
) -> Result<ApproxResult<(u64, Interval)>> {
    AggregationJob::count(|e: &LogEntry, emit: &mut dyn FnMut(u64, f64)| emit(e.project, 1.0))
        .spec(spec)
        .config(config)
        .run(&log.source())
}

/// **Page Popularity**: accesses per page. Paper Figure 5(d).
pub fn page_popularity(
    log: &WikiLog,
    spec: ApproxSpec,
    config: JobConfig,
) -> Result<ApproxResult<(u64, Interval)>> {
    AggregationJob::count(|e: &LogEntry, emit: &mut dyn FnMut(u64, f64)| emit(e.page, 1.0))
        .spec(spec)
        .config(config)
        .run(&log.source())
}

/// **Request Rate** (Wikipedia log): accesses per hour of the log.
pub fn wiki_request_rate(
    log: &WikiLog,
    spec: ApproxSpec,
    config: JobConfig,
) -> Result<ApproxResult<(u64, Interval)>> {
    AggregationJob::count(|e: &LogEntry, emit: &mut dyn FnMut(u64, f64)| {
        emit(e.timestamp / 3_600, 1.0)
    })
    .spec(spec)
    .config(config)
    .run(&log.source())
}

/// **Page Traffic**: bytes served per page.
pub fn page_traffic(
    log: &WikiLog,
    spec: ApproxSpec,
    config: JobConfig,
) -> Result<ApproxResult<(u64, Interval)>> {
    AggregationJob::sum(|e: &LogEntry, emit: &mut dyn FnMut(u64, f64)| emit(e.page, e.bytes as f64))
        .spec(spec)
        .config(config)
        .run(&log.source())
}

/// The wikilog aggregations on the **process backend**: map attempts
/// execute in worker OS processes started from `worker.bin`, which must
/// be a binary registering these jobs under their app names (the
/// workspace's `approx-worker` does). `worker.job` is ignored — the job
/// dispatched is always `app`.
///
/// Supported apps: `project-popularity`, `page-popularity`,
/// `request-rate`, `page-traffic`. Results are identical to the
/// in-process variants above for the same spec, config and seed.
pub fn wikilog_process(
    app: &str,
    log: &WikiLog,
    spec: ApproxSpec,
    config: JobConfig,
    worker: &WorkerSpec,
) -> Result<ApproxResult<(u64, Interval)>> {
    let worker = WorkerSpec::new(&worker.bin, app);
    let source = log.source();
    match app {
        "project-popularity" => {
            AggregationJob::count(|e: &LogEntry, emit: &mut dyn FnMut(u64, f64)| {
                emit(e.project, 1.0)
            })
            .spec(spec)
            .config(config)
            .run_on_workers(&source, &worker)
        }
        "page-popularity" => {
            AggregationJob::count(|e: &LogEntry, emit: &mut dyn FnMut(u64, f64)| emit(e.page, 1.0))
                .spec(spec)
                .config(config)
                .run_on_workers(&source, &worker)
        }
        "request-rate" => AggregationJob::count(|e: &LogEntry, emit: &mut dyn FnMut(u64, f64)| {
            emit(e.timestamp / 3_600, 1.0)
        })
        .spec(spec)
        .config(config)
        .run_on_workers(&source, &worker),
        "page-traffic" => AggregationJob::sum(|e: &LogEntry, emit: &mut dyn FnMut(u64, f64)| {
            emit(e.page, e.bytes as f64)
        })
        .spec(spec)
        .config(config)
        .run_on_workers(&source, &worker),
        other => Err(CoreError::invalid(format!(
            "application `{other}` is not available on the process backend (supported: \
             project-popularity, page-popularity, request-rate, page-traffic)"
        ))),
    }
}

/// **Bytes per Access** (ratio aggregate): mean response size per access
/// for each project — the paper's fourth supported aggregation.
pub fn bytes_per_access(
    log: &WikiLog,
    spec: ApproxSpec,
    config: JobConfig,
) -> Result<ApproxResult<(u64, Interval)>> {
    approxhadoop_core::job::RatioJob::new(|e: &LogEntry, emit: &mut dyn FnMut(u64, (f64, f64))| {
        emit(e.project, (e.bytes as f64, 1.0))
    })
    .spec(spec)
    .config(config)
    .run(&log.source())
}

/// **Mentions per Paragraph** (three-stage sampling, paper §3.1): the
/// mean number of occurrences of a watched word per *paragraph*, where
/// the population units are the intermediate pairs (paragraphs), not
/// the input articles.
pub fn mentions_per_paragraph(
    dump: &WikiDump,
    drop_ratio: f64,
    sampling_ratio: f64,
    config: JobConfig,
) -> Result<ApproxResult<(String, Interval)>> {
    use approxhadoop_core::threestage::{
        ThreeStageAggregation, ThreeStageMapper, ThreeStageReducer,
    };
    let mapper = ThreeStageMapper::new(|a: &Article, emit: &mut dyn FnMut(String, f64)| {
        for m in a.paragraph_mentions() {
            emit("mentions".to_string(), m as f64);
        }
    });
    let mut cfg = config;
    cfg.drop_ratio = drop_ratio;
    cfg.sampling_ratio = sampling_ratio;
    let job = run_job(
        &dump.source(),
        &mapper,
        |_| ThreeStageReducer::<String>::new(ThreeStageAggregation::MeanPerPair, 0.95),
        cfg,
    )?;
    Ok(ApproxResult {
        outputs: job.outputs,
        metrics: job.metrics,
        distinct_keys_estimate: None,
    })
}

// ---------------------------------------------------------------------
// Departmental web-server log (Figures 10, 11, 12)
// ---------------------------------------------------------------------

/// **Total Size**: total bytes served (single key).
pub fn total_size(
    log: &DeptLog,
    spec: ApproxSpec,
    config: JobConfig,
) -> Result<ApproxResult<(u8, Interval)>> {
    AggregationJob::sum(|r: &Request, emit: &mut dyn FnMut(u8, f64)| emit(0, r.bytes as f64))
        .spec(spec)
        .config(config)
        .run(&log.source())
}

/// **Request Size**: mean bytes per request (single key).
pub fn request_size(
    log: &DeptLog,
    spec: ApproxSpec,
    config: JobConfig,
) -> Result<ApproxResult<(u8, Interval)>> {
    AggregationJob::mean(|r: &Request, emit: &mut dyn FnMut(u8, f64)| emit(0, r.bytes as f64))
        .spec(spec)
        .config(config)
        .run(&log.source())
}

/// **Clients**: requests per client.
pub fn clients(
    log: &DeptLog,
    spec: ApproxSpec,
    config: JobConfig,
) -> Result<ApproxResult<(u32, Interval)>> {
    AggregationJob::count(|r: &Request, emit: &mut dyn FnMut(u32, f64)| emit(r.client, 1.0))
        .spec(spec)
        .config(config)
        .run(&log.source())
}

/// **Client Browser**: requests per browser family.
pub fn client_browser(
    log: &DeptLog,
    spec: ApproxSpec,
    config: JobConfig,
) -> Result<ApproxResult<(String, Interval)>> {
    AggregationJob::count(|r: &Request, emit: &mut dyn FnMut(String, f64)| {
        emit(
            BROWSERS[r.browser as usize % BROWSERS.len()].to_string(),
            1.0,
        )
    })
    .spec(spec)
    .config(config)
    .run(&log.source())
}

/// **Request Rate** (departmental log): requests per hour-of-week
/// (Figure 10a/10b, 11a).
pub fn dept_request_rate(
    log: &DeptLog,
    spec: ApproxSpec,
    config: JobConfig,
) -> Result<ApproxResult<(u32, Interval)>> {
    AggregationJob::count(|r: &Request, emit: &mut dyn FnMut(u32, f64)| emit(r.hour, 1.0))
        .spec(spec)
        .config(config)
        .run(&log.source())
}

/// **Attack Frequencies**: attacks per client (rare values —
/// Figure 10c, 11b).
pub fn attack_frequencies(
    log: &DeptLog,
    spec: ApproxSpec,
    config: JobConfig,
) -> Result<ApproxResult<(u32, Interval)>> {
    AggregationJob::count(|r: &Request, emit: &mut dyn FnMut(u32, f64)| {
        if r.attack.is_some() {
            emit(r.client, 1.0);
        }
    })
    .spec(spec)
    .config(config)
    .run(&log.source())
}

// ---------------------------------------------------------------------
// DC Placement (Figures 8, 9c) — extreme values / GEV
// ---------------------------------------------------------------------

/// **DC Placement**: each map task runs independent simulated-annealing
/// searches and emits the minimum cost found; the reduce estimates the
/// global minimum with a fitted GEV.
pub fn dc_placement(
    grid: &Grid,
    anneal_config: &AnnealConfig,
    num_maps: usize,
    searches_per_map: usize,
    spec: ApproxSpec,
    config: JobConfig,
) -> Result<ApproxResult<ExtremeOutput>> {
    // Each input item is one search seed; one block per map task.
    let blocks: Vec<Vec<u64>> = (0..num_maps)
        .map(|m| {
            (0..searches_per_map)
                .map(|s| (m * searches_per_map + s) as u64)
                .collect()
        })
        .collect();
    let input = VecSource::new(blocks);
    let grid = grid.clone();
    let anneal_config = *anneal_config;
    ExtremeJob::min(move |seed: &u64, emit: &mut dyn FnMut(f64)| {
        emit(anneal(&grid, &anneal_config, *seed))
    })
    .spec(spec)
    .config(config)
    .run(&input)
}

// ---------------------------------------------------------------------
// Video Encoding — user-defined approximation
// ---------------------------------------------------------------------

/// Per-chunk statistics produced by the video encoder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChunkStats {
    /// Frames encoded.
    pub frames: u64,
    /// Total non-zero coefficients (compressed-size proxy).
    pub coefficients: u64,
    /// Sum of per-frame PSNR values (dB).
    pub psnr_sum: f64,
    /// Whether the approximate encoder produced this chunk.
    pub approximate: bool,
}

/// Result of a video-encoding job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VideoResult {
    /// Frames encoded in total.
    pub frames: u64,
    /// Total non-zero coefficients.
    pub coefficients: u64,
    /// Mean PSNR across frames (the user-defined quality metric).
    pub mean_psnr_db: f64,
    /// Fraction of chunks encoded approximately.
    pub approx_chunk_fraction: f64,
}

struct EncoderMapper {
    size: usize,
    seed: u64,
    quant: f64,
    approximate: bool,
}

impl Mapper for EncoderMapper {
    type Item = u64; // frame index
    type Key = u8;
    type Value = ChunkStats;
    type TaskState = ChunkStats;

    fn begin_task(&self, _ctx: &MapTaskContext) -> ChunkStats {
        ChunkStats {
            frames: 0,
            coefficients: 0,
            psnr_sum: 0.0,
            approximate: self.approximate,
        }
    }

    fn map(&self, state: &mut ChunkStats, frame_idx: u64, _emit: &mut dyn FnMut(u8, ChunkStats)) {
        let frame = Frame::synthetic(self.size, self.seed, frame_idx);
        let stats = encode_frame(&frame, self.quant);
        state.frames += 1;
        state.coefficients += stats.nonzero_coefficients;
        state.psnr_sum += stats.psnr_db;
    }

    fn end_task(&self, state: ChunkStats, emit: &mut dyn FnMut(u8, ChunkStats)) {
        if state.frames > 0 {
            emit(0, state);
        }
    }
}

/// **Video Encoding**: encodes `num_chunks × frames_per_chunk` synthetic
/// frames; `approx_fraction` of the chunks use the coarse (approximate)
/// encoder. Quality (PSNR) is the user-defined error metric.
pub fn video_encoding(
    frame_size: usize,
    num_chunks: usize,
    frames_per_chunk: usize,
    approx_fraction: f64,
    seed: u64,
    config: JobConfig,
) -> Result<VideoResult> {
    let blocks: Vec<Vec<u64>> = (0..num_chunks)
        .map(|c| {
            (0..frames_per_chunk)
                .map(|f| (c * frames_per_chunk + f) as u64)
                .collect()
        })
        .collect();
    let input = VecSource::new(blocks);
    let precise = EncoderMapper {
        size: frame_size,
        seed,
        quant: PRECISE_QUANT,
        approximate: false,
    };
    let approx = EncoderMapper {
        size: frame_size,
        seed,
        quant: APPROX_QUANT,
        approximate: true,
    };
    let mapper = UserDefinedMapper::new(precise, approx, approx_fraction, seed);
    let job = run_job(
        &input,
        &mapper,
        |_| {
            GroupedReducer::new(|_k: &u8, chunks: &[ChunkStats]| {
                let frames: u64 = chunks.iter().map(|c| c.frames).sum();
                let coefficients: u64 = chunks.iter().map(|c| c.coefficients).sum();
                let psnr: f64 = chunks.iter().map(|c| c.psnr_sum).sum();
                let approx = chunks.iter().filter(|c| c.approximate).count();
                Some((frames, coefficients, psnr, approx, chunks.len()))
            })
        },
        config,
    )?;
    let (frames, coefficients, psnr_sum, approx_chunks, total_chunks) = job.outputs[0];
    Ok(VideoResult {
        frames,
        coefficients,
        mean_psnr_db: if frames > 0 {
            psnr_sum / frames as f64
        } else {
            0.0
        },
        approx_chunk_fraction: if total_chunks > 0 {
            approx_chunks as f64 / total_chunks as f64
        } else {
            0.0
        },
    })
}

// ---------------------------------------------------------------------
// K-Means — user-defined approximation + input sampling
// ---------------------------------------------------------------------

/// Result of a k-means job.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansResult {
    /// Final centroids.
    pub centroids: Vec<Point>,
    /// Estimated total inertia, scaled up from the sampled points.
    pub inertia: f64,
    /// Effective fraction of points processed per iteration.
    pub sampling_ratio: f64,
}

/// **K-Means**: `iterations` of Lloyd's algorithm as MapReduce jobs,
/// optionally sampling points within each block (`sampling_ratio < 1`).
pub fn kmeans(
    data: &DocVectors,
    k: usize,
    iterations: usize,
    sampling_ratio: f64,
    config: JobConfig,
) -> Result<KMeansResult> {
    let mut centroids = crate::kmeans::initial_centroids(data, k);
    let data_copy = *data;
    let metas: Vec<approxhadoop_runtime::input::SplitMeta> = (0..data.num_blocks())
        .map(|b| approxhadoop_runtime::input::SplitMeta {
            index: b as usize,
            records: data
                .points_per_block
                .min(data.points - b * data.points_per_block),
            bytes: 0,
            locations: vec![],
            dataset: Default::default(),
        })
        .collect();
    let input =
        approxhadoop_runtime::input::FnSource::new(metas, move |i| data_copy.block(i as u64));

    let mut inertia = f64::INFINITY;
    let mut effective_ratio = 1.0;
    for iter in 0..iterations {
        let cents = centroids.clone();
        let dims = data.dims;
        // Map-side combining: per-centroid updates merge associatively
        // (the reducer below merge-folds anyway), so each map task ships
        // at most k pre-merged updates instead of one per point.
        let mapper = approxhadoop_runtime::combine::Combined::new(
            approxhadoop_runtime::mapper::FnMapper::new(
                move |p: &Point, emit: &mut dyn FnMut(usize, CentroidUpdate)| {
                    let i = nearest(p, &cents);
                    let d2 = dist_sq(p, &cents[i]);
                    let mut u = CentroidUpdate::zero(dims);
                    u.add(p, d2);
                    emit(i, u);
                },
            ),
            approxhadoop_runtime::combine::FnCombiner::new(
                |_k: &usize, acc: &mut CentroidUpdate, incoming: CentroidUpdate| {
                    acc.merge(&incoming);
                },
            ),
        );
        let mut cfg = config.clone();
        cfg.sampling_ratio = sampling_ratio;
        cfg.seed = config.seed ^ iter as u64;
        let job = run_job(
            &input,
            &mapper,
            |_| {
                GroupedReducer::new(move |k: &usize, us: &[CentroidUpdate]| {
                    let mut acc = CentroidUpdate::zero(dims);
                    for u in us {
                        acc.merge(u);
                    }
                    Some((*k, acc))
                })
            },
            cfg,
        )?;
        effective_ratio = job.metrics.effective_sampling_ratio();
        let scale = 1.0 / effective_ratio.max(1e-12);
        inertia = 0.0;
        for (idx, acc) in job.outputs {
            inertia += acc.inertia * scale;
            if let Some(c) = acc.centroid() {
                centroids[idx] = c;
            }
        }
    }
    Ok(KMeansResult {
        centroids,
        inertia,
        sampling_ratio: effective_ratio,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmeans::lloyd_baseline;

    fn cfg() -> JobConfig {
        JobConfig {
            map_slots: 4,
            ..Default::default()
        }
    }

    fn tiny_dump() -> WikiDump {
        WikiDump {
            articles: 10_000,
            articles_per_block: 500,
            seed: 1,
        }
    }

    fn tiny_log() -> WikiLog {
        WikiLog {
            days: 2,
            entries_per_block: 1_000,
            blocks_per_day: 10,
            pages: 10_000,
            projects: 100,
            seed: 2,
        }
    }

    fn tiny_dept() -> DeptLog {
        DeptLog {
            weeks: 20,
            requests_per_week: 2_000,
            clients: 5_000,
            attack_fraction: 5e-3,
            seed: 3,
        }
    }

    #[test]
    fn wiki_length_precise_counts_all_articles() {
        let dump = tiny_dump();
        let r = wiki_length(&dump, ApproxSpec::Precise, cfg()).unwrap();
        let total: f64 = r.outputs.iter().map(|(_, iv)| iv.estimate).sum();
        assert!((total - 10_000.0).abs() < 1e-6);
        assert!(r.outputs.len() > 5, "several bins: {}", r.outputs.len());
    }

    #[test]
    fn wiki_length_sampled_approximates_histogram() {
        let dump = tiny_dump();
        let precise = wiki_length(&dump, ApproxSpec::Precise, cfg()).unwrap();
        let approx = wiki_length(&dump, ApproxSpec::ratios(0.0, 0.1), cfg()).unwrap();
        // Compare the biggest bin.
        let (bin, truth) = precise
            .outputs
            .iter()
            .max_by(|a, b| a.1.estimate.total_cmp(&b.1.estimate))
            .map(|(k, iv)| (*k, iv.estimate))
            .unwrap();
        let est = approx
            .outputs
            .iter()
            .find(|(k, _)| *k == bin)
            .map(|(_, iv)| *iv)
            .expect("big bin present in sample");
        assert!(
            est.actual_error(truth) < 0.15,
            "error {}",
            est.actual_error(truth)
        );
        assert!(est.half_width > 0.0);
    }

    #[test]
    fn wiki_page_rank_top_pages_are_found() {
        let dump = tiny_dump();
        let r = wiki_page_rank(&dump, ApproxSpec::ratios(0.0, 0.2), cfg()).unwrap();
        // Article 0 (rank 1 target) must be among the largest estimates.
        let top = r
            .outputs
            .iter()
            .max_by(|a, b| a.1.estimate.total_cmp(&b.1.estimate))
            .unwrap();
        assert!(
            top.0 < 10,
            "top linked article should be a low rank, got {}",
            top.0
        );
    }

    #[test]
    fn project_popularity_precise_and_approx_agree() {
        let log = tiny_log();
        let precise = project_popularity(&log, ApproxSpec::Precise, cfg()).unwrap();
        let approx = project_popularity(&log, ApproxSpec::ratios(0.25, 0.25), cfg()).unwrap();
        let truth = precise
            .outputs
            .iter()
            .find(|(k, _)| *k == 1)
            .unwrap()
            .1
            .estimate;
        let est = approx.outputs.iter().find(|(k, _)| *k == 1).unwrap().1;
        assert!(
            est.actual_error(truth) < 0.2,
            "error {}",
            est.actual_error(truth)
        );
    }

    #[test]
    fn dept_apps_run_and_bound() {
        let log = tiny_dept();
        let spec = ApproxSpec::ratios(0.25, 0.5);
        let ts = total_size(&log, spec, cfg()).unwrap();
        assert_eq!(ts.outputs.len(), 1);
        assert!(ts.outputs[0].1.half_width.is_finite());

        let rs = request_size(&log, spec, cfg()).unwrap();
        // Mean request size is ~30 KB by construction.
        assert!((10_000.0..50_000.0).contains(&rs.outputs[0].1.estimate));

        let cb = client_browser(&log, spec, cfg()).unwrap();
        assert_eq!(cb.outputs.len(), BROWSERS.len());

        let rr = dept_request_rate(&log, spec, cfg()).unwrap();
        assert!(rr.outputs.len() > 100, "most hours observed");

        let af = attack_frequencies(&log, spec, cfg()).unwrap();
        assert!(!af.outputs.is_empty(), "some attackers observed");
    }

    #[test]
    fn attack_frequencies_has_wider_relative_bounds_than_request_rate() {
        // The paper's point: rare values estimate poorly.
        let log = tiny_dept();
        let spec = ApproxSpec::ratios(0.0, 0.2);
        let rr = dept_request_rate(&log, spec, cfg()).unwrap();
        let af = attack_frequencies(&log, spec, cfg()).unwrap();
        let rr_rel = rr
            .outputs
            .iter()
            .map(|(_, iv)| iv.relative_error())
            .fold(0.0f64, f64::max);
        let af_rel = af
            .outputs
            .iter()
            .map(|(_, iv)| iv.relative_error())
            .fold(0.0f64, f64::max);
        assert!(
            af_rel > rr_rel,
            "attacks rel {af_rel} should exceed rate rel {rr_rel}"
        );
    }

    #[test]
    fn dc_placement_estimates_min() {
        let grid = Grid::us_like(8, 7);
        let cfg_a = AnnealConfig {
            datacenters: 3,
            max_latency_ms: 50.0,
            iterations: 300,
        };
        let r = dc_placement(&grid, &cfg_a, 20, 2, ApproxSpec::Precise, cfg()).unwrap();
        let out = &r.outputs[0];
        assert_eq!(out.samples, 20);
        assert!(out.observed.is_finite());
        if let Some(iv) = out.estimated {
            assert!(iv.estimate <= out.observed * 1.05);
        }
    }

    #[test]
    fn dc_placement_with_dropping_still_bounds() {
        let grid = Grid::us_like(8, 8);
        let cfg_a = AnnealConfig {
            datacenters: 3,
            max_latency_ms: 50.0,
            iterations: 200,
        };
        let r = dc_placement(&grid, &cfg_a, 40, 1, ApproxSpec::ratios(0.5, 1.0), cfg()).unwrap();
        assert_eq!(r.outputs[0].samples, 20);
        assert_eq!(r.metrics.dropped_maps, 20);
    }

    #[test]
    fn video_encoding_quality_tracks_approx_fraction() {
        let precise = video_encoding(16, 8, 2, 0.0, 1, cfg()).unwrap();
        let mixed = video_encoding(16, 8, 2, 0.5, 1, cfg()).unwrap();
        let coarse = video_encoding(16, 8, 2, 1.0, 1, cfg()).unwrap();
        assert_eq!(precise.frames, 16);
        assert_eq!(precise.approx_chunk_fraction, 0.0);
        assert_eq!(coarse.approx_chunk_fraction, 1.0);
        assert!(coarse.coefficients < precise.coefficients);
        assert!(coarse.mean_psnr_db < precise.mean_psnr_db);
        assert!(mixed.mean_psnr_db <= precise.mean_psnr_db);
        assert!(mixed.mean_psnr_db >= coarse.mean_psnr_db);
    }

    #[test]
    fn bytes_per_access_is_a_sane_ratio() {
        let log = tiny_log();
        let precise = bytes_per_access(&log, ApproxSpec::Precise, cfg()).unwrap();
        let truth = precise.outputs.iter().find(|(k, _)| *k == 1).unwrap().1;
        assert!(truth.half_width == 0.0);
        assert!((2_000.0..40_000.0).contains(&truth.estimate));
        let approx = bytes_per_access(&log, ApproxSpec::ratios(0.25, 0.25), cfg()).unwrap();
        let est = approx.outputs.iter().find(|(k, _)| *k == 1).unwrap().1;
        assert!(est.half_width.is_finite() && est.half_width > 0.0);
        assert!(est.actual_error(truth.estimate) < 0.2);
    }

    #[test]
    fn mentions_per_paragraph_three_stage() {
        let dump = tiny_dump();
        // Ground truth directly from the generator.
        let mut total = 0.0f64;
        let mut pairs = 0u64;
        for b in 0..dump.num_blocks() {
            for a in dump.block(b) {
                for m in a.paragraph_mentions() {
                    total += m as f64;
                    pairs += 1;
                }
            }
        }
        let truth = total / pairs as f64;
        let precise = mentions_per_paragraph(&dump, 0.0, 1.0, cfg()).unwrap();
        assert!((precise.outputs[0].1.estimate - truth).abs() < 1e-9);
        let approx = mentions_per_paragraph(&dump, 0.25, 0.25, cfg()).unwrap();
        let iv = approx.outputs[0].1;
        assert!(iv.half_width.is_finite());
        assert!(
            iv.actual_error(truth) < 0.1,
            "err {}",
            iv.actual_error(truth)
        );
    }

    #[test]
    fn kmeans_sampled_tracks_baseline() {
        let data = DocVectors {
            points: 8_000,
            points_per_block: 500,
            dims: 4,
            true_clusters: 4,
            seed: 9,
        };
        let (_, base_inertia) = lloyd_baseline(&data, 4, 5);
        let precise = kmeans(&data, 4, 5, 1.0, cfg()).unwrap();
        assert!(
            (precise.inertia - base_inertia).abs() / base_inertia < 0.05,
            "precise {} vs baseline {base_inertia}",
            precise.inertia
        );
        let sampled = kmeans(&data, 4, 5, 0.2, cfg()).unwrap();
        assert!(sampled.sampling_ratio < 0.25);
        assert!(
            (sampled.inertia - base_inertia).abs() / base_inertia < 0.25,
            "sampled {} vs baseline {base_inertia}",
            sampled.inertia
        );
    }
}
