//! Synthetic departmental web-server log (the paper's Rutgers CS log:
//! 80 weekly files, 40 M requests, 11 GB uncompressed).
//!
//! Two properties matter for Figures 10–12: the hourly request *rate*
//! is stable and diurnal (unlike the Zipf page popularity of the
//! Wikipedia log), and attacks are rare events concentrated on a few
//! clients, which makes Attack Frequencies a stress test for sampling
//! rare values.

use approxhadoop_runtime::input::{FnSource, SplitMeta};
use approxhadoop_stats::sampling::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Known attack patterns scanned for by the Attack Frequencies app.
pub const ATTACK_PATTERNS: [&str; 5] = [
    "php-cgi",
    "wp-admin",
    "etc/passwd",
    "sqlmap",
    "%3Cscript%3E",
];

/// Browser families for the Client Browser app.
pub const BROWSERS: [&str; 6] = ["Chrome", "Firefox", "Safari", "Edge", "Bot", "Other"];

/// One departmental-log request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Week index (one file/block per week, like the paper's layout).
    pub week: u32,
    /// Hour within the week `[0, 168)`.
    pub hour: u32,
    /// Client id.
    pub client: u32,
    /// Response size in bytes.
    pub bytes: u64,
    /// Browser family index into [`BROWSERS`].
    pub browser: u8,
    /// Attack pattern index into [`ATTACK_PATTERNS`], if the request
    /// matches one.
    pub attack: Option<u8>,
}

impl Request {
    /// Renders as one log line.
    pub fn to_line(&self) -> String {
        format!(
            "{} {} {} {} {} {}",
            self.week,
            self.hour,
            self.client,
            self.bytes,
            self.browser,
            self.attack.map(|a| a as i16).unwrap_or(-1)
        )
    }

    /// Parses a line produced by [`Request::to_line`].
    pub fn parse(line: &str) -> Option<Request> {
        let mut it = line.split_whitespace();
        let week = it.next()?.parse().ok()?;
        let hour = it.next()?.parse().ok()?;
        let client = it.next()?.parse().ok()?;
        let bytes = it.next()?.parse().ok()?;
        let browser = it.next()?.parse().ok()?;
        let attack: i16 = it.next()?.parse().ok()?;
        Some(Request {
            week,
            hour,
            client,
            bytes,
            browser,
            attack: (attack >= 0).then_some(attack as u8),
        })
    }
}

/// Deterministic generator of the weekly-blocked departmental log.
#[derive(Debug, Clone, Copy)]
pub struct DeptLog {
    /// Number of weekly files (blocks); the paper has 80.
    pub weeks: u32,
    /// Requests per week.
    pub requests_per_week: u64,
    /// Distinct clients.
    pub clients: u32,
    /// Fraction of requests that are attacks (rare; paper-like ≈ 1e-3).
    pub attack_fraction: f64,
    /// Base RNG seed.
    pub seed: u64,
}

impl DeptLog {
    /// Laptop-scale default: 80 weeks × 5 000 requests.
    pub fn small(seed: u64) -> Self {
        DeptLog {
            weeks: 80,
            requests_per_week: 5_000,
            clients: 20_000,
            attack_fraction: 1e-3,
            seed,
        }
    }

    /// The diurnal weight of an hour-of-week (stable across weeks):
    /// low at night, peaks in the afternoon, slightly lower weekends.
    pub fn hour_weight(hour_of_week: u32) -> f64 {
        let hour = (hour_of_week % 24) as f64;
        let day = hour_of_week / 24;
        let diurnal = 1.0 + 0.25 * ((hour - 14.0) * std::f64::consts::PI / 12.0).cos();
        let weekend = if day >= 5 { 0.8 } else { 1.0 };
        diurnal * weekend
    }

    /// Generates one week's requests; deterministic per week.
    pub fn block(&self, week: u32) -> Vec<Request> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ (week as u64).wrapping_mul(0xC0FF_EE11));
        let clients = Zipf::new(self.clients as u64, 1.1);
        // Attackers are a tiny Zipf-heavy subset of clients.
        let attackers = Zipf::new(50, 1.5);
        // Cumulative hour weights for sampling the request hour.
        let weights: Vec<f64> = (0..168).map(Self::hour_weight).collect();
        let total_w: f64 = weights.iter().sum();
        let mut requests: Vec<Request> = (0..self.requests_per_week)
            .map(|_| {
                let mut u = rng.gen::<f64>() * total_w;
                let mut hour = 0u32;
                for (h, w) in weights.iter().enumerate() {
                    if u < *w {
                        hour = h as u32;
                        break;
                    }
                    u -= w;
                }
                let is_attack = rng.gen::<f64>() < self.attack_fraction;
                let (client, attack) = if is_attack {
                    (
                        attackers.sample(&mut rng) as u32,
                        Some(rng.gen_range(0..ATTACK_PATTERNS.len() as u8)),
                    )
                } else {
                    (clients.sample(&mut rng) as u32, None)
                };
                Request {
                    week,
                    hour,
                    client,
                    bytes: rng.gen_range(200..60_000),
                    browser: rng.gen_range(0..BROWSERS.len() as u8),
                    attack,
                }
            })
            .collect();
        requests.sort_by_key(|r| r.hour);
        requests
    }

    /// An [`FnSource`] with one split per weekly file (matching the
    /// paper: each weekly file fits in a single HDFS block).
    pub fn source(
        &self,
    ) -> FnSource<Request, impl Fn(usize) -> Vec<Request> + Send + Sync + use<>> {
        let this = *self;
        let metas = (0..self.weeks)
            .map(|w| SplitMeta {
                index: w as usize,
                records: this.requests_per_week,
                bytes: this.requests_per_week * 48,
                locations: vec![],
                dataset: Default::default(),
            })
            .collect();
        FnSource::new(metas, move |i| this.block(i as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_deterministic_and_sized() {
        let log = DeptLog::small(1);
        let b = log.block(5);
        assert_eq!(b, log.block(5));
        assert_eq!(b.len(), 5_000);
        assert!(b.iter().all(|r| r.week == 5 && r.hour < 168));
    }

    #[test]
    fn rates_are_diurnal_and_stable() {
        let log = DeptLog::small(2);
        let mut by_hour = [0u32; 24];
        for w in 0..4 {
            for r in log.block(w) {
                by_hour[(r.hour % 24) as usize] += 1;
            }
        }
        // Afternoon busier than the small hours.
        assert!(
            by_hour[14] > by_hour[2],
            "14h {} vs 2h {}",
            by_hour[14],
            by_hour[2]
        );
        // Stability: max/min hourly rate within ~3x (paper: ~33% spread).
        let max = *by_hour.iter().max().unwrap() as f64;
        let min = *by_hour.iter().min().unwrap() as f64;
        assert!(max / min < 2.5, "spread {max}/{min}");
    }

    #[test]
    fn attacks_are_rare_and_concentrated() {
        let log = DeptLog::small(3);
        let mut attacks = 0usize;
        let mut total = 0usize;
        for w in 0..20 {
            for r in log.block(w) {
                total += 1;
                if r.attack.is_some() {
                    attacks += 1;
                    assert!(r.client <= 50, "attacker id {}", r.client);
                }
            }
        }
        let frac = attacks as f64 / total as f64;
        assert!(frac > 1e-4 && frac < 5e-3, "attack fraction {frac}");
    }

    #[test]
    fn line_roundtrip() {
        let r = Request {
            week: 1,
            hour: 100,
            client: 77,
            bytes: 4096,
            browser: 2,
            attack: Some(3),
        };
        assert_eq!(Request::parse(&r.to_line()).unwrap(), r);
        let clean = Request { attack: None, ..r };
        assert_eq!(Request::parse(&clean.to_line()).unwrap(), clean);
    }

    #[test]
    fn hour_weight_shape() {
        assert!(DeptLog::hour_weight(14) > DeptLog::hour_weight(2));
        // Weekend discount.
        assert!(DeptLog::hour_weight(14) > DeptLog::hour_weight(14 + 24 * 6));
    }
}
