//! The application inventory — the paper's Table 1.

/// Approximation mechanisms an application uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mechanisms {
    /// Input data sampling (S).
    pub sampling: bool,
    /// Task dropping (D).
    pub dropping: bool,
    /// User-defined approximation (U).
    pub user_defined: bool,
}

/// How an application's error is estimated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorEstimation {
    /// Multi-stage sampling (MS).
    MultiStage,
    /// Generalized extreme values (GEV).
    Gev,
    /// User-defined (U).
    UserDefined,
}

impl std::fmt::Display for ErrorEstimation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ErrorEstimation::MultiStage => write!(f, "MS"),
            ErrorEstimation::Gev => write!(f, "GEV"),
            ErrorEstimation::UserDefined => write!(f, "U"),
        }
    }
}

/// One row of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppDescriptor {
    /// Application name as used in the paper.
    pub name: &'static str,
    /// Input dataset.
    pub input: &'static str,
    /// Paper's dataset size (for reference).
    pub paper_size: &'static str,
    /// Mechanisms used.
    pub mechanisms: Mechanisms,
    /// Error estimation approach.
    pub error: ErrorEstimation,
}

const SD: Mechanisms = Mechanisms {
    sampling: true,
    dropping: true,
    user_defined: false,
};
const D_ONLY: Mechanisms = Mechanisms {
    sampling: false,
    dropping: true,
    user_defined: false,
};
const U_ONLY: Mechanisms = Mechanisms {
    sampling: false,
    dropping: false,
    user_defined: true,
};

/// The paper's Table 1: every evaluated application.
pub const APPLICATIONS: [AppDescriptor; 14] = [
    AppDescriptor {
        name: "Page Length",
        input: "Wikipedia dump",
        paper_size: "9.8GB (40GB)",
        mechanisms: SD,
        error: ErrorEstimation::MultiStage,
    },
    AppDescriptor {
        name: "Page Rank",
        input: "Wikipedia dump",
        paper_size: "9.8GB (40GB)",
        mechanisms: SD,
        error: ErrorEstimation::MultiStage,
    },
    AppDescriptor {
        name: "Request Rate",
        input: "Wikipedia log",
        paper_size: "46GB (217GB)",
        mechanisms: SD,
        error: ErrorEstimation::MultiStage,
    },
    AppDescriptor {
        name: "Project Popularity",
        input: "Wikipedia log",
        paper_size: "46GB (217GB)",
        mechanisms: SD,
        error: ErrorEstimation::MultiStage,
    },
    AppDescriptor {
        name: "Page Popularity",
        input: "Wikipedia log",
        paper_size: "46GB (217GB)",
        mechanisms: SD,
        error: ErrorEstimation::MultiStage,
    },
    AppDescriptor {
        name: "Page Traffic",
        input: "Wikipedia log",
        paper_size: "46GB (217GB)",
        mechanisms: SD,
        error: ErrorEstimation::MultiStage,
    },
    AppDescriptor {
        name: "Total Size",
        input: "Webserver log",
        paper_size: "330MB (11GB)",
        mechanisms: SD,
        error: ErrorEstimation::MultiStage,
    },
    AppDescriptor {
        name: "Request Size",
        input: "Webserver log",
        paper_size: "330MB (11GB)",
        mechanisms: SD,
        error: ErrorEstimation::MultiStage,
    },
    AppDescriptor {
        name: "Clients",
        input: "Webserver log",
        paper_size: "330MB (11GB)",
        mechanisms: SD,
        error: ErrorEstimation::MultiStage,
    },
    AppDescriptor {
        name: "Client Browser",
        input: "Webserver log",
        paper_size: "330MB (11GB)",
        mechanisms: SD,
        error: ErrorEstimation::MultiStage,
    },
    AppDescriptor {
        name: "Attack Freq",
        input: "Webserver log",
        paper_size: "330MB (11GB)",
        mechanisms: SD,
        error: ErrorEstimation::MultiStage,
    },
    AppDescriptor {
        name: "DC Placement",
        input: "US and Europe grids",
        paper_size: "48KB",
        mechanisms: D_ONLY,
        error: ErrorEstimation::Gev,
    },
    AppDescriptor {
        name: "Video Encoding",
        input: "Movie",
        paper_size: "816MB",
        mechanisms: U_ONLY,
        error: ErrorEstimation::UserDefined,
    },
    AppDescriptor {
        name: "K-Means",
        input: "Apache mail list",
        paper_size: "7.3GB",
        mechanisms: U_ONLY,
        error: ErrorEstimation::UserDefined,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fourteen_applications_like_the_paper() {
        assert_eq!(APPLICATIONS.len(), 14);
    }

    #[test]
    fn mechanisms_match_table1() {
        let dc = APPLICATIONS
            .iter()
            .find(|a| a.name == "DC Placement")
            .unwrap();
        assert!(dc.mechanisms.dropping && !dc.mechanisms.sampling);
        assert_eq!(dc.error, ErrorEstimation::Gev);
        let km = APPLICATIONS.iter().find(|a| a.name == "K-Means").unwrap();
        assert!(km.mechanisms.user_defined);
        assert_eq!(km.error.to_string(), "U");
        let pp = APPLICATIONS
            .iter()
            .find(|a| a.name == "Project Popularity")
            .unwrap();
        assert!(pp.mechanisms.sampling && pp.mechanisms.dropping);
        assert_eq!(pp.error.to_string(), "MS");
    }
}
