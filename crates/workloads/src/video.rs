//! Synthetic video encoding (the paper's 816 MB movie, user-defined
//! approximation).
//!
//! Each map task encodes a chunk of frames with an 8×8 DCT +
//! quantisation codec written from scratch. The *precise* version uses
//! a fine quantiser; the user-supplied *approximate* version quantises
//! coarsely (smaller output, lower PSNR). Quality is the user-defined
//! error metric, exactly as the paper's third mechanism prescribes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One grayscale frame (row-major, `size × size`, values `0..=255`).
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Side length in pixels (multiple of 8).
    pub size: usize,
    /// Pixel values.
    pub pixels: Vec<f64>,
}

impl Frame {
    /// Generates a synthetic frame: smooth gradients plus moving blobs
    /// and film grain, deterministic per `(seed, index)`.
    pub fn synthetic(size: usize, seed: u64, index: u64) -> Frame {
        assert!(
            size.is_multiple_of(8) && size > 0,
            "size must be a positive multiple of 8"
        );
        let mut rng = StdRng::seed_from_u64(seed ^ index.wrapping_mul(0xBAD5_EED5));
        let t = index as f64 * 0.1;
        let mut pixels = Vec::with_capacity(size * size);
        for y in 0..size {
            for x in 0..size {
                let fx = x as f64 / size as f64;
                let fy = y as f64 / size as f64;
                let base = 128.0 + 60.0 * ((fx * 6.0 + t).sin() * (fy * 4.0 - t).cos());
                let blob = 40.0
                    * (-((fx - 0.5 - 0.3 * t.sin()).powi(2) + (fy - 0.5 - 0.3 * t.cos()).powi(2))
                        / 0.02)
                        .exp();
                let grain = rng.gen_range(-4.0..4.0);
                pixels.push((base + blob + grain).clamp(0.0, 255.0));
            }
        }
        Frame { size, pixels }
    }
}

/// The 8×8 type-II DCT of one block (naive O(n⁴), fine at this scale).
fn dct8(block: &[f64; 64]) -> [f64; 64] {
    let mut out = [0.0; 64];
    for u in 0..8 {
        for v in 0..8 {
            let cu = if u == 0 { 1.0 / 2f64.sqrt() } else { 1.0 };
            let cv = if v == 0 { 1.0 / 2f64.sqrt() } else { 1.0 };
            let mut sum = 0.0;
            for y in 0..8 {
                for x in 0..8 {
                    sum += block[y * 8 + x]
                        * ((2 * x + 1) as f64 * u as f64 * std::f64::consts::PI / 16.0).cos()
                        * ((2 * y + 1) as f64 * v as f64 * std::f64::consts::PI / 16.0).cos();
                }
            }
            out[v * 8 + u] = 0.25 * cu * cv * sum;
        }
    }
    out
}

/// The inverse 8×8 DCT.
fn idct8(coefs: &[f64; 64]) -> [f64; 64] {
    let mut out = [0.0; 64];
    for y in 0..8 {
        for x in 0..8 {
            let mut sum = 0.0;
            for u in 0..8 {
                for v in 0..8 {
                    let cu = if u == 0 { 1.0 / 2f64.sqrt() } else { 1.0 };
                    let cv = if v == 0 { 1.0 / 2f64.sqrt() } else { 1.0 };
                    sum += cu
                        * cv
                        * coefs[v * 8 + u]
                        * ((2 * x + 1) as f64 * u as f64 * std::f64::consts::PI / 16.0).cos()
                        * ((2 * y + 1) as f64 * v as f64 * std::f64::consts::PI / 16.0).cos();
                }
            }
            out[y * 8 + x] = 0.25 * sum;
        }
    }
    out
}

/// Result of encoding one frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EncodeStats {
    /// Non-zero quantised coefficients (a proxy for compressed size).
    pub nonzero_coefficients: u64,
    /// Peak signal-to-noise ratio of the reconstruction in dB.
    pub psnr_db: f64,
}

/// Encodes a frame with the given quantisation step (larger = coarser =
/// smaller/worse) and reports size and quality.
pub fn encode_frame(frame: &Frame, quant_step: f64) -> EncodeStats {
    assert!(quant_step > 0.0, "quant_step must be positive");
    let size = frame.size;
    let mut nonzero = 0u64;
    let mut sq_err = 0.0f64;
    for by in (0..size).step_by(8) {
        for bx in (0..size).step_by(8) {
            let mut block = [0.0f64; 64];
            for y in 0..8 {
                for x in 0..8 {
                    block[y * 8 + x] = frame.pixels[(by + y) * size + bx + x];
                }
            }
            let coefs = dct8(&block);
            let mut quantised = [0.0f64; 64];
            for (q, c) in quantised.iter_mut().zip(&coefs) {
                let level = (c / quant_step).round();
                if level != 0.0 {
                    nonzero += 1;
                }
                *q = level * quant_step;
            }
            let recon = idct8(&quantised);
            for i in 0..64 {
                let d = recon[i] - block[i];
                sq_err += d * d;
            }
        }
    }
    let mse = sq_err / (size * size) as f64;
    let psnr_db = if mse <= 1e-12 {
        99.0
    } else {
        10.0 * (255.0f64 * 255.0 / mse).log10()
    };
    EncodeStats {
        nonzero_coefficients: nonzero,
        psnr_db,
    }
}

/// Fine quantisation used by the precise encoder.
pub const PRECISE_QUANT: f64 = 4.0;
/// Coarse quantisation used by the approximate encoder.
pub const APPROX_QUANT: f64 = 24.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dct_roundtrips() {
        let mut block = [0.0f64; 64];
        for (i, b) in block.iter_mut().enumerate() {
            *b = ((i * 37) % 251) as f64;
        }
        let rec = idct8(&dct8(&block));
        for i in 0..64 {
            assert!((rec[i] - block[i]).abs() < 1e-9, "i={i}");
        }
    }

    #[test]
    fn frames_are_deterministic() {
        let a = Frame::synthetic(32, 1, 5);
        let b = Frame::synthetic(32, 1, 5);
        assert_eq!(a, b);
        assert_ne!(a, Frame::synthetic(32, 1, 6));
        assert!(a.pixels.iter().all(|&p| (0.0..=255.0).contains(&p)));
    }

    #[test]
    fn coarser_quantisation_is_smaller_and_worse() {
        let f = Frame::synthetic(64, 2, 0);
        let fine = encode_frame(&f, PRECISE_QUANT);
        let coarse = encode_frame(&f, APPROX_QUANT);
        assert!(coarse.nonzero_coefficients < fine.nonzero_coefficients);
        assert!(coarse.psnr_db < fine.psnr_db);
        assert!(fine.psnr_db > 30.0, "fine PSNR {}", fine.psnr_db);
        assert!(coarse.psnr_db > 15.0, "coarse PSNR {}", coarse.psnr_db);
    }

    #[test]
    #[should_panic]
    fn frame_size_must_be_multiple_of_eight() {
        Frame::synthetic(30, 0, 0);
    }
}
