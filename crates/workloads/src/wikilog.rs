//! Synthetic Wikipedia access log (the paper's 46 GB/week · 12.5 TB/year
//! dataset, Table 2).
//!
//! Each entry is one page access: timestamp, project, page, bytes.
//! Page and project popularity are Zipf-distributed (Figures 5c/5d show
//! power-law popularity), request rates follow a diurnal pattern, and
//! consecutive entries share temporal locality within a block.

use approxhadoop_ipc::{Decoder, Wire, WireError};
use approxhadoop_runtime::input::{FnSource, SplitMeta};
use approxhadoop_stats::sampling::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Names of the most popular projects, by rank (rank 1 = `en`).
pub const PROJECTS: [&str; 12] = [
    "en", "de", "fr", "es", "ja", "ru", "it", "pt", "zh", "pl", "nl", "sv",
];

/// One access-log entry.
#[derive(Debug, Clone, PartialEq)]
pub struct LogEntry {
    /// Seconds since the start of the log.
    pub timestamp: u64,
    /// Project rank (1-based; 1 = most popular). Use
    /// [`LogEntry::project_name`] for a printable name.
    pub project: u64,
    /// Page rank within the catalogue (1-based).
    pub page: u64,
    /// Response size in bytes.
    pub bytes: u64,
}

impl Wire for LogEntry {
    fn encode(&self, out: &mut Vec<u8>) {
        self.timestamp.encode(out);
        self.project.encode(out);
        self.page.encode(out);
        self.bytes.encode(out);
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(LogEntry {
            timestamp: u64::decode(d)?,
            project: u64::decode(d)?,
            page: u64::decode(d)?,
            bytes: u64::decode(d)?,
        })
    }
}

impl LogEntry {
    /// A printable project name (`en`, `de`, …, or `proj<rank>`).
    pub fn project_name(&self) -> String {
        PROJECTS
            .get(self.project as usize - 1)
            .map(|s| s.to_string())
            .unwrap_or_else(|| format!("proj{}", self.project))
    }

    /// Renders as a text line (`ts project page bytes`).
    pub fn to_line(&self) -> String {
        format!(
            "{} {} {} {}",
            self.timestamp, self.project, self.page, self.bytes
        )
    }

    /// Parses a line produced by [`LogEntry::to_line`].
    pub fn parse(line: &str) -> Option<LogEntry> {
        let mut it = line.split_whitespace();
        Some(LogEntry {
            timestamp: it.next()?.parse().ok()?,
            project: it.next()?.parse().ok()?,
            page: it.next()?.parse().ok()?,
            bytes: it.next()?.parse().ok()?,
        })
    }
}

/// Deterministic generator of a blocked access log.
#[derive(Debug, Clone, Copy)]
pub struct WikiLog {
    /// Days covered by the log.
    pub days: u64,
    /// Entries per block; a block covers a contiguous time slice.
    pub entries_per_block: u64,
    /// Blocks per day (`#Maps = days × blocks_per_day`, the analogue of
    /// Table 2's block counts).
    pub blocks_per_day: u64,
    /// Distinct pages in the catalogue.
    pub pages: u64,
    /// Distinct projects.
    pub projects: u64,
    /// Base RNG seed.
    pub seed: u64,
}

impl WikiLog {
    /// Laptop-scale one-week log: 92 blocks/day scaled down to 10, with
    /// 5 000 entries per block.
    pub fn week(seed: u64) -> Self {
        WikiLog {
            days: 7,
            entries_per_block: 5_000,
            blocks_per_day: 10,
            pages: 1_000_000,
            projects: 2_640,
            seed,
        }
    }

    /// Total blocks (map tasks).
    pub fn num_blocks(&self) -> u64 {
        self.days * self.blocks_per_day
    }

    /// Total entries.
    pub fn total_entries(&self) -> u64 {
        self.num_blocks() * self.entries_per_block
    }

    /// Generates one block of entries (a contiguous time slice of one
    /// day); deterministic per block.
    pub fn block(&self, block: u64) -> Vec<LogEntry> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ block.wrapping_mul(0xA24B_AED4));
        let day = block / self.blocks_per_day;
        let slice = block % self.blocks_per_day;
        let slice_secs = 86_400 / self.blocks_per_day;
        let base_ts = day * 86_400 + slice * slice_secs;
        let pages = Zipf::new(self.pages, 1.01);
        let projects = Zipf::new(self.projects, 1.3);
        (0..self.entries_per_block)
            .map(|i| {
                let ts = base_ts + i * slice_secs / self.entries_per_block;
                // Diurnal modulation of response sizes is irrelevant; the
                // diurnal *rate* is captured by the per-hour key downstream.
                let page = pages.sample(&mut rng);
                let project = projects.sample(&mut rng);
                let bytes = 2_000 + rng.gen_range(0..30_000) / (1 + page / 1000);
                LogEntry {
                    timestamp: ts,
                    project,
                    page,
                    bytes,
                }
            })
            .collect()
    }

    /// An [`FnSource`] over the blocked log.
    pub fn source(
        &self,
    ) -> FnSource<LogEntry, impl Fn(usize) -> Vec<LogEntry> + Send + Sync + use<>> {
        let this = *self;
        let metas = (0..self.num_blocks())
            .map(|b| SplitMeta {
                index: b as usize,
                records: this.entries_per_block,
                bytes: this.entries_per_block * 64,
                locations: vec![],
                dataset: Default::default(),
            })
            .collect();
        FnSource::new(metas, move |i| this.block(i as u64))
    }
}

/// One row of the paper's Table 2: log sizes for different periods.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogPeriod {
    /// Human-readable period name.
    pub name: &'static str,
    /// Days covered.
    pub days: u64,
    /// Accesses (entries), in millions.
    pub accesses_millions: f64,
    /// Compressed size in GB (what HDFS stores; blocks are 64 MB of
    /// compressed data).
    pub compressed_gb: f64,
    /// Uncompressed size in GB.
    pub uncompressed_gb: f64,
}

impl LogPeriod {
    /// Map tasks for this period: one per 64 MB compressed block
    /// (Table 2's `#Maps` column follows this rule, e.g. 5.7 GB → 92).
    pub fn num_maps(&self) -> u64 {
        (self.compressed_gb * 1024.0 / 64.0).ceil() as u64
    }

    /// Records per map (entries spread over the blocks).
    pub fn records_per_map(&self) -> u64 {
        ((self.accesses_millions * 1e6) / self.num_maps() as f64).round() as u64
    }
}

/// The paper's Table 2 (Wikipedia access log, year 2013).
pub const LOG_PERIODS: [LogPeriod; 10] = [
    LogPeriod {
        name: "1 day",
        days: 1,
        accesses_millions: 499.0,
        compressed_gb: 5.7,
        uncompressed_gb: 27.0,
    },
    LogPeriod {
        name: "2 days",
        days: 2,
        accesses_millions: 1_100.0,
        compressed_gb: 12.4,
        uncompressed_gb: 58.7,
    },
    LogPeriod {
        name: "5 days",
        days: 5,
        accesses_millions: 2_800.0,
        compressed_gb: 32.1,
        uncompressed_gb: 151.0,
    },
    LogPeriod {
        name: "1 week",
        days: 7,
        accesses_millions: 4_000.0,
        compressed_gb: 46.0,
        uncompressed_gb: 216.9,
    },
    LogPeriod {
        name: "10 days",
        days: 10,
        accesses_millions: 5_900.0,
        compressed_gb: 67.5,
        uncompressed_gb: 318.0,
    },
    LogPeriod {
        name: "2 weeks",
        days: 14,
        accesses_millions: 9_000.0,
        compressed_gb: 103.2,
        uncompressed_gb: 487.0,
    },
    LogPeriod {
        name: "1 month",
        days: 31,
        accesses_millions: 19_400.0,
        compressed_gb: 219.0,
        uncompressed_gb: 1_024.0,
    },
    LogPeriod {
        name: "3 months",
        days: 92,
        accesses_millions: 55_800.0,
        compressed_gb: 628.0,
        uncompressed_gb: 2_969.6,
    },
    LogPeriod {
        name: "6 months",
        days: 183,
        accesses_millions: 109_200.0,
        compressed_gb: 1_228.8,
        uncompressed_gb: 5_836.8,
    },
    LogPeriod {
        name: "1 year",
        days: 365,
        accesses_millions: 234_200.0,
        compressed_gb: 2_355.2,
        uncompressed_gb: 12_800.0,
    },
];

#[cfg(test)]
mod tests {
    use super::*;
    use approxhadoop_runtime::input::InputSource;
    use std::collections::HashMap;

    #[test]
    fn blocks_are_deterministic_and_time_ordered() {
        let log = WikiLog::week(1);
        let b = log.block(3);
        assert_eq!(b, log.block(3));
        assert_eq!(b.len(), 5_000);
        assert!(b.windows(2).all(|w| w[0].timestamp <= w[1].timestamp));
        // Block 3 of day 0 covers its own slice.
        let slice_secs = 86_400 / log.blocks_per_day;
        assert!(b[0].timestamp >= 3 * slice_secs);
        assert!(b.last().unwrap().timestamp < 4 * slice_secs);
    }

    #[test]
    fn popularity_is_zipf_like() {
        let log = WikiLog::week(2);
        let mut project_counts: HashMap<u64, u32> = HashMap::new();
        for b in 0..10 {
            for e in log.block(b) {
                *project_counts.entry(e.project).or_default() += 1;
            }
        }
        let top = project_counts.get(&1).copied().unwrap_or(0);
        let tenth = project_counts.get(&10).copied().unwrap_or(0);
        assert!(top > tenth * 3, "top {top} vs tenth {tenth}");
    }

    #[test]
    fn line_roundtrip() {
        let e = LogEntry {
            timestamp: 123,
            project: 1,
            page: 42,
            bytes: 2048,
        };
        assert_eq!(LogEntry::parse(&e.to_line()).unwrap(), e);
        assert_eq!(e.project_name(), "en");
        assert!(LogEntry::parse("x y").is_none());
    }

    #[test]
    fn source_counts() {
        let log = WikiLog {
            days: 2,
            entries_per_block: 100,
            blocks_per_day: 3,
            pages: 1000,
            projects: 50,
            seed: 5,
        };
        let src = log.source();
        assert_eq!(src.splits().len(), 6);
        assert_eq!(src.read_split(5, 1.0, 0).unwrap().total, 100);
        assert_eq!(log.total_entries(), 600);
    }

    #[test]
    fn table2_map_counts_match_paper() {
        // The paper reports 92 maps for 1 day and 736 for 1 week.
        assert_eq!(LOG_PERIODS[0].num_maps(), 92);
        let week = &LOG_PERIODS[3];
        assert!(
            (730..=740).contains(&week.num_maps()),
            "{}",
            week.num_maps()
        );
        // Monotone growth.
        for w in LOG_PERIODS.windows(2) {
            assert!(w[1].num_maps() > w[0].num_maps());
        }
    }
}
