//! Datacenter placement by simulated annealing (the paper's DC
//! Placement application, after the heuristic of Goiri et al., ICDCS'11).
//!
//! A geographic area is a 2-D grid; each cell has a client population
//! and a build/operate cost. The optimisation places `k` datacenters
//! minimising total cost, subject to a maximum network latency from
//! every populated cell to its nearest datacenter. Each map task runs
//! one independent annealing search from a random start and outputs the
//! minimum cost it found; the reduce estimates the global minimum with
//! GEV (paper Figure 2).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A geographic grid of candidate datacenter sites.
#[derive(Debug, Clone)]
pub struct Grid {
    /// Cells per side (the grid is `side × side`).
    pub side: usize,
    /// Client population per cell.
    pub population: Vec<f64>,
    /// Site cost per cell (land + electricity + taxes).
    pub cost: Vec<f64>,
    /// Latency per cell of grid distance, in milliseconds.
    pub ms_per_cell: f64,
}

impl Grid {
    /// A synthetic "US-like" grid: a few population hot spots (metro
    /// areas) with costs loosely anti-correlated with population.
    pub fn us_like(side: usize, seed: u64) -> Self {
        assert!(side >= 4, "grid must be at least 4×4");
        let mut rng = StdRng::seed_from_u64(seed);
        let hotspots: Vec<(f64, f64, f64)> = (0..6)
            .map(|_| {
                (
                    rng.gen_range(0.0..side as f64),
                    rng.gen_range(0.0..side as f64),
                    rng.gen_range(0.5..2.0),
                )
            })
            .collect();
        let mut population = vec![0.0; side * side];
        let mut cost = vec![0.0; side * side];
        for y in 0..side {
            for x in 0..side {
                let mut p = 0.05;
                for (hx, hy, w) in &hotspots {
                    let d2 = (x as f64 - hx).powi(2) + (y as f64 - hy).powi(2);
                    p += w * (-d2 / (side as f64)).exp();
                }
                population[y * side + x] = p;
                // Dense areas are expensive; add noise.
                cost[y * side + x] = 10.0 + 20.0 * p + rng.gen_range(0.0..15.0);
            }
        }
        Grid {
            side,
            population,
            cost,
            ms_per_cell: 4.0,
        }
    }

    /// A synthetic "Europe-like" grid: denser, more uniform population
    /// (many mid-size cities), higher site costs, shorter distances.
    pub fn europe_like(side: usize, seed: u64) -> Self {
        assert!(side >= 4, "grid must be at least 4×4");
        let mut rng = StdRng::seed_from_u64(seed ^ 0xE0_0E);
        let hotspots: Vec<(f64, f64, f64)> = (0..12)
            .map(|_| {
                (
                    rng.gen_range(0.0..side as f64),
                    rng.gen_range(0.0..side as f64),
                    rng.gen_range(0.3..1.0),
                )
            })
            .collect();
        let mut population = vec![0.0; side * side];
        let mut cost = vec![0.0; side * side];
        for y in 0..side {
            for x in 0..side {
                let mut p = 0.15;
                for (hx, hy, w) in &hotspots {
                    let d2 = (x as f64 - hx).powi(2) + (y as f64 - hy).powi(2);
                    p += w * (-d2 / (side as f64 * 0.5)).exp();
                }
                population[y * side + x] = p;
                cost[y * side + x] = 18.0 + 25.0 * p + rng.gen_range(0.0..10.0);
            }
        }
        Grid {
            side,
            population,
            cost,
            ms_per_cell: 2.5,
        }
    }

    /// Grid distance (Euclidean, in cells) between two cell indices.
    fn distance(&self, a: usize, b: usize) -> f64 {
        let (ax, ay) = ((a % self.side) as f64, (a / self.side) as f64);
        let (bx, by) = ((b % self.side) as f64, (b / self.side) as f64);
        ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt()
    }

    /// Total cost of a placement: site costs, plus a large penalty per
    /// population unit whose latency to the nearest datacenter exceeds
    /// `max_latency_ms` (soft constraint, as in the original heuristic).
    pub fn placement_cost(&self, placement: &[usize], max_latency_ms: f64) -> f64 {
        let mut total: f64 = placement.iter().map(|&c| self.cost[c]).sum();
        for cell in 0..self.side * self.side {
            let pop = self.population[cell];
            if pop <= 0.0 {
                continue;
            }
            let nearest = placement
                .iter()
                .map(|&p| self.distance(cell, p))
                .fold(f64::INFINITY, f64::min);
            let latency = nearest * self.ms_per_cell;
            if latency > max_latency_ms {
                total += pop * (latency - max_latency_ms) * 2.0;
            }
        }
        total
    }
}

/// Configuration of one annealing search.
#[derive(Debug, Clone, Copy)]
pub struct AnnealConfig {
    /// Datacenters to place.
    pub datacenters: usize,
    /// Maximum latency constraint in milliseconds.
    pub max_latency_ms: f64,
    /// Annealing iterations.
    pub iterations: usize,
}

impl Default for AnnealConfig {
    fn default() -> Self {
        AnnealConfig {
            datacenters: 4,
            max_latency_ms: 50.0,
            iterations: 2_000,
        }
    }
}

/// Runs one simulated-annealing search from a random start; returns the
/// minimum cost found. Deterministic per seed.
pub fn anneal(grid: &Grid, config: &AnnealConfig, seed: u64) -> f64 {
    let cells = grid.side * grid.side;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut placement: Vec<usize> = (0..config.datacenters)
        .map(|_| rng.gen_range(0..cells))
        .collect();
    let mut cost = grid.placement_cost(&placement, config.max_latency_ms);
    let mut best = cost;
    let t0 = cost.max(1.0);
    for i in 0..config.iterations {
        let temp = t0 * (1.0 - i as f64 / config.iterations as f64).max(1e-3) * 0.1;
        // Move one datacenter to a random neighbouring (or random) cell.
        let which = rng.gen_range(0..placement.len());
        let old = placement[which];
        placement[which] = if rng.gen_bool(0.7) {
            // local move
            let dx = rng.gen_range(-1i64..=1);
            let dy = rng.gen_range(-1i64..=1);
            let x = (old % grid.side) as i64 + dx;
            let y = (old / grid.side) as i64 + dy;
            if x < 0 || y < 0 || x >= grid.side as i64 || y >= grid.side as i64 {
                old
            } else {
                (y as usize) * grid.side + x as usize
            }
        } else {
            rng.gen_range(0..cells)
        };
        let new_cost = grid.placement_cost(&placement, config.max_latency_ms);
        let accept = new_cost <= cost || rng.gen::<f64>() < ((cost - new_cost) / temp).exp();
        if accept {
            cost = new_cost;
            best = best.min(cost);
        } else {
            placement[which] = old;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_construction() {
        let g = Grid::us_like(10, 1);
        assert_eq!(g.population.len(), 100);
        assert!(g.population.iter().all(|&p| p > 0.0));
        assert!(g.cost.iter().all(|&c| c >= 10.0));
    }

    #[test]
    fn europe_grid_is_denser_and_pricier() {
        let us = Grid::us_like(10, 1);
        let eu = Grid::europe_like(10, 1);
        let mean = |v: &Vec<f64>| v.iter().sum::<f64>() / v.len() as f64;
        assert!(mean(&eu.cost) > mean(&us.cost));
        assert!(eu.ms_per_cell < us.ms_per_cell);
        // Baseline population is at least the construction floor.
        assert!(eu.population.iter().all(|&p| p >= 0.15));
    }

    #[test]
    fn placement_cost_penalises_distance() {
        let g = Grid::us_like(10, 2);
        // All datacenters in one corner vs spread out.
        let corner = vec![0, 1, 10, 11];
        let spread = vec![0, 9, 90, 99];
        let tight = 10.0;
        let c_corner = g.placement_cost(&corner, tight);
        let c_spread = g.placement_cost(&spread, tight);
        assert!(
            c_spread < c_corner,
            "spread {c_spread} should beat corner {c_corner} under tight latency"
        );
    }

    #[test]
    fn anneal_improves_over_random_start() {
        let g = Grid::us_like(12, 3);
        let cfg = AnnealConfig::default();
        let mut rng = StdRng::seed_from_u64(99);
        // Average random placement cost.
        let random_costs: f64 = (0..20)
            .map(|_| {
                let p: Vec<usize> = (0..cfg.datacenters)
                    .map(|_| rng.gen_range(0..144))
                    .collect();
                g.placement_cost(&p, cfg.max_latency_ms)
            })
            .sum::<f64>()
            / 20.0;
        let annealed = anneal(&g, &cfg, 7);
        assert!(
            annealed < random_costs,
            "annealed {annealed} vs random {random_costs}"
        );
    }

    #[test]
    fn anneal_is_deterministic_per_seed() {
        let g = Grid::us_like(8, 4);
        let cfg = AnnealConfig {
            iterations: 500,
            ..Default::default()
        };
        assert_eq!(anneal(&g, &cfg, 5), anneal(&g, &cfg, 5));
        // Different seeds explore differently (almost surely).
        assert_ne!(anneal(&g, &cfg, 5), anneal(&g, &cfg, 6));
    }

    #[test]
    fn more_iterations_do_not_hurt() {
        let g = Grid::us_like(8, 5);
        let short = anneal(
            &g,
            &AnnealConfig {
                iterations: 100,
                ..Default::default()
            },
            1,
        );
        let long = anneal(
            &g,
            &AnnealConfig {
                iterations: 5_000,
                ..Default::default()
            },
            1,
        );
        assert!(long <= short * 1.05, "long {long} vs short {short}");
    }
}
