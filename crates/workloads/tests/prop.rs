//! Property-based tests for the workload generators: determinism,
//! format round-trips, and structural invariants.

use approxhadoop_workloads::dcgrid::{anneal, AnnealConfig, Grid};
use approxhadoop_workloads::deptlog::{DeptLog, Request};
use approxhadoop_workloads::kmeans::DocVectors;
use approxhadoop_workloads::video::{encode_frame, Frame};
use approxhadoop_workloads::wikidump::{Article, WikiDump};
use approxhadoop_workloads::wikilog::{LogEntry, WikiLog};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Dump blocks: deterministic, correct sizes, ids dense and global.
    #[test]
    fn wikidump_block_invariants(
        articles in 10u64..5_000,
        per_block in 1u64..500,
        seed in 0u64..50,
    ) {
        let dump = WikiDump { articles, articles_per_block: per_block, seed };
        let blocks = dump.num_blocks();
        prop_assert_eq!(blocks, articles.div_ceil(per_block));
        let mut seen = 0u64;
        for b in 0..blocks {
            let block = dump.block(b);
            prop_assert_eq!(&block, &dump.block(b));
            for a in &block {
                prop_assert_eq!(a.id, seen);
                seen += 1;
                prop_assert!(a.length >= 64);
                prop_assert!(a.links.iter().all(|&l| l < articles));
            }
        }
        prop_assert_eq!(seen, articles);
    }

    /// Article / log-entry / request text codecs round-trip.
    #[test]
    fn line_codecs_roundtrip(
        id in 0u64..1_000_000,
        length in 0u64..1_000_000,
        links in prop::collection::vec(0u64..1_000_000, 0..20),
        ts in 0u64..10_000_000,
        proj in 1u64..3_000,
        page in 1u64..10_000_000,
        bytes in 0u64..100_000,
    ) {
        let a = Article { id, length, links };
        let parsed_a = Article::parse(&a.to_line());
        prop_assert_eq!(parsed_a, Some(a));
        let e = LogEntry { timestamp: ts, project: proj, page, bytes };
        let parsed_e = LogEntry::parse(&e.to_line());
        prop_assert_eq!(parsed_e, Some(e));
        let r = Request {
            week: (id % 100) as u32,
            hour: (ts % 168) as u32,
            client: (page % 10_000) as u32,
            bytes,
            browser: (proj % 6) as u8,
            attack: if id % 7 == 0 { Some((id % 5) as u8) } else { None },
        };
        let parsed_r = Request::parse(&r.to_line());
        prop_assert_eq!(parsed_r, Some(r));
    }

    /// Log blocks cover their time slice and are deterministic.
    #[test]
    fn wikilog_block_invariants(
        days in 1u64..5,
        blocks_per_day in 1u64..8,
        entries in 10u64..300,
        seed in 0u64..30,
    ) {
        let log = WikiLog {
            days,
            entries_per_block: entries,
            blocks_per_day,
            pages: 1_000,
            projects: 50,
            seed,
        };
        let slice = 86_400 / blocks_per_day;
        for b in 0..log.num_blocks() {
            let block = log.block(b);
            prop_assert_eq!(block.len() as u64, entries);
            prop_assert_eq!(&block, &log.block(b));
            let day = b / blocks_per_day;
            let idx = b % blocks_per_day;
            let lo = day * 86_400 + idx * slice;
            for e in &block {
                prop_assert!(e.timestamp >= lo && e.timestamp < lo + slice);
                prop_assert!(e.project >= 1 && e.project <= 50);
                prop_assert!(e.page >= 1 && e.page <= 1_000);
            }
        }
    }

    /// Departmental log invariants: hours in range, deterministic,
    /// attacks only from the attacker pool.
    #[test]
    fn deptlog_block_invariants(weeks in 1u32..10, requests in 10u64..500, seed in 0u64..30) {
        let log = DeptLog {
            weeks,
            requests_per_week: requests,
            clients: 500,
            attack_fraction: 0.01,
            seed,
        };
        for w in 0..weeks {
            let block = log.block(w);
            prop_assert_eq!(block.len() as u64, requests);
            prop_assert_eq!(&block, &log.block(w));
            for r in &block {
                prop_assert!(r.hour < 168);
                prop_assert_eq!(r.week, w);
                if r.attack.is_some() {
                    prop_assert!(r.client <= 50);
                }
            }
        }
    }

    /// Annealing never returns a cost below the best possible placement
    /// cost floor (the cheapest k cells) and is deterministic.
    #[test]
    fn anneal_invariants(side in 4usize..10, seed in 0u64..20, grid_seed in 0u64..20) {
        let grid = Grid::us_like(side, grid_seed);
        let cfg = AnnealConfig {
            datacenters: 2,
            max_latency_ms: 1000.0, // effectively unconstrained
            iterations: 200,
        };
        let cost = anneal(&grid, &cfg, seed);
        prop_assert_eq!(cost, anneal(&grid, &cfg, seed));
        // Floor: datacenters may share a cell, so the absolute floor is
        // twice the cheapest site cost (latency unconstrained).
        let cheapest = grid.cost.iter().copied().fold(f64::INFINITY, f64::min);
        let floor = 2.0 * cheapest;
        prop_assert!(cost >= floor - 1e-9, "cost {cost} below floor {floor}");
    }

    /// Encoding: monotone in the quantisation step (coarser is never
    /// larger in size) and PSNR stays positive.
    #[test]
    fn encode_monotone_in_quantisation(seed in 0u64..20, idx in 0u64..20) {
        let frame = Frame::synthetic(16, seed, idx);
        let fine = encode_frame(&frame, 2.0);
        let coarse = encode_frame(&frame, 32.0);
        prop_assert!(coarse.nonzero_coefficients <= fine.nonzero_coefficients);
        prop_assert!(fine.psnr_db > 0.0 && coarse.psnr_db > 0.0);
        prop_assert!(fine.psnr_db >= coarse.psnr_db - 1e-9);
    }

    /// Document vectors: deterministic blocks, all points near some true
    /// centre.
    #[test]
    fn docvectors_points_near_centres(seed in 0u64..30) {
        let d = DocVectors {
            points: 500,
            points_per_block: 100,
            dims: 3,
            true_clusters: 4,
            seed,
        };
        let centres = d.true_centres();
        for b in 0..d.num_blocks() {
            for p in d.block(b) {
                let nearest = centres
                    .iter()
                    .map(|c| approxhadoop_workloads::kmeans::dist_sq(&p, c))
                    .fold(f64::INFINITY, f64::min);
                // Noise is ±1.5 per dim → max squared distance 3·2.25.
                prop_assert!(nearest <= 3.0 * 2.25 + 1e-9);
            }
        }
    }
}
