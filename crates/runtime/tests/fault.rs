//! Fault-tolerance integration tests: injected map faults, bounded
//! retry, degrade-to-drop, the degraded-job error budget, and retry
//! events on the pool scheduler.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use approxhadoop_runtime::engine::{run_job, run_job_on_pool, JobConfig};
use approxhadoop_runtime::event::{JobEvent, JobId, JobSession};
use approxhadoop_runtime::fault::{FaultPlan, FaultPolicy};
use approxhadoop_runtime::input::VecSource;
use approxhadoop_runtime::mapper::{FnMapper, MapTaskContext, Mapper};
use approxhadoop_runtime::metrics::TaskOutcome;
use approxhadoop_runtime::pool::SlotPool;
use approxhadoop_runtime::reducer::{GroupedReducer, MapOutputMeta, ReduceContext, Reducer};
use approxhadoop_runtime::{FixedCoordinator, RuntimeError, TaskId};

fn blocks(n: usize) -> Vec<Vec<u64>> {
    (0..n).map(|b| vec![b as u64, b as u64]).collect()
}

fn sum_mapper() -> impl Mapper<Item = u64, Key = u8, Value = u64> {
    FnMapper::new(|v: &u64, emit: &mut dyn FnMut(u8, u64)| emit(0, *v))
}

fn sum_reducer() -> impl Reducer<Key = u8, Value = u64, Output = u64> {
    GroupedReducer::new(|_: &u8, vs: &[u64]| Some(vs.iter().sum::<u64>()))
}

fn expected_sum(n: usize) -> u64 {
    (0..n as u64).map(|b| 2 * b).sum()
}

/// A mapper whose first attempt of every task panics; retries succeed.
struct FirstAttemptPanics {
    attempts: AtomicUsize,
}

impl Mapper for FirstAttemptPanics {
    type Item = u64;
    type Key = u8;
    type Value = u64;
    type TaskState = ();

    fn begin_task(&self, ctx: &MapTaskContext) -> Self::TaskState {
        self.attempts.fetch_add(1, Ordering::SeqCst);
        if ctx.attempt == 0 {
            panic!("transient failure on attempt 0 of {}", ctx.task);
        }
    }

    fn map(&self, _state: &mut (), item: u64, emit: &mut dyn FnMut(u8, u64)) {
        emit(0, item);
    }
}

#[test]
fn panicking_mapper_is_retried_until_it_succeeds() {
    let n = 6;
    let mapper = FirstAttemptPanics {
        attempts: AtomicUsize::new(0),
    };
    let result = run_job(
        &VecSource::new(blocks(n)),
        &mapper,
        |_| sum_reducer(),
        JobConfig {
            map_slots: 3,
            fault_policy: FaultPolicy::tolerant(2),
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(result.outputs, vec![expected_sum(n)]);
    let m = &result.metrics;
    assert_eq!(m.executed_maps, n);
    assert_eq!(m.failed_maps, n, "every task fails exactly once");
    assert_eq!(m.retried_maps, n);
    assert_eq!(m.degraded_to_drop, 0);
    assert_eq!(m.killed_maps, 0, "failures must never count as kills");
    assert!(m
        .task_outcomes
        .iter()
        .all(|r| r.outcome == TaskOutcome::Completed));
    assert_eq!(mapper.attempts.load(Ordering::SeqCst), 2 * n);
}

#[test]
fn injected_io_faults_clear_on_retry() {
    let n = 12;
    let plan = FaultPlan::parse("io=0.3,seed=42").unwrap();
    let result = run_job(
        &VecSource::new(blocks(n)),
        &sum_mapper(),
        |_| sum_reducer(),
        JobConfig {
            map_slots: 4,
            servers: 2,
            fault_plan: Some(plan),
            fault_policy: FaultPolicy::tolerant(10),
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(result.outputs, vec![expected_sum(n)], "retries recover");
    let m = &result.metrics;
    assert_eq!(m.executed_maps, n);
    assert!(m.failed_maps > 0, "the plan must actually inject faults");
    assert_eq!(m.failed_maps, m.retried_maps);
    assert_eq!(m.degraded_to_drop, 0);
    assert_eq!(m.killed_maps, 0);
}

#[test]
fn retry_exhaustion_degrades_to_drop_and_job_completes() {
    // Every attempt of every task fails: with degrade-to-drop the job
    // still completes, recording each task as Failed (never Killed).
    let n = 5;
    let plan = FaultPlan {
        map_io_error_prob: 1.0,
        ..Default::default()
    };
    let result = run_job(
        &VecSource::new(blocks(n)),
        &sum_mapper(),
        |_| sum_reducer(),
        JobConfig {
            map_slots: 2,
            fault_plan: Some(plan),
            fault_policy: FaultPolicy::tolerant(1),
            ..Default::default()
        },
    )
    .unwrap();
    let m = &result.metrics;
    assert_eq!(m.executed_maps, 0);
    assert_eq!(m.degraded_to_drop, n);
    assert_eq!(m.failed_maps, 2 * n, "initial attempt + one retry each");
    assert_eq!(m.retried_maps, n);
    assert_eq!(m.killed_maps, 0);
    assert!(m
        .task_outcomes
        .iter()
        .all(|r| r.outcome == TaskOutcome::Failed));
    assert!((m.drop_fraction() - 1.0).abs() < 1e-12);
}

#[test]
fn default_policy_still_fails_fast_with_the_task_error() {
    let plan = FaultPlan {
        map_io_error_prob: 1.0,
        ..Default::default()
    };
    let err = run_job(
        &VecSource::new(blocks(4)),
        &sum_mapper(),
        |_| sum_reducer(),
        JobConfig {
            map_slots: 2,
            fault_plan: Some(plan),
            ..Default::default()
        },
    )
    .unwrap_err();
    assert!(
        matches!(err, RuntimeError::InjectedFault { .. }),
        "expected the injected fault to surface, got: {err}"
    );
}

#[test]
fn job_config_validation_rejects_bad_fault_settings() {
    for sf in [0.5, f64::NAN, f64::INFINITY] {
        let err = run_job(
            &VecSource::new(blocks(2)),
            &sum_mapper(),
            |_| sum_reducer(),
            JobConfig {
                straggler_factor: sf,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, RuntimeError::InvalidJob { .. }), "sf={sf}");
    }
    let err = run_job(
        &VecSource::new(blocks(2)),
        &sum_mapper(),
        |_| sum_reducer(),
        JobConfig {
            fault_policy: FaultPolicy {
                max_degraded_bound: Some(f64::NAN),
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .unwrap_err();
    assert!(matches!(err, RuntimeError::InvalidJob { .. }));
}

/// A reducer that reports a bound proportional to the dropped-map
/// fraction it has seen — a miniature of the paper's CI widening.
struct DropBoundReducer {
    dropped: usize,
    sum: u64,
}

impl Reducer for DropBoundReducer {
    type Key = u8;
    type Value = u64;
    type Output = u64;

    fn on_map_output(
        &mut self,
        _meta: &MapOutputMeta,
        pairs: Vec<(u8, u64)>,
        ctx: &mut ReduceContext,
    ) {
        self.sum += pairs.into_iter().map(|(_, v)| v).sum::<u64>();
        let bound = self.dropped as f64 / ctx.total_maps() as f64;
        ctx.report_bound(bound);
    }

    fn on_map_dropped(&mut self, _task: TaskId, ctx: &mut ReduceContext) {
        self.dropped += 1;
        let bound = self.dropped as f64 / ctx.total_maps() as f64;
        ctx.report_bound(bound);
    }

    fn finish(&mut self, _ctx: &mut ReduceContext) -> Vec<u64> {
        vec![self.sum]
    }
}

#[test]
fn degraded_job_over_its_error_budget_fails_with_a_structured_error() {
    let n = 8;
    let plan = FaultPlan {
        map_io_error_prob: 1.0,
        ..Default::default()
    };
    let make_reducer = |_| DropBoundReducer { dropped: 0, sum: 0 };
    let config = |bound: Option<f64>| JobConfig {
        map_slots: 2,
        fault_plan: Some(plan.clone()),
        fault_policy: FaultPolicy {
            max_degraded_bound: bound,
            ..FaultPolicy::tolerant(0)
        },
        ..Default::default()
    };
    // Without a budget the fully degraded job completes.
    let ok = run_job(
        &VecSource::new(blocks(n)),
        &sum_mapper(),
        make_reducer,
        config(None),
    )
    .unwrap();
    assert_eq!(ok.metrics.degraded_to_drop, n);
    // With a budget tighter than the widened bound, it must fail,
    // naming the bound and the limit.
    let err = run_job(
        &VecSource::new(blocks(n)),
        &sum_mapper(),
        make_reducer,
        config(Some(0.25)),
    )
    .unwrap_err();
    match err {
        RuntimeError::DegradeBudgetExceeded {
            worst_bound,
            limit,
            degraded_maps,
        } => {
            assert!((worst_bound - 1.0).abs() < 1e-12, "all maps degraded");
            assert_eq!(limit, 0.25);
            assert_eq!(degraded_maps, n);
        }
        other => panic!("expected DegradeBudgetExceeded, got: {other}"),
    }
    // A budget exactly at the widened bound passes (the limit is
    // inclusive).
    let ok = run_job(
        &VecSource::new(blocks(n)),
        &sum_mapper(),
        make_reducer,
        config(Some(1.0)),
    )
    .unwrap();
    assert_eq!(ok.metrics.degraded_to_drop, n);
}

#[test]
fn pool_job_retries_and_streams_retry_events() {
    let n = 12;
    let pool = SlotPool::new(4);
    let tenant = pool.register_tenant(1.0);
    let (tx, rx) = crossbeam::channel::unbounded();
    let session = JobSession::new(JobId(1)).with_events(tx);
    let mut coordinator = FixedCoordinator::new(n, 1.0, 0.0, 0);
    let result = run_job_on_pool(
        Arc::new(VecSource::new(blocks(n))),
        Arc::new(sum_mapper()),
        |_| sum_reducer(),
        JobConfig {
            map_slots: 4,
            fault_plan: Some(FaultPlan::parse("io=0.3,seed=42").unwrap()),
            fault_policy: FaultPolicy::tolerant(10),
            ..Default::default()
        },
        &mut coordinator,
        &pool,
        tenant,
        &session,
    )
    .unwrap();
    pool.unregister_tenant(tenant);
    assert_eq!(result.outputs, vec![expected_sum(n)]);
    let m = &result.metrics;
    assert!(m.failed_maps > 0);
    assert_eq!(m.failed_maps, m.retried_maps);
    assert_eq!(m.killed_maps, 0);
    let retries = rx
        .try_iter()
        .filter(|e| matches!(e, JobEvent::TaskRetry { .. }))
        .count();
    assert_eq!(retries, m.retried_maps, "one TaskRetry event per retry");
}

#[test]
fn three_seed_fault_matrix_completes_without_fatal_errors() {
    // Acceptance criterion: per-attempt failure probability 0.2 (io +
    // panic combined), retries enabled — every seed completes with zero
    // fatal errors and no task recorded as Killed.
    let n = 15;
    for seed in [1u64, 2, 3] {
        let plan = FaultPlan::parse(&format!("io=0.15,panic=0.05,seed={seed}")).unwrap();
        let result = run_job(
            &VecSource::new(blocks(n)),
            &sum_mapper(),
            |_| sum_reducer(),
            JobConfig {
                map_slots: 4,
                servers: 2,
                seed,
                fault_plan: Some(plan),
                fault_policy: FaultPolicy::tolerant(4),
                ..Default::default()
            },
        )
        .unwrap_or_else(|e| panic!("seed {seed} must complete, got: {e}"));
        let m = &result.metrics;
        assert_eq!(m.executed_maps + m.degraded_to_drop, n, "seed {seed}");
        assert_eq!(m.killed_maps, 0, "seed {seed}");
        assert!(
            m.task_outcomes
                .iter()
                .all(|r| r.outcome != TaskOutcome::Killed),
            "seed {seed}: no task may be recorded as Killed"
        );
    }
}
