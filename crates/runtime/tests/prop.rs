//! Property-based tests for the MapReduce engine: the parallel engine
//! must agree with a sequential reference execution for arbitrary
//! inputs and configurations.

use std::collections::HashMap;

use approxhadoop_runtime::combine::{Combined, SumCombiner};
use approxhadoop_runtime::engine::{run_job, JobConfig};
use approxhadoop_runtime::input::VecSource;
use approxhadoop_runtime::mapper::FnMapper;
use approxhadoop_runtime::reducer::GroupedReducer;
use proptest::prelude::*;

fn blocks_strategy() -> impl Strategy<Value = Vec<Vec<u32>>> {
    prop::collection::vec(prop::collection::vec(0u32..50, 0..30), 1..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Precise parallel execution equals the sequential reference, for
    /// any input, slot count, and reducer count.
    #[test]
    fn parallel_equals_sequential(
        blocks in blocks_strategy(),
        map_slots in 1usize..6,
        reduce_tasks in 1usize..5,
        seed in 0u64..100,
    ) {
        // Sequential reference: count occurrences mod 7.
        let mut expected: HashMap<u32, u64> = HashMap::new();
        for v in blocks.iter().flatten() {
            *expected.entry(v % 7).or_default() += 1;
        }

        let input = VecSource::new(blocks);
        let mapper = FnMapper::new(|v: &u32, emit: &mut dyn FnMut(u32, u64)| emit(v % 7, 1));
        let result = run_job(
            &input,
            &mapper,
            |_| GroupedReducer::new(|k: &u32, vs: &[u64]| Some((*k, vs.iter().sum::<u64>()))),
            JobConfig { map_slots, reduce_tasks, seed, ..Default::default() },
        )
        .unwrap();
        let got: HashMap<u32, u64> = result.outputs.into_iter().collect();
        prop_assert_eq!(got, expected);
    }

    /// Drop ratios drop exactly `floor(ratio × n)` tasks and the job
    /// always terminates with consistent accounting.
    #[test]
    fn drop_accounting_is_exact(
        num_blocks in 1usize..40,
        drop_pct in 0u32..100,
        seed in 0u64..50,
    ) {
        let drop_ratio = drop_pct as f64 / 100.0;
        prop_assume!(drop_ratio < 1.0);
        let blocks: Vec<Vec<u32>> = (0..num_blocks).map(|i| vec![i as u32]).collect();
        let input = VecSource::new(blocks);
        let mapper = FnMapper::new(|v: &u32, emit: &mut dyn FnMut(u8, u32)| emit(0, *v));
        let result = run_job(
            &input,
            &mapper,
            |_| GroupedReducer::new(|_: &u8, vs: &[u32]| Some(vs.len())),
            JobConfig { drop_ratio, seed, ..Default::default() },
        )
        .unwrap();
        let expected_drops = (drop_ratio * num_blocks as f64).floor() as usize;
        prop_assert_eq!(result.metrics.dropped_maps, expected_drops);
        prop_assert_eq!(result.metrics.executed_maps, num_blocks - expected_drops);
        prop_assert_eq!(
            result.metrics.executed_maps + result.metrics.dropped_maps,
            result.metrics.total_maps
        );
    }

    /// Results are reproducible: the same seed yields identical outputs
    /// even with sampling and multiple reducers.
    #[test]
    fn same_seed_same_result(
        blocks in blocks_strategy(),
        seed in 0u64..100,
    ) {
        let run_once = |blocks: Vec<Vec<u32>>| {
            let input = VecSource::new(blocks);
            let mapper = FnMapper::new(|v: &u32, emit: &mut dyn FnMut(u32, u64)| emit(*v, 1));
            let mut out = run_job(
                &input,
                &mapper,
                |_| GroupedReducer::new(|k: &u32, vs: &[u64]| Some((*k, vs.len()))),
                JobConfig {
                    sampling_ratio: 0.5,
                    drop_ratio: 0.25,
                    reduce_tasks: 3,
                    seed,
                    ..Default::default()
                },
            )
            .unwrap()
            .outputs;
            out.sort();
            out
        };
        prop_assert_eq!(run_once(blocks.clone()), run_once(blocks));
    }

    /// Sampling never processes more records than exist and reports
    /// consistent `m ≤ M` per the metrics.
    #[test]
    fn sampling_counts_are_consistent(
        blocks in blocks_strategy(),
        sample_pct in 1u32..=100,
    ) {
        let total: u64 = blocks.iter().map(|b| b.len() as u64).sum();
        let input = VecSource::new(blocks);
        let mapper = FnMapper::new(|v: &u32, emit: &mut dyn FnMut(u8, u32)| emit(0, *v));
        let result = run_job(
            &input,
            &mapper,
            |_| GroupedReducer::new(|_: &u8, vs: &[u32]| Some(vs.len())),
            JobConfig {
                sampling_ratio: sample_pct as f64 / 100.0,
                ..Default::default()
            },
        )
        .unwrap();
        prop_assert_eq!(result.metrics.total_records, total);
        prop_assert!(result.metrics.sampled_records <= total);
        if sample_pct == 100 {
            prop_assert_eq!(result.metrics.sampled_records, total);
        }
        for s in &result.metrics.map_stats {
            prop_assert!(s.sampled_records <= s.total_records);
        }
    }

    /// Map-side combining never changes the job's output — the combined
    /// run folds `(word, 1)` pairs into per-task partial sums, the
    /// uncombined run ships every pair, and both must agree with the
    /// sequential reference while the combined shuffle is never larger.
    #[test]
    fn combining_preserves_grouped_counts(
        blocks in blocks_strategy(),
        map_slots in 1usize..6,
        reduce_tasks in 1usize..5,
        seed in 0u64..50,
    ) {
        let run = |combining: bool| {
            let input = VecSource::new(blocks.clone());
            let mapper = Combined::new(
                FnMapper::new(|v: &u32, emit: &mut dyn FnMut(u32, u64)| emit(v % 7, 1)),
                SumCombiner,
            );
            run_job(
                &input,
                &mapper,
                |_| GroupedReducer::new(|k: &u32, vs: &[u64]| Some((*k, vs.iter().sum::<u64>()))),
                JobConfig { combining, map_slots, reduce_tasks, seed, ..Default::default() },
            )
            .unwrap()
        };
        let with = run(true);
        let without = run(false);

        let mut expected: HashMap<u32, u64> = HashMap::new();
        for v in blocks.iter().flatten() {
            *expected.entry(v % 7).or_default() += 1;
        }
        let got_with: HashMap<u32, u64> = with.outputs.into_iter().collect();
        let got_without: HashMap<u32, u64> = without.outputs.into_iter().collect();
        prop_assert_eq!(&got_with, &expected);
        prop_assert_eq!(&got_without, &expected);

        // Accounting: pre-combine emission counts match, the combined
        // shuffle is no larger, and without combining nothing shrinks.
        prop_assert_eq!(with.metrics.emitted_pairs, without.metrics.emitted_pairs);
        prop_assert!(with.metrics.shuffled_pairs <= with.metrics.emitted_pairs);
        prop_assert_eq!(without.metrics.shuffled_pairs, without.metrics.emitted_pairs);
        // At most 7 distinct keys leave each executed map task.
        let max_pairs = 7 * with.metrics.executed_maps as u64;
        prop_assert!(with.metrics.shuffled_pairs <= max_pairs);
    }
}
