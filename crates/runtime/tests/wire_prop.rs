//! Property tests for the process backend's frame protocol: every
//! `ToWorker`/`FromWorker` frame — including fault-plan and sampling
//! payloads — round-trips bit-exactly, and truncated or corrupted
//! frames are rejected instead of mis-decoding.

use std::time::Duration;

use approxhadoop_ipc::{Wire, WireError};
use approxhadoop_runtime::engine::process::wire::{
    FromWorker, ToWorker, WireJobError, WireMapStats, WireWorkItem, WorkerJobSpec,
};
use approxhadoop_runtime::FaultPlan;
use proptest::prelude::*;

/// Builds the sampling-and-faults work item the strategies below vary.
#[allow(clippy::too_many_arguments)]
fn work_item(
    task: u64,
    dataset: u32,
    attempt: u32,
    ratio: f64,
    seed: u64,
    combining: bool,
    with_fault: bool,
    fault_seed: u64,
    dead: Vec<usize>,
) -> WireWorkItem {
    WireWorkItem {
        task,
        dataset,
        attempt,
        sampling_ratio: ratio,
        seed,
        combining,
        span: seed ^ task,
        fault: with_fault.then(|| FaultPlan {
            seed: fault_seed,
            map_panic_prob: 0.125,
            map_io_error_prob: 0.25,
            dead_datanodes: dead,
            replica_error_prob: 0.0625,
            slow_replica_prob: 0.5,
            slow_replica_delay: Duration::from_millis(fault_seed % 500),
        }),
    }
}

/// Decoding must either succeed or return a structured `WireError` —
/// never panic, never allocate absurdly.
fn decodes_cleanly<T: Wire>(bytes: &[u8]) -> bool {
    match T::from_bytes(bytes) {
        Ok(_) => true,
        Err(WireError::Truncated { .. }) | Err(WireError::Corrupt { .. }) => true,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn work_frames_roundtrip(task in 0u64..1_000_000,
                             dataset in 0u32..8,
                             attempt in 0u32..16,
                             ratio in 0.001..1.0f64,
                             seed in 0u64..u64::MAX,
                             combining in 0u8..2,
                             with_fault in 0u8..2,
                             fault_seed in 0u64..u64::MAX,
                             dead in prop::collection::vec(0usize..64, 0..6)) {
        let w = work_item(task, dataset, attempt, ratio, seed, combining == 1, with_fault == 1, fault_seed, dead);
        let frame = ToWorker::Work(w.clone()).to_bytes();
        let back = ToWorker::from_bytes(&frame).unwrap();
        match back {
            ToWorker::Work(got) => {
                prop_assert_eq!(got.task, w.task);
                prop_assert_eq!(got.dataset, w.dataset);
                prop_assert_eq!(got.attempt, w.attempt);
                prop_assert_eq!(got.sampling_ratio.to_bits(), w.sampling_ratio.to_bits());
                prop_assert_eq!(got.seed, w.seed);
                prop_assert_eq!(got.combining, w.combining);
                prop_assert_eq!(got.span, w.span);
                prop_assert_eq!(got.fault, w.fault);
            }
            other => prop_assert!(false, "decoded a different frame kind: {:?}", other),
        }
    }

    #[test]
    fn work_frame_truncations_are_rejected(task in 0u64..1000,
                                           dataset in 0u32..4,
                                           ratio in 0.001..1.0f64,
                                           with_fault in 0u8..2,
                                           dead in prop::collection::vec(0usize..8, 0..4)) {
        let w = work_item(task, dataset, 1, ratio, 7, true, with_fault == 1, 42, dead);
        let frame = ToWorker::Work(w).to_bytes();
        for cut in 0..frame.len() {
            prop_assert!(
                ToWorker::from_bytes(&frame[..cut]).is_err(),
                "truncation at {} of {} decoded", cut, frame.len()
            );
        }
    }

    #[test]
    fn output_frames_roundtrip(task in 0u64..1_000_000,
                               attempt in 0u32..8,
                               partition in 0u32..64,
                               pairs in prop::collection::vec(0u8..255, 0..256)) {
        let f = FromWorker::Output { task, attempt, partition, pairs };
        prop_assert_eq!(FromWorker::from_bytes(&f.to_bytes()).unwrap(), f);
    }

    #[test]
    fn done_frames_roundtrip_sampling_counts(task in 0u64..1_000_000,
                                             dataset in 0u32..8,
                                             total in 0u64..1_000_000,
                                             sampled in 0u64..1_000_000,
                                             spill_runs in 0u64..100,
                                             spill_bytes in 0u64..1_000_000_000) {
        let f = FromWorker::Done {
            attempt: 3,
            stats: WireMapStats {
                task,
                dataset,
                total_records: total,
                sampled_records: sampled,
                emitted: sampled * 2,
                shuffled: sampled,
                duration_secs: 0.25,
                read_secs: 0.125,
            },
            spill_runs,
            spill_bytes,
        };
        prop_assert_eq!(FromWorker::from_bytes(&f.to_bytes()).unwrap(), f);
    }

    #[test]
    fn error_frames_roundtrip(kind in 0u8..3, what in "[a-z0-9 ()_]{0,48}") {
        let f = FromWorker::Failed {
            task: 12,
            attempt: 2,
            error: WireJobError { kind, what: what.clone() },
        };
        let back = FromWorker::from_bytes(&f.to_bytes()).unwrap();
        prop_assert_eq!(back, f);
    }

    #[test]
    fn job_spec_roundtrips(job in "[a-z0-9-]{1,24}",
                           params in prop::collection::vec(0u8..255, 0..64),
                           spool in "[a-z0-9/._-]{1,48}",
                           reducers in 1u32..64,
                           budget in 1u64..1_000_000_000,
                           label in "[a-z0-9_]{0,16}",
                           datasets in prop::collection::vec((0u32..8, 1u64..1000), 0..4)) {
        let spec = WorkerJobSpec {
            job,
            params,
            spool,
            num_reducers: reducers,
            shuffle_mem_bytes: budget,
            spill_dir: "/tmp/spill".to_string(),
            telemetry_label: label,
            datasets,
        };
        let frame = ToWorker::Job(spec.clone()).to_bytes();
        prop_assert_eq!(ToWorker::from_bytes(&frame).unwrap(), ToWorker::Job(spec));
    }

    #[test]
    fn job_spec_truncations_are_rejected(datasets in prop::collection::vec((0u32..8, 1u64..1000), 1..4)) {
        let spec = WorkerJobSpec {
            job: "join".to_string(),
            params: vec![1, 2, 3],
            spool: "/tmp/spool".to_string(),
            num_reducers: 4,
            shuffle_mem_bytes: 1 << 20,
            spill_dir: "/tmp/spill".to_string(),
            telemetry_label: String::new(),
            datasets,
        };
        let frame = ToWorker::Job(spec).to_bytes();
        for cut in 0..frame.len() {
            prop_assert!(ToWorker::from_bytes(&frame[..cut]).is_err());
        }
    }

    #[test]
    fn telemetry_frames_roundtrip(task in 0u64..1_000_000,
                                  attempt in 0u32..8,
                                  counters in prop::collection::vec((0u8..8, 0u8..3, 0u64..1_000_000), 0..6),
                                  spans in prop::collection::vec((0u8..8, 0u64..10_000_000, 1u64..10_000_000), 0..6)) {
        let counters: Vec<_> = counters
            .into_iter()
            .map(|(name, labels, delta)| {
                (
                    format!("approx_counter_{name}_total"),
                    (0..labels)
                        .map(|l| (format!("label{l}"), format!("value{l}")))
                        .collect::<Vec<_>>(),
                    delta,
                )
            })
            .collect();
        let spans: Vec<_> = spans
            .into_iter()
            .map(|(name, rel_ts, dur)| (format!("span {name}"), "worker".to_string(), rel_ts, dur))
            .collect();
        let f = FromWorker::Telemetry { task, attempt, counters, spans };
        prop_assert_eq!(FromWorker::from_bytes(&f.to_bytes()).unwrap(), f);
    }

    #[test]
    fn telemetry_truncations_and_corruptions_are_rejected(
            delta in 0u64..1_000_000,
            flip in prop::collection::vec(0usize..4096, 1..8)) {
        let f = FromWorker::Telemetry {
            task: 9,
            attempt: 1,
            counters: vec![(
                "approx_worker_records_total".to_string(),
                vec![("job".to_string(), "job_0001".to_string())],
                delta,
            )],
            spans: vec![("read block".to_string(), "worker".to_string(), 10, 250)],
        };
        let frame = f.to_bytes();
        for cut in 0..frame.len() {
            prop_assert!(FromWorker::from_bytes(&frame[..cut]).is_err());
        }
        let mut bad = frame.clone();
        for fbit in flip {
            let bit = fbit % (bad.len() * 8);
            bad[bit / 8] ^= 1 << (bit % 8);
        }
        prop_assert!(decodes_cleanly::<FromWorker>(&bad));
    }

    #[test]
    fn corrupted_frames_never_panic(seed in 0u64..u64::MAX,
                                    flip in prop::collection::vec(0usize..4096, 1..8)) {
        // Corrupt a valid Work frame at arbitrary bit positions; both
        // frame directions must fail structurally or decode to
        // something — never panic.
        let w = work_item(seed % 100, (seed % 4) as u32, 0, 0.5, seed, true, true, seed, vec![1, 2]);
        let mut frame = ToWorker::Work(w).to_bytes();
        for f in flip {
            let bit = f % (frame.len() * 8);
            frame[bit / 8] ^= 1 << (bit % 8);
        }
        prop_assert!(decodes_cleanly::<ToWorker>(&frame));
        prop_assert!(decodes_cleanly::<FromWorker>(&frame));
    }

    #[test]
    fn from_worker_truncations_are_rejected(pairs in prop::collection::vec(0u8..255, 1..64)) {
        let f = FromWorker::Output { task: 3, attempt: 1, partition: 0, pairs };
        let frame = f.to_bytes();
        for cut in 0..frame.len() {
            prop_assert!(FromWorker::from_bytes(&frame[..cut]).is_err());
        }
    }
}
