//! Differential proof that the three executor backends are one
//! scheduler.
//!
//! The same job — same input, same seed, same coordinator policy, same
//! injected faults — is run on job-private task-tracker threads
//! (`run_job_with_session`), on a shared [`SlotPool`]
//! (`run_job_on_pool`), and on worker OS processes
//! (`run_job_process`). Because the unified `JobTracker` owns every
//! scheduling decision and the configuration below makes execution
//! serial (one slot, one server, zero retry backoff), the runs must
//! produce **byte-identical** `JobEvent` streams, identical outputs,
//! and identical task-level metrics. Any divergence means a scheduling
//! decision leaked into a backend.

use std::sync::Arc;
use std::time::Duration;

use approxhadoop_runtime::engine::{
    run_job_on_pool, run_job_process, run_job_with_session, JobConfig, JobResult, WorkerSpec,
};
use approxhadoop_runtime::input::{BoxedSource, DatasetId, InputSource, TaggedSource, VecSource};
use approxhadoop_runtime::mapper::{FnMapper, MapTaskContext, MultiMapper, TaggedMapper};
use approxhadoop_runtime::pool::SlotPool;
use approxhadoop_runtime::reducer::GroupedReducer;
use approxhadoop_runtime::{
    DatasetFixedCoordinator, DatasetRatios, FaultPlan, FaultPolicy, FixedCoordinator, JobEvent,
    JobId, JobSession,
};

/// The worker binary holding this suite's registered jobs, built by
/// cargo alongside the test.
fn worker_bin() -> &'static str {
    env!("CARGO_BIN_EXE_approx-worker-rt")
}

fn blocks() -> Vec<Vec<u32>> {
    (0..24)
        .map(|b| (0..60).map(|i| b * 60 + i).collect())
        .collect()
}

/// Serial, fully deterministic configuration: one slot on one server
/// (so message arrival order is the completion order), zero backoff (so
/// retries redispatch immediately regardless of wall time), sampling and
/// dropping engaged, and seeded io-fault injection exercising the
/// retry → degrade path.
fn config(seed: u64) -> JobConfig {
    JobConfig {
        map_slots: 1,
        servers: 1,
        reduce_tasks: 2,
        sampling_ratio: 0.5,
        drop_ratio: 0.2,
        seed,
        fault_plan: Some(FaultPlan {
            seed,
            map_io_error_prob: 0.15,
            ..Default::default()
        }),
        fault_policy: FaultPolicy {
            max_task_retries: 2,
            retry_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            degrade_to_drop: true,
            blacklist_after: 0,
            ..Default::default()
        },
        ..Default::default()
    }
}

struct Run {
    result: JobResult<(u8, u64)>,
    events: Vec<JobEvent>,
}

fn run_scoped_backend(seed: u64) -> Run {
    let input = VecSource::new(blocks());
    let mapper = FnMapper::new(|v: &u32, emit: &mut dyn FnMut(u8, u64)| emit((*v % 8) as u8, 1));
    let cfg = config(seed);
    let mut coordinator = FixedCoordinator::new(24, cfg.sampling_ratio, cfg.drop_ratio, cfg.seed);
    let (tx, rx) = crossbeam::channel::unbounded();
    let session = JobSession::new(JobId(7)).with_events(tx);
    let result = run_job_with_session(
        &input,
        &mapper,
        |_| GroupedReducer::new(|k: &u8, vs: &[u64]| Some((*k, vs.iter().sum::<u64>()))),
        cfg,
        &mut coordinator,
        &session,
    )
    .unwrap();
    drop(session);
    Run {
        result,
        events: rx.try_iter().collect(),
    }
}

fn run_pool_backend(seed: u64) -> Run {
    let cfg = config(seed);
    let mut coordinator = FixedCoordinator::new(24, cfg.sampling_ratio, cfg.drop_ratio, cfg.seed);
    let pool = SlotPool::new(1);
    let tenant = pool.register_tenant(1.0);
    let (tx, rx) = crossbeam::channel::unbounded();
    let session = JobSession::new(JobId(7)).with_events(tx);
    let result = run_job_on_pool(
        Arc::new(VecSource::new(blocks())),
        Arc::new(FnMapper::new(|v: &u32, emit: &mut dyn FnMut(u8, u64)| {
            emit((*v % 8) as u8, 1)
        })),
        |_| GroupedReducer::new(|k: &u8, vs: &[u64]| Some((*k, vs.iter().sum::<u64>()))),
        cfg,
        &mut coordinator,
        &pool,
        tenant,
        &session,
    )
    .unwrap();
    drop(session);
    pool.unregister_tenant(tenant);
    Run {
        result,
        events: rx.try_iter().collect(),
    }
}

fn run_process_backend(seed: u64) -> Run {
    let input = VecSource::new(blocks());
    let spec = WorkerSpec::new(worker_bin(), "mod8-count");
    let cfg = JobConfig {
        workers: 1,
        ..config(seed)
    };
    let mut coordinator = FixedCoordinator::new(24, cfg.sampling_ratio, cfg.drop_ratio, cfg.seed);
    let (tx, rx) = crossbeam::channel::unbounded();
    let session = JobSession::new(JobId(7)).with_events(tx);
    let result = run_job_process(
        &input,
        &spec,
        |_| GroupedReducer::new(|k: &u8, vs: &[u64]| Some((*k, vs.iter().sum::<u64>()))),
        cfg,
        &mut coordinator,
        &session,
    )
    .unwrap();
    drop(session);
    Run {
        result,
        events: rx.try_iter().collect(),
    }
}

/// Asserts two backends produced byte-identical event streams, outputs
/// and task accounting for one seed.
fn assert_runs_identical(seed: u64, a: &Run, b: &Run, pair: &str) {
    // Byte-identical lifecycle event streams.
    assert_eq!(
        a.events, b.events,
        "seed {seed} [{pair}]: JobEvent streams diverged between backends"
    );
    assert_eq!(
        format!("{:?}", a.events),
        format!("{:?}", b.events),
        "seed {seed} [{pair}]: rendered event streams diverged"
    );
    assert!(
        !a.events.is_empty(),
        "seed {seed} [{pair}]: the job must stream at least one wave"
    );

    // Identical reduce outputs.
    let mut oa = a.result.outputs.clone();
    let mut ob = b.result.outputs.clone();
    oa.sort();
    ob.sort();
    assert_eq!(oa, ob, "seed {seed} [{pair}]: outputs diverged");

    // Identical task-level accounting (everything but wall time).
    let (ma, mb) = (&a.result.metrics, &b.result.metrics);
    assert_eq!(ma.total_maps, mb.total_maps, "seed {seed} [{pair}]");
    assert_eq!(ma.executed_maps, mb.executed_maps, "seed {seed} [{pair}]");
    assert_eq!(ma.dropped_maps, mb.dropped_maps, "seed {seed} [{pair}]");
    assert_eq!(ma.killed_maps, mb.killed_maps, "seed {seed} [{pair}]");
    assert_eq!(ma.failed_maps, mb.failed_maps, "seed {seed} [{pair}]");
    assert_eq!(ma.retried_maps, mb.retried_maps, "seed {seed} [{pair}]");
    assert_eq!(
        ma.degraded_to_drop, mb.degraded_to_drop,
        "seed {seed} [{pair}]"
    );
    assert_eq!(ma.local_maps, mb.local_maps, "seed {seed} [{pair}]");
    assert_eq!(
        format!("{:?}", ma.task_outcomes),
        format!("{:?}", mb.task_outcomes),
        "seed {seed} [{pair}]: per-task terminal states diverged"
    );

    // Identical per-attempt sampling/shuffle accounting (timings
    // excluded — they are the only legitimately nondeterministic
    // fields).
    let key = |m: &approxhadoop_runtime::metrics::MapStats| {
        (
            m.task,
            m.total_records,
            m.sampled_records,
            m.emitted,
            m.shuffled,
        )
    };
    let sa: Vec<_> = ma.map_stats.iter().map(key).collect();
    let sb: Vec<_> = mb.map_stats.iter().map(key).collect();
    assert_eq!(
        sa, sb,
        "seed {seed} [{pair}]: map attempt statistics diverged"
    );
}

#[test]
fn event_streams_and_metrics_are_identical_across_backends() {
    for seed in [3u64, 17, 42] {
        let a = run_scoped_backend(seed);
        let b = run_pool_backend(seed);
        let c = run_process_backend(seed);
        assert_runs_identical(seed, &a, &b, "scoped vs pool");
        assert_runs_identical(seed, &a, &c, "scoped vs process");

        // The config exercised the interesting paths.
        let ma = &a.result.metrics;
        assert!(ma.dropped_maps > 0, "seed {seed}: drop path not exercised");
        assert!(
            ma.retried_maps > 0 || ma.degraded_to_drop > 0,
            "seed {seed}: fault path not exercised"
        );
    }
}

/// The tagged two-dataset differential's mapper: fact rows (dataset 0)
/// count one event each, dimension rows (any other dataset) contribute a
/// small deterministic weight, so the reduce output is sensitive to both
/// the tags and the per-dataset sampling decisions.
///
/// Must stay byte-for-byte in sync with the copy registered as
/// `tagged-weigh` in the `approx-worker-rt` binary.
struct TagWeigh;

impl MultiMapper for TagWeigh {
    type Item = u32;
    type Key = u8;
    type Value = u64;
    type TaskState = ();

    fn begin_task(&self, _ctx: &MapTaskContext) -> Self::TaskState {}

    fn map(&self, _state: &mut (), dataset: DatasetId, item: u32, emit: &mut dyn FnMut(u8, u64)) {
        match dataset.0 {
            0 => emit((item % 8) as u8, 1),
            _ => emit((item % 8) as u8, 1_000 + u64::from(item % 7)),
        }
    }
}

/// Two datasets with disjoint value ranges: 16 fact clusters of 40 rows
/// and 4 dimension clusters of 25 rows, flattened by [`TaggedSource`]
/// into one 20-split job (fact splits 0..16, dimension splits 16..20).
fn tagged_input() -> TaggedSource<u32> {
    let fact: Vec<Vec<u32>> = (0..16u32)
        .map(|b| (0..40).map(|i| b * 40 + i).collect())
        .collect();
    let dim: Vec<Vec<u32>> = (0..4u32)
        .map(|b| (0..25).map(|i| 9_000 + b * 25 + i).collect())
        .collect();
    TaggedSource::try_new(vec![
        Box::new(VecSource::new(fact)) as BoxedSource<u32>,
        Box::new(VecSource::new(dim)),
    ])
    .unwrap()
}

/// Fact side sampled and droppable, dimension side precise — the ratio
/// shape every join-style job uses.
fn tagged_ratios() -> [DatasetRatios; 2] {
    [
        DatasetRatios {
            sampling_ratio: 0.5,
            drop_ratio: 0.25,
        },
        DatasetRatios::precise(),
    ]
}

fn tagged_coordinator(seed: u64) -> DatasetFixedCoordinator {
    DatasetFixedCoordinator::new(&tagged_input().splits(), &tagged_ratios(), seed).unwrap()
}

fn run_tagged_scoped(seed: u64) -> Run {
    let input = tagged_input();
    let mapper = TaggedMapper::new(TagWeigh);
    let cfg = config(seed);
    let mut coordinator = tagged_coordinator(seed);
    let (tx, rx) = crossbeam::channel::unbounded();
    let session = JobSession::new(JobId(9)).with_events(tx);
    let result = run_job_with_session(
        &input,
        &mapper,
        |_| GroupedReducer::new(|k: &u8, vs: &[u64]| Some((*k, vs.iter().sum::<u64>()))),
        cfg,
        &mut coordinator,
        &session,
    )
    .unwrap();
    drop(session);
    Run {
        result,
        events: rx.try_iter().collect(),
    }
}

fn run_tagged_pool(seed: u64) -> Run {
    let cfg = config(seed);
    let mut coordinator = tagged_coordinator(seed);
    let pool = SlotPool::new(1);
    let tenant = pool.register_tenant(1.0);
    let (tx, rx) = crossbeam::channel::unbounded();
    let session = JobSession::new(JobId(9)).with_events(tx);
    let result = run_job_on_pool(
        Arc::new(tagged_input()),
        Arc::new(TaggedMapper::new(TagWeigh)),
        |_| GroupedReducer::new(|k: &u8, vs: &[u64]| Some((*k, vs.iter().sum::<u64>()))),
        cfg,
        &mut coordinator,
        &pool,
        tenant,
        &session,
    )
    .unwrap();
    drop(session);
    pool.unregister_tenant(tenant);
    Run {
        result,
        events: rx.try_iter().collect(),
    }
}

fn run_tagged_process(seed: u64) -> Run {
    let input = tagged_input();
    let spec = WorkerSpec::new(worker_bin(), "tagged-weigh");
    let cfg = JobConfig {
        workers: 1,
        ..config(seed)
    };
    let mut coordinator = tagged_coordinator(seed);
    let (tx, rx) = crossbeam::channel::unbounded();
    let session = JobSession::new(JobId(9)).with_events(tx);
    let result = run_job_process(
        &input,
        &spec,
        |_| GroupedReducer::new(|k: &u8, vs: &[u64]| Some((*k, vs.iter().sum::<u64>()))),
        cfg,
        &mut coordinator,
        &session,
    )
    .unwrap();
    drop(session);
    Run {
        result,
        events: rx.try_iter().collect(),
    }
}

/// The multi-input differential: a tagged two-dataset job — sampled fact
/// side, precise dimension side, seeded io faults — must be
/// byte-identical across the scoped, pooled and process backends, and
/// the per-dataset ratios must actually bite (fact clusters dropped,
/// dimension clusters never).
#[test]
fn tagged_two_dataset_runs_are_identical_across_backends() {
    let n_fact = 16usize;
    for seed in [5u64, 19, 73] {
        let a = run_tagged_scoped(seed);
        let b = run_tagged_pool(seed);
        let c = run_tagged_process(seed);
        assert_runs_identical(seed, &a, &b, "tagged scoped vs pool");
        assert_runs_identical(seed, &a, &c, "tagged scoped vs process");

        let ma = &a.result.metrics;
        assert_eq!(ma.total_maps, 20, "seed {seed}: 16 fact + 4 dim splits");
        assert!(
            ma.dropped_maps > 0,
            "seed {seed}: fact-side drop path not exercised"
        );
        // Dropping is confined to the sampled dataset: the precise
        // dimension splits (global indices 16..20) are never dropped by
        // the coordinator; only fault degradation may take one out, and
        // then identically on every backend (checked above).
        for rec in &ma.task_outcomes {
            if rec.task.0 >= n_fact {
                assert_ne!(
                    rec.outcome,
                    approxhadoop_runtime::metrics::TaskOutcome::Dropped,
                    "seed {seed}: precise dimension split {} was drop-scheduled",
                    rec.task.0
                );
            }
        }
        // Fact-side sampling engaged: some attempt read fewer records
        // than its split holds.
        assert!(
            ma.map_stats
                .iter()
                .any(|m| m.sampled_records < m.total_records),
            "seed {seed}: sampling never engaged"
        );
    }
}

/// The same differential without faults, checking the common path and
/// that wave progress events agree even when the job is precise.
#[test]
fn precise_runs_agree_exactly() {
    let input = VecSource::new(blocks());
    let mapper = FnMapper::new(|v: &u32, emit: &mut dyn FnMut(u8, u64)| emit(0, *v as u64));
    let cfg = JobConfig {
        map_slots: 1,
        servers: 1,
        ..Default::default()
    };
    let mut c1 = FixedCoordinator::new(24, 1.0, 0.0, cfg.seed);
    let (tx1, rx1) = crossbeam::channel::unbounded();
    let s1 = JobSession::new(JobId(7)).with_events(tx1);
    let a = run_job_with_session(
        &input,
        &mapper,
        |_| GroupedReducer::new(|_: &u8, vs: &[u64]| Some(vs.len())),
        cfg.clone(),
        &mut c1,
        &s1,
    )
    .unwrap();
    drop(s1);

    let pool = SlotPool::new(1);
    let tenant = pool.register_tenant(1.0);
    let mut c2 = FixedCoordinator::new(24, 1.0, 0.0, cfg.seed);
    let (tx2, rx2) = crossbeam::channel::unbounded();
    let s2 = JobSession::new(JobId(7)).with_events(tx2);
    let b = run_job_on_pool(
        Arc::new(VecSource::new(blocks())),
        Arc::new(FnMapper::new(|v: &u32, emit: &mut dyn FnMut(u8, u64)| {
            emit(0, *v as u64)
        })),
        |_| GroupedReducer::new(|_: &u8, vs: &[u64]| Some(vs.len())),
        cfg,
        &mut c2,
        &pool,
        tenant,
        &s2,
    )
    .unwrap();
    drop(s2);

    let spec = WorkerSpec::new(worker_bin(), "sum-all");
    let mut c3 = FixedCoordinator::new(24, 1.0, 0.0, 0);
    let (tx3, rx3) = crossbeam::channel::unbounded();
    let s3 = JobSession::new(JobId(7)).with_events(tx3);
    let c = run_job_process(
        &VecSource::new(blocks()),
        &spec,
        |_| GroupedReducer::new(|_: &u8, vs: &[u64]| Some(vs.len())),
        JobConfig {
            workers: 1,
            map_slots: 1,
            servers: 1,
            ..Default::default()
        },
        &mut c3,
        &s3,
    )
    .unwrap();
    drop(s3);

    assert_eq!(a.outputs, vec![24 * 60]);
    assert_eq!(a.outputs, b.outputs);
    assert_eq!(a.outputs, c.outputs, "process backend outputs diverged");
    let ea: Vec<JobEvent> = rx1.try_iter().collect();
    let eb: Vec<JobEvent> = rx2.try_iter().collect();
    let ec: Vec<JobEvent> = rx3.try_iter().collect();
    assert_eq!(ea, eb, "precise-run event streams diverged");
    assert_eq!(ea, ec, "precise-run process event stream diverged");
    let last = ea.last().expect("at least one event");
    assert!(
        matches!(
            last,
            JobEvent::Wave {
                finished: 24,
                total: 24,
                ..
            }
        ),
        "both backends end with the trailing full-completion wave, got {last:?}"
    );
}
