//! End-to-end tests of the process backend that go beyond the
//! three-way differential: worker crashes feeding the retry path,
//! shuffles that exceed the memory budget and spill to disk, scratch
//! cleanup, and worker reaping (no orphan processes).

use std::path::PathBuf;
use std::time::Duration;

use approxhadoop_ipc::Wire;
use approxhadoop_obs::Obs;
use approxhadoop_runtime::engine::{
    run_job_process, run_job_with_session, JobConfig, JobResult, WorkerSpec,
};
use approxhadoop_runtime::input::VecSource;
use approxhadoop_runtime::mapper::FnMapper;
use approxhadoop_runtime::reducer::GroupedReducer;
use approxhadoop_runtime::{FaultPolicy, FixedCoordinator, JobEvent, JobId, JobSession};

fn worker_bin() -> &'static str {
    env!("CARGO_BIN_EXE_approx-worker-rt")
}

fn blocks() -> Vec<Vec<u32>> {
    (0..12)
        .map(|b| (0..40).map(|i| b * 40 + i).collect())
        .collect()
}

/// Serial process-backend config with the retry path armed.
fn retry_config() -> JobConfig {
    JobConfig {
        workers: 1,
        map_slots: 1,
        servers: 1,
        reduce_tasks: 2,
        fault_policy: FaultPolicy {
            max_task_retries: 2,
            retry_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            degrade_to_drop: true,
            blacklist_after: 0,
            ..Default::default()
        },
        ..Default::default()
    }
}

fn run_process(spec: &WorkerSpec, config: JobConfig) -> (JobResult<(u8, u64)>, Vec<JobEvent>) {
    let input = VecSource::new(blocks());
    let mut coordinator =
        FixedCoordinator::new(12, config.sampling_ratio, config.drop_ratio, config.seed);
    let (tx, rx) = crossbeam::channel::unbounded();
    let session = JobSession::new(JobId(9)).with_events(tx);
    let result = run_job_process(
        &input,
        spec,
        |_| GroupedReducer::new(|k: &u8, vs: &[u64]| Some((*k, vs.iter().sum::<u64>()))),
        config,
        &mut coordinator,
        &session,
    )
    .unwrap();
    drop(session);
    (result, rx.try_iter().collect())
}

/// A worker that aborts mid-job surfaces as a task failure, flows into
/// bounded retry, and the retried run produces exactly the crash-free
/// results: same outputs, same events minus the `TaskRetry`.
#[test]
fn worker_crash_retries_and_matches_crash_free_run() {
    let clean = run_process(&WorkerSpec::new(worker_bin(), "mod8-count"), retry_config());

    // Crash the worker process the first time it starts task 5.
    let mut params = Vec::new();
    5u64.encode(&mut params);
    0u32.encode(&mut params);
    let crash_spec = WorkerSpec::new(worker_bin(), "crash-at").with_params(params);
    let (crashed, crash_events) = run_process(&crash_spec, retry_config());

    // The crash registered as a retried failure, not a lost job.
    assert!(
        crashed.metrics.retried_maps >= 1,
        "worker crash must feed the retry path: {:?}",
        crashed.metrics
    );
    assert_eq!(crashed.metrics.executed_maps, 12);
    assert_eq!(crashed.metrics.degraded_to_drop, 0);

    // Same final answer (read seeds are attempt-independent).
    let mut a = clean.0.outputs.clone();
    let mut b = crashed.outputs.clone();
    a.sort();
    b.sort();
    assert_eq!(a, b, "crash + retry must not change the job's results");

    // The event streams agree except for the injected retries.
    let retries: Vec<&JobEvent> = crash_events
        .iter()
        .filter(|e| matches!(e, JobEvent::TaskRetry { .. }))
        .collect();
    assert!(!retries.is_empty(), "a TaskRetry event must stream out");
    for e in &retries {
        let JobEvent::TaskRetry { task, reason, .. } = e else {
            unreachable!()
        };
        assert_eq!(format!("{task}"), "map_000005");
        assert!(
            reason.contains("worker lost"),
            "retry reason must name the lost worker: {reason}"
        );
    }
    let no_retries: Vec<&JobEvent> = crash_events
        .iter()
        .filter(|e| !matches!(e, JobEvent::TaskRetry { .. }))
        .collect();
    let clean_events: Vec<&JobEvent> = clean.1.iter().collect();
    assert_eq!(
        no_retries, clean_events,
        "crash run events must equal the clean run's, minus retries"
    );
}

/// A shuffle bigger than the memory budget spills runs to disk, the
/// results stay bit-identical to the unspilled and in-process runs, and
/// the scratch directory is removed afterwards.
#[test]
fn spilling_shuffle_matches_in_memory_results_and_cleans_up() {
    let spill_root = std::env::temp_dir().join(format!("approx-spill-test-{}", std::process::id()));
    std::fs::create_dir_all(&spill_root).unwrap();

    let run = |budget: usize, obs: std::sync::Arc<Obs>| {
        let input = VecSource::new(blocks());
        let spec = WorkerSpec::new(worker_bin(), "wide-pairs");
        let config = JobConfig {
            workers: 1,
            map_slots: 1,
            servers: 1,
            reduce_tasks: 2,
            shuffle_mem_bytes: budget,
            spill_dir: Some(spill_root.clone()),
            obs: Some(obs),
            ..Default::default()
        };
        let mut coordinator = FixedCoordinator::new(12, 1.0, 0.0, 0);
        let session = JobSession::new(JobId(11));
        run_job_process(
            &input,
            &spec,
            |_| {
                GroupedReducer::new(|k: &u32, vs: &[String]| {
                    Some((*k, vs.len() as u64, vs.first().cloned().unwrap_or_default()))
                })
            },
            config,
            &mut coordinator,
            &session,
        )
        .unwrap()
    };

    // Tiny budget: every emission overflows 1 KiB quickly.
    let spilled_obs = Obs::shared();
    let spilled = run(1024, std::sync::Arc::clone(&spilled_obs));
    // Default-sized budget: everything stays in memory.
    let unspilled_obs = Obs::shared();
    let unspilled = run(64 * 1024 * 1024, std::sync::Arc::clone(&unspilled_obs));

    let spill_runs = spilled_obs
        .registry
        .snapshot()
        .counter_total("approx_process_spill_runs_total");
    let spill_bytes = spilled_obs
        .registry
        .snapshot()
        .counter_total("approx_process_spill_bytes_total");
    assert!(spill_runs > 0, "the 1 KiB budget must force spill runs");
    assert!(spill_bytes > 0, "spilled runs must report their bytes");
    assert_eq!(
        unspilled_obs
            .registry
            .snapshot()
            .counter_total("approx_process_spill_runs_total"),
        0,
        "the 64 MiB budget must never spill this job"
    );

    // Bit-identical outputs, spilling or not.
    assert_eq!(
        spilled.outputs, unspilled.outputs,
        "spilling must not change results"
    );

    // And identical to the same job on the in-process backend.
    let input = VecSource::new(blocks());
    let mapper = FnMapper::new(|v: &u32, emit: &mut dyn FnMut(u32, String)| {
        emit(*v % 16, format!("{v:0>100}"))
    });
    let mut coordinator = FixedCoordinator::new(12, 1.0, 0.0, 0);
    let session = JobSession::new(JobId(11));
    let scoped = run_job_with_session(
        &input,
        &mapper,
        |_| {
            GroupedReducer::new(|k: &u32, vs: &[String]| {
                Some((*k, vs.len() as u64, vs.first().cloned().unwrap_or_default()))
            })
        },
        JobConfig {
            map_slots: 1,
            servers: 1,
            reduce_tasks: 2,
            ..Default::default()
        },
        &mut coordinator,
        &session,
    )
    .unwrap();
    assert_eq!(
        spilled.outputs, scoped.outputs,
        "process backend must agree with the in-process backend"
    );

    // Scratch cleanup: the job's spool/spill directory is gone.
    let leftovers: Vec<PathBuf> = std::fs::read_dir(&spill_root)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    assert!(
        leftovers.is_empty(),
        "scratch dirs must be removed after the job: {leftovers:?}"
    );
    std::fs::remove_dir_all(&spill_root).unwrap();
}

/// The combining spill path (sorted runs, k-way merge with fold) agrees
/// with the in-memory combining path.
#[test]
fn combined_spill_matches_unspilled_combining() {
    let spec = WorkerSpec::new(worker_bin(), "mod8-count-combined");
    let tiny = run_process(
        &spec,
        JobConfig {
            shuffle_mem_bytes: 64,
            ..retry_config()
        },
    );
    let big = run_process(&spec, retry_config());
    assert_eq!(
        tiny.0.outputs, big.0.outputs,
        "combined spill must fold to the identical table"
    );
    // Combining collapses each task's pairs to at most 8 keys.
    assert!(tiny.0.metrics.map_stats.iter().all(|m| m.shuffled <= 8));
}

/// `WorkerSpec::sibling` finds the worker binary cargo builds next to
/// the test executable (one level up from `deps/`).
#[test]
fn sibling_resolution_finds_worker_binary() {
    let spec = WorkerSpec::sibling("approx-worker-rt", "mod8-count").unwrap();
    assert!(spec.bin.is_file());
    let (result, _) = run_process(&spec, retry_config());
    assert_eq!(result.metrics.executed_maps, 12);
    assert!(
        WorkerSpec::sibling("no-such-worker-binary", "x").is_err(),
        "a missing binary must be reported, not deferred to spawn time"
    );
}

/// With an `Obs` attached, workers run their own registry/tracer and
/// piggyback telemetry on the result stream: worker-originated
/// counters merge into the parent registry, and worker spans arrive
/// re-based and parented under the owning task-attempt span.
#[test]
fn worker_spans_nest_under_task_attempt_spans() {
    use std::collections::HashMap;
    use std::sync::Arc;

    use approxhadoop_obs::TraceEvent;

    let obs = Obs::shared();
    let config = JobConfig {
        obs: Some(Arc::clone(&obs)),
        ..retry_config()
    };
    let (result, _) = run_process(&WorkerSpec::new(worker_bin(), "mod8-count"), config);
    assert_eq!(result.metrics.executed_maps, 12);

    // Worker-originated counters merged into the parent registry.
    let snap = obs.registry.snapshot();
    assert_eq!(
        snap.counter_total("approx_worker_attempts_total"),
        12,
        "one worker-side attempt counter tick per executed map"
    );
    assert!(
        snap.counter_total("approx_worker_records_total") > 0,
        "worker-side record counts must merge into the parent"
    );

    // Worker spans nest under task-attempt spans and stay inside them.
    let events = obs.tracer.events();
    let spans: HashMap<u64, &TraceEvent> = events
        .iter()
        .filter(|e| e.phase == 'X')
        .filter_map(|e| e.span.map(|s| (s.0, e)))
        .collect();
    let workers: Vec<&&TraceEvent> = spans.values().filter(|e| e.category == "worker").collect();
    let tasks: Vec<&&TraceEvent> = spans.values().filter(|e| e.category == "task").collect();
    assert_eq!(tasks.len(), 12, "one task span per executed map");
    assert!(
        workers.len() >= tasks.len(),
        "each attempt ships worker spans (read/map/drain), got {}",
        workers.len()
    );
    let names: std::collections::HashSet<&str> = workers.iter().map(|e| e.name.as_str()).collect();
    for phase in ["read block", "map+combine", "drain shuffle"] {
        assert!(names.contains(phase), "missing worker span `{phase}`");
    }
    for w in &workers {
        let parent = w.parent.expect("worker span has a parent");
        let owner = spans.get(&parent.0).expect("worker parent span exists");
        assert_eq!(owner.category, "task", "worker spans nest under tasks");
        assert_eq!(owner.pid, w.pid, "worker spans stay on the job's lane");
        assert_eq!(owner.tid, w.tid, "worker spans share the task's lane");
        assert!(
            w.ts_us >= owner.ts_us && w.ts_us + w.dur_us <= owner.ts_us + owner.dur_us,
            "worker span [{}, {}] escapes task [{}, {}]",
            w.ts_us,
            w.ts_us + w.dur_us,
            owner.ts_us,
            owner.ts_us + owner.dur_us
        );
    }
}

/// A worker crash triggers a flight-recorder dump: the scheduler's
/// recent-decision ring lands as structured JSON in the configured
/// directory, even when retries save the job afterwards.
#[test]
fn worker_crash_writes_flight_recorder_dump() {
    let dir = std::env::temp_dir().join(format!("approx-flight-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let mut params = Vec::new();
    5u64.encode(&mut params);
    0u32.encode(&mut params);
    let crash_spec = WorkerSpec::new(worker_bin(), "crash-at").with_params(params);
    let config = JobConfig {
        flight_dir: Some(dir.clone()),
        ..retry_config()
    };
    let (result, _) = run_process(&crash_spec, config);
    assert_eq!(result.metrics.executed_maps, 12, "retries save the job");

    let path = dir.join("flight-job_0009-worker-crash.json");
    assert!(path.is_file(), "missing flight dump at {}", path.display());
    let text = std::fs::read_to_string(&path).unwrap();
    let v = approxhadoop_obs::json::parse(&text).expect("flight dump parses as JSON");
    assert_eq!(v.get("job").and_then(|j| j.as_str()), Some("job_0009"));
    assert_eq!(
        v.get("reason").and_then(|r| r.as_str()),
        Some("worker-crash")
    );
    let entries = v
        .get("entries")
        .and_then(|e| e.as_array())
        .expect("entries array");
    assert!(!entries.is_empty(), "dump must carry ring entries");
    let kinds: Vec<&str> = entries
        .iter()
        .filter_map(|e| e.get("kind").and_then(|k| k.as_str()))
        .collect();
    assert!(
        kinds.contains(&"launch"),
        "ring records launches: {kinds:?}"
    );
    assert!(
        kinds.contains(&"failed"),
        "ring records the crash as a failed attempt: {kinds:?}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Telemetry must be cheap on the process backend too: the same job
/// with worker registries, spans, and telemetry frames enabled stays
/// within noise of the uninstrumented run. (The documented budget is
/// <= 5%; the assertion is looser so CI jitter cannot flake it.)
#[test]
fn process_telemetry_overhead_is_bounded() {
    let run_once = |obs: Option<std::sync::Arc<Obs>>| -> f64 {
        let config = JobConfig {
            obs,
            ..retry_config()
        };
        let start = std::time::Instant::now();
        let (result, _) = run_process(&WorkerSpec::new(worker_bin(), "mod8-count"), config);
        assert_eq!(result.metrics.executed_maps, 12);
        start.elapsed().as_secs_f64()
    };
    // Warm up once, then best-of-3 each: process spawn and pipe setup
    // dominate, so the minimum damps scheduler noise best.
    run_once(None);
    let plain = (0..3).map(|_| run_once(None)).fold(f64::MAX, f64::min);
    let traced = (0..3)
        .map(|_| run_once(Some(Obs::shared())))
        .fold(f64::MAX, f64::min);
    assert!(
        traced <= plain * 1.5 + 0.1,
        "telemetry-on run too slow: {traced:.4}s vs {plain:.4}s telemetry-off"
    );
}

/// After a job completes, no worker process may survive — not even
/// reparented to init. A worker whose parent pipe is gone exits on its
/// own; the executor SIGTERMs and reaps the rest on drop.
#[test]
fn workers_do_not_outlive_their_job() {
    let (result, _) = run_process(&WorkerSpec::new(worker_bin(), "mod8-count"), retry_config());
    assert_eq!(result.metrics.executed_maps, 12);

    // Give the reaped children a beat, then scan for orphans: any
    // process running our worker binary whose parent is init (PPID 1)
    // escaped the reaper. Workers owned by concurrently running tests
    // still have their test process as parent and don't count.
    std::thread::sleep(Duration::from_millis(200));
    let mut orphans = Vec::new();
    for entry in std::fs::read_dir("/proc").unwrap().flatten() {
        let name = entry.file_name();
        let Some(pid) = name.to_str().and_then(|s| s.parse::<u32>().ok()) else {
            continue;
        };
        let Ok(cmdline) = std::fs::read(format!("/proc/{pid}/cmdline")) else {
            continue;
        };
        if !cmdline
            .split(|b| *b == 0)
            .next()
            .is_some_and(|argv0| String::from_utf8_lossy(argv0).contains("approx-worker-rt"))
        {
            continue;
        }
        let Ok(stat) = std::fs::read_to_string(format!("/proc/{pid}/stat")) else {
            continue;
        };
        // stat field 4 (after the parenthesised comm) is the PPID.
        if let Some(rest) = stat.rsplit(')').next() {
            let ppid: Option<u32> = rest.split_whitespace().nth(1).and_then(|s| s.parse().ok());
            if ppid == Some(1) {
                orphans.push(pid);
            }
        }
    }
    assert!(orphans.is_empty(), "orphaned worker processes: {orphans:?}");
}
