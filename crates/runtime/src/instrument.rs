//! Engine-side observability glue.
//!
//! [`EngineObs`] turns the JobTracker's existing bookkeeping into a
//! `job → wave → task` span tree plus a handful of registry metrics,
//! and [`BoundTracker`] turns reducer [`BoundReport`]s into the
//! error-bound convergence series recorded in
//! [`JobMetrics::bound_series`](crate::metrics::JobMetrics::bound_series).
//! Both are optional: the engine only constructs them when a
//! [`JobConfig`](crate::engine::JobConfig) carries an `Obs` context, so
//! uninstrumented runs pay nothing.
//!
//! Span layout in the Chrome trace: each job gets its own `pid` lane;
//! `tid 0` holds the job span and the wave spans (waves close whenever
//! the finished-task count advances), while tasks are packed greedily
//! onto `tid >= 1` lanes so overlapping attempts render side by side.
//! Task spans are logged retroactively from the worker-reported
//! [`MapStats`] and carry the read/process time split as args; parent
//! links (`args.parent` → `args.span`) encode the logical nesting.

use std::sync::Arc;
use std::time::Instant;

use approxhadoop_obs::{arg_num, BoundSample, Obs, SpanId};

use crate::control::{BoundReport, JobControl};
use crate::engine::RemoteSpan;
use crate::metrics::{BoundPoint, JobMetrics, MapStats, TaskOutcome};

/// Sampling-ratio histogram buckets: ratios live in `(0, 1]`.
fn ratio_bounds() -> Vec<f64> {
    vec![0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0]
}

/// Per-job trace/metric recorder held by the JobTracker loop.
pub(crate) struct EngineObs {
    obs: Arc<Obs>,
    pid: u64,
    job_label: String,
    job_span: SpanId,
    job_open_us: u64,
    wave_span: SpanId,
    wave_open_us: u64,
    wave_index: usize,
    /// Any task recorded under the currently open wave span?
    wave_dirty: bool,
    /// Greedy task-lane allocator: per-lane busy-until timestamp (µs).
    lanes: Vec<u64>,
}

impl EngineObs {
    /// Starts recording a job on trace lane `pid` (one process lane per
    /// job; `pid 0` is reserved for pool-wide counters).
    pub(crate) fn new(obs: Arc<Obs>, pid: u64, job_label: &str) -> Self {
        obs.tracer.name_process(pid, job_label);
        obs.registry.counter("engine_jobs_total", &[]).inc();
        let job_span = obs.tracer.new_span_id();
        let wave_span = obs.tracer.new_span_id();
        let now = obs.tracer.now_us();
        EngineObs {
            obs,
            pid,
            job_label: job_label.to_string(),
            job_span,
            job_open_us: now,
            wave_span,
            wave_open_us: now,
            wave_index: 0,
            wave_dirty: false,
            lanes: Vec::new(),
        }
    }

    pub(crate) fn obs(&self) -> &Obs {
        &self.obs
    }

    pub(crate) fn job_label(&self) -> &str {
        &self.job_label
    }

    /// Records one schedule-time sampling decision.
    pub(crate) fn directive(&self, run: bool, sampling_ratio: f64) {
        let d = if run { "run" } else { "drop" };
        self.obs
            .registry
            .counter("engine_directives_total", &[("directive", d)])
            .inc();
        if run {
            self.obs
                .registry
                .histogram_with_bounds("engine_sampling_ratio", &[], ratio_bounds())
                .observe(sampling_ratio);
        }
    }

    /// Counts a task reaching a terminal state.
    pub(crate) fn task_outcome(&self, outcome: TaskOutcome) {
        let label = match outcome {
            TaskOutcome::Completed => "completed",
            TaskOutcome::Dropped => "dropped",
            TaskOutcome::Killed => "killed",
            TaskOutcome::Failed => "failed",
        };
        self.obs
            .registry
            .counter("engine_tasks_total", &[("outcome", label)])
            .inc();
    }

    /// Counts one failed map attempt.
    pub(crate) fn task_failed(&self) {
        self.obs
            .registry
            .counter("engine_task_failures_total", &[])
            .inc();
    }

    /// Counts one retry scheduled after a failure.
    pub(crate) fn task_retry(&self) {
        self.obs
            .registry
            .counter("engine_task_retries_total", &[])
            .inc();
    }

    /// Counts one task degraded to a dropped cluster after exhausting
    /// its retries.
    pub(crate) fn task_degraded(&self) {
        self.obs
            .registry
            .counter("engine_tasks_degraded_total", &[])
            .inc();
    }

    /// Counts one server blacklisted after repeated attempt failures.
    pub(crate) fn server_blacklisted(&self) {
        self.obs
            .registry
            .counter("engine_servers_blacklisted_total", &[])
            .inc();
    }

    /// Retro-logs a completed map attempt as a task span under the
    /// current wave, with the read/process split as metrics and args.
    ///
    /// `span` is the attempt's pre-allocated span id (0 when none was
    /// allocated — a fresh id is drawn then). `remote` holds spans the
    /// worker process recorded inside the attempt; their timestamps are
    /// attempt-relative and get re-based into the task span's window, so
    /// worker/parent clock skew never shows in the merged trace.
    pub(crate) fn task_completed(&mut self, stats: &MapStats, span: u64, remote: &[RemoteSpan]) {
        let reg = &self.obs.registry;
        reg.histogram("engine_task_secs", &[("phase", "total")])
            .observe(stats.duration_secs);
        reg.histogram("engine_task_secs", &[("phase", "read")])
            .observe(stats.read_secs);
        let now = self.obs.tracer.now_us();
        let dur = ((stats.duration_secs * 1e6) as u64).max(1);
        let start = now.saturating_sub(dur);
        let lane = match self.lanes.iter().position(|&end| end <= start) {
            Some(l) => l,
            None => {
                self.lanes.push(0);
                self.lanes.len() - 1
            }
        };
        self.lanes[lane] = now;
        self.wave_dirty = true;
        let task_span = if span != 0 {
            SpanId(span)
        } else {
            self.obs.tracer.new_span_id()
        };
        self.obs.tracer.complete_as(
            task_span,
            &format!("map {}", stats.task.0),
            "task",
            start,
            dur,
            self.pid,
            lane as u64 + 1,
            Some(self.wave_span),
            vec![
                arg_num("read_secs", stats.read_secs),
                arg_num(
                    "process_secs",
                    (stats.duration_secs - stats.read_secs).max(0.0),
                ),
                arg_num("records", stats.total_records as f64),
                arg_num("sampled", stats.sampled_records as f64),
            ],
        );
        for r in remote {
            // Clamp the re-based span inside [start, start + dur] so a
            // worker whose clock ran ahead can't escape the task window.
            let ts = start + r.rel_ts_us.min(dur.saturating_sub(1));
            let max_dur = (start + dur).saturating_sub(ts).max(1);
            self.obs.tracer.complete(
                &r.name,
                &r.category,
                ts,
                r.dur_us.clamp(1, max_dur),
                self.pid,
                lane as u64 + 1,
                Some(task_span),
                vec![],
            );
        }
    }

    /// Closes the current wave span (the finished count advanced) and
    /// opens the next one.
    pub(crate) fn wave_tick(&mut self, finished: usize, total: usize, bound: Option<f64>) {
        let now = self.obs.tracer.now_us();
        let mut args = vec![
            arg_num("finished", finished as f64),
            arg_num("total", total as f64),
        ];
        if let Some(b) = bound {
            args.push(arg_num("worst_bound", b));
        }
        self.obs.tracer.complete_as(
            self.wave_span,
            &format!("wave {}", self.wave_index),
            "wave",
            self.wave_open_us,
            now.saturating_sub(self.wave_open_us).max(1),
            self.pid,
            0,
            Some(self.job_span),
            args,
        );
        if let Some(b) = bound {
            self.obs
                .registry
                .gauge("engine_worst_relative_bound", &[("job", &self.job_label)])
                .set(b);
            self.obs
                .tracer
                .counter("error_bound", self.pid, &[("worst_relative_bound", b)]);
        }
        self.wave_index += 1;
        self.wave_span = self.obs.tracer.new_span_id();
        self.wave_open_us = now;
        self.wave_dirty = false;
    }

    /// Closes the trailing wave (if it recorded tasks) and the job span.
    pub(crate) fn finish(&mut self, metrics: &JobMetrics) {
        let now = self.obs.tracer.now_us();
        if self.wave_dirty {
            self.obs.tracer.complete_as(
                self.wave_span,
                &format!("wave {}", self.wave_index),
                "wave",
                self.wave_open_us,
                now.saturating_sub(self.wave_open_us).max(1),
                self.pid,
                0,
                Some(self.job_span),
                vec![arg_num("finished", metrics.total_maps as f64)],
            );
            self.wave_dirty = false;
        }
        self.obs.tracer.complete_as(
            self.job_span,
            &self.job_label.clone(),
            "job",
            self.job_open_us,
            now.saturating_sub(self.job_open_us).max(1),
            self.pid,
            0,
            None,
            vec![
                arg_num("executed_maps", metrics.executed_maps as f64),
                arg_num("dropped_maps", metrics.dropped_maps as f64),
                arg_num("killed_maps", metrics.killed_maps as f64),
                arg_num("failed_maps", metrics.failed_maps as f64),
                arg_num("retried_maps", metrics.retried_maps as f64),
                arg_num("degraded_to_drop", metrics.degraded_to_drop as f64),
                arg_num("wall_secs", metrics.wall_secs),
            ],
        );
    }
}

/// Records the per-reducer error-bound convergence series by polling
/// [`JobControl`] from the tracker loop and appending every *changed*
/// report. Works without an `Obs` context — the series always lands in
/// the job's metrics; registry gauges are updated only when one is
/// attached.
pub(crate) struct BoundTracker {
    start: Instant,
    last: Vec<Option<BoundReport>>,
}

impl BoundTracker {
    /// `start` is the job's start instant so `t_secs` aligns with the
    /// job's wall clock.
    pub(crate) fn new(start: Instant, reducers: usize) -> Self {
        BoundTracker {
            start,
            last: vec![None; reducers],
        }
    }

    /// Appends any new reducer reports to `series`.
    pub(crate) fn poll(
        &mut self,
        control: &JobControl,
        series: &mut Vec<BoundPoint>,
        eobs: Option<&EngineObs>,
    ) {
        let reports = control.bound_reports();
        let t_secs = self.start.elapsed().as_secs_f64();
        for (reducer, report) in reports.into_iter().enumerate() {
            let Some(report) = report else { continue };
            if reducer >= self.last.len() || self.last[reducer] == Some(report) {
                continue;
            }
            self.last[reducer] = Some(report);
            series.push(BoundPoint {
                t_secs,
                reducer,
                maps_processed: report.maps_processed,
                relative_bound: report.worst_relative_bound,
            });
            if let Some(e) = eobs {
                let obs = e.obs();
                obs.registry
                    .counter("engine_bound_reports_total", &[])
                    .inc();
                obs.registry
                    .gauge(
                        "engine_reducer_bound",
                        &[("job", e.job_label()), ("reducer", &reducer.to_string())],
                    )
                    .set(report.worst_relative_bound);
                obs.jobs.record(
                    e.job_label(),
                    BoundSample {
                        t_secs,
                        reducer,
                        maps_processed: report.maps_processed as u64,
                        relative_bound: report.worst_relative_bound,
                    },
                );
            }
        }
    }
}
