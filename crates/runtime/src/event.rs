//! Per-job handles for service-mode execution: lifecycle events
//! streamed to the submitter, plus the cancellation/deadline handle the
//! job service hands to the engine.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crossbeam::channel::Sender;

use crate::types::TaskId;

/// Identifier of a job within a [`crate::pool::SlotPool`]-backed service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job_{:04}", self.0)
    }
}

/// A lifecycle event streamed to the submitter of a job.
#[derive(Debug, Clone, PartialEq)]
pub enum JobEvent {
    /// The job was admitted and is waiting for slots.
    Queued {
        /// The job.
        job: JobId,
    },
    /// Progress: a wave of maps finished (completed, dropped or killed).
    Wave {
        /// The job.
        job: JobId,
        /// Maps finished so far (any terminal state).
        finished: usize,
        /// Total maps in the job.
        total: usize,
        /// Running worst relative error bound across reducers, once
        /// every reducer has reported at least once. Lets submitters
        /// implement client-side early stopping.
        worst_bound: Option<f64>,
    },
    /// All reducers have reported an error bound; this is the worst one.
    Estimate {
        /// The job.
        job: JobId,
        /// Worst relative error bound across reducers (∞ = unbounded).
        worst_relative_bound: f64,
    },
    /// A failed map attempt is being retried.
    TaskRetry {
        /// The job.
        job: JobId,
        /// The failing task.
        task: TaskId,
        /// The attempt number about to be scheduled.
        attempt: u32,
        /// Why the previous attempt failed.
        reason: String,
    },
    /// The job finished successfully.
    Done {
        /// The job.
        job: JobId,
        /// Wall-clock duration in seconds.
        wall_secs: f64,
    },
    /// The job failed or was cancelled.
    Failed {
        /// The job.
        job: JobId,
        /// Human-readable reason.
        reason: String,
    },
}

/// The per-job handle the service threads through the engine: identity,
/// cancellation flag, optional deadline, and an optional event stream.
///
/// The engine polls [`JobSession::cancelled`] between waves — cancelling
/// kills running attempts and fails the job with
/// [`crate::RuntimeError::Cancelled`]. A deadline instead *degrades*:
/// once it passes, remaining maps are dropped and the job completes
/// approximately, with `deadline_hit` set in its metrics.
#[derive(Debug, Clone)]
pub struct JobSession {
    /// The job's identity (used in emitted events).
    pub job: JobId,
    cancel: Arc<AtomicBool>,
    /// Optional wall-clock deadline for approximate completion.
    pub deadline: Option<Instant>,
    /// Optional sink for lifecycle events (send failures are ignored, so
    /// a departed subscriber never blocks the job).
    pub events: Option<Sender<JobEvent>>,
}

impl JobSession {
    /// Creates a detached session: no deadline, no event stream.
    pub fn new(job: JobId) -> Self {
        JobSession {
            job,
            cancel: Arc::new(AtomicBool::new(false)),
            deadline: None,
            events: None,
        }
    }

    /// Adds a deadline after which the job completes approximately.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Adds an event sink.
    pub fn with_events(mut self, events: Sender<JobEvent>) -> Self {
        self.events = Some(events);
        self
    }

    /// A clonable handle that cancels this job when triggered.
    pub fn cancel_handle(&self) -> CancelHandle {
        CancelHandle {
            flag: Arc::clone(&self.cancel),
        }
    }

    /// Whether the job has been cancelled.
    pub fn cancelled(&self) -> bool {
        self.cancel.load(Ordering::SeqCst)
    }

    /// Emits `event` to the subscriber, if any.
    pub fn emit(&self, event: JobEvent) {
        if let Some(tx) = &self.events {
            let _ = tx.send(event);
        }
    }
}

/// Cancels the associated job when triggered; clonable and sendable so
/// callers can keep it after submitting the job.
#[derive(Debug, Clone)]
pub struct CancelHandle {
    flag: Arc<AtomicBool>,
}

impl CancelHandle {
    /// Requests cancellation (idempotent).
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;

    #[test]
    fn cancel_handle_flips_session() {
        let s = JobSession::new(JobId(1));
        assert!(!s.cancelled());
        let h = s.cancel_handle();
        h.cancel();
        assert!(s.cancelled());
        assert!(h.is_cancelled());
    }

    #[test]
    fn emit_without_subscriber_is_noop() {
        let s = JobSession::new(JobId(2));
        s.emit(JobEvent::Queued { job: JobId(2) });
    }

    #[test]
    fn emit_reaches_subscriber_and_survives_departure() {
        let (tx, rx) = unbounded();
        let s = JobSession::new(JobId(3)).with_events(tx);
        s.emit(JobEvent::Done {
            job: JobId(3),
            wall_secs: 0.5,
        });
        assert!(matches!(rx.recv().unwrap(), JobEvent::Done { .. }));
        drop(rx);
        // Subscriber gone: emitting must not panic or block.
        s.emit(JobEvent::Queued { job: JobId(3) });
    }

    #[test]
    fn job_id_display() {
        assert_eq!(JobId(7).to_string(), "job_0007");
    }
}
