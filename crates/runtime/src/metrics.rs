//! Per-task and per-job execution metrics.
//!
//! The target-error controller fits the paper's map-task timing model
//! `t_map(M, m) = t0 + M·t_r + m·t_p` (Eq. 5) from [`MapStats`] records,
//! so the engine reports both the read time (scales with `M`) and the
//! total duration per task.

use crate::input::DatasetId;
use crate::types::TaskId;

/// Statistics of one *completed* map task attempt.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct MapStats {
    /// The task.
    pub task: TaskId,
    /// The dataset the task's split belongs to.
    pub dataset: DatasetId,
    /// `M_i` — total records in the task's block.
    pub total_records: u64,
    /// `m_i` — records actually processed after sampling.
    pub sampled_records: u64,
    /// Intermediate pairs emitted by the map function (pre-combining).
    pub emitted: u64,
    /// Intermediate pairs actually shipped to reducers (post-combining;
    /// equals `emitted` when no combiner is active).
    pub shuffled: u64,
    /// Wall-clock duration of the attempt in seconds.
    pub duration_secs: f64,
    /// Portion spent reading/parsing the block in seconds.
    pub read_secs: f64,
}

/// Terminal state of a map task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub enum TaskOutcome {
    /// Ran to completion and shipped output.
    Completed,
    /// Never launched (dropped before execution).
    Dropped,
    /// Launched and killed mid-flight (counts as dropped for sampling).
    Killed,
    /// Failed every attempt (I/O error or panic) — and, under a
    /// degrade-to-drop policy, was absorbed into the sampling design as
    /// a dropped cluster. Never conflated with [`TaskOutcome::Killed`],
    /// which marks *intentional* kills.
    Failed,
}

/// The terminal state of one specific map task, recorded so exported
/// snapshots show *which* maps were dropped or killed, not just counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub struct TaskOutcomeRecord {
    /// The task.
    pub task: TaskId,
    /// How it ended.
    pub outcome: TaskOutcome,
}

/// One point of the per-reducer error-bound convergence series: a
/// reducer's bound estimate after some number of maps were folded in.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct BoundPoint {
    /// Seconds since the job started when the bound was recorded.
    pub t_secs: f64,
    /// Reduce partition that reported.
    pub reducer: usize,
    /// Maps folded into the estimate at that point.
    pub maps_processed: usize,
    /// The reducer's worst relative error bound (∞ serializes as null).
    pub relative_bound: f64,
}

/// Cluster population of one dataset of a (possibly multi-input) job:
/// the `N_d`/`n_d` bookkeeping that keeps Eq. 1–3 intervals and
/// degrade-to-drop correct *per dataset* when a job reads more than one
/// input. Single-input jobs report exactly one entry (dataset 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub struct DatasetMetrics {
    /// The dataset.
    pub dataset: DatasetId,
    /// `N_d` — total map tasks (= splits) of this dataset.
    pub total_maps: usize,
    /// `n_d` — maps of this dataset that completed and shipped output.
    pub executed_maps: usize,
    /// Maps of this dataset that did not complete (dropped before
    /// launch, killed mid-flight, or degraded to drop after retries).
    pub dropped_maps: usize,
}

/// Aggregate metrics of one job execution.
#[derive(Debug, Clone, Default, serde::Serialize)]
pub struct JobMetrics {
    /// Total map tasks (= input splits).
    pub total_maps: usize,
    /// Maps that completed and shipped output.
    pub executed_maps: usize,
    /// Maps dropped before launch.
    pub dropped_maps: usize,
    /// Maps killed while running.
    pub killed_maps: usize,
    /// Failed map *attempts* (each failed attempt counts, including ones
    /// whose task later succeeded on retry).
    pub failed_maps: usize,
    /// Retry attempts scheduled after failures.
    pub retried_maps: usize,
    /// Tasks that exhausted their retries and were degraded to dropped
    /// clusters instead of aborting the job.
    pub degraded_to_drop: usize,
    /// Speculative duplicate attempts launched.
    pub speculative_attempts: usize,
    /// Maps scheduled on a server holding a replica of their block.
    pub local_maps: usize,
    /// Sum of `M_i` over executed maps.
    pub total_records: u64,
    /// Sum of `m_i` over executed maps.
    pub sampled_records: u64,
    /// Total pairs emitted by map functions (pre-combining).
    pub emitted_pairs: u64,
    /// Total pairs shipped through the shuffle (post-combining).
    pub shuffled_pairs: u64,
    /// Wall-clock job duration in seconds.
    pub wall_secs: f64,
    /// Whether the job hit its deadline and finished by dropping the
    /// remaining maps (approximate-on-deadline completion).
    pub deadline_hit: bool,
    /// Per-dataset cluster populations (one entry per dataset, in
    /// [`DatasetId`] order).
    pub datasets: Vec<DatasetMetrics>,
    /// Per-attempt statistics of completed maps.
    pub map_stats: Vec<MapStats>,
    /// Terminal state of every map task (task id → outcome).
    pub task_outcomes: Vec<TaskOutcomeRecord>,
    /// Per-reducer error-bound convergence over the job's lifetime.
    pub bound_series: Vec<BoundPoint>,
}

impl JobMetrics {
    /// Fraction of maps that did **not** complete (dropped + killed +
    /// degraded to drop).
    pub fn drop_fraction(&self) -> f64 {
        if self.total_maps == 0 {
            0.0
        } else {
            (self.dropped_maps + self.killed_maps + self.degraded_to_drop) as f64
                / self.total_maps as f64
        }
    }

    /// Effective within-block sampling ratio over executed maps
    /// (`Σm_i / ΣM_i`); `1.0` if nothing executed.
    pub fn effective_sampling_ratio(&self) -> f64 {
        if self.total_records == 0 {
            1.0
        } else {
            self.sampled_records as f64 / self.total_records as f64
        }
    }

    /// Shuffle reduction factor achieved by map-side combining
    /// (`emitted_pairs / shuffled_pairs`); `1.0` when nothing shuffled.
    pub fn combine_factor(&self) -> f64 {
        if self.shuffled_pairs == 0 {
            1.0
        } else {
            self.emitted_pairs as f64 / self.shuffled_pairs as f64
        }
    }

    /// Mean duration of completed map attempts in seconds.
    pub fn mean_map_secs(&self) -> f64 {
        if self.map_stats.is_empty() {
            0.0
        } else {
            self.map_stats.iter().map(|s| s.duration_secs).sum::<f64>()
                / self.map_stats.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_and_ratios() {
        let m = JobMetrics {
            total_maps: 10,
            executed_maps: 6,
            dropped_maps: 3,
            killed_maps: 1,
            total_records: 1000,
            sampled_records: 100,
            ..Default::default()
        };
        assert!((m.drop_fraction() - 0.4).abs() < 1e-12);
        assert!((m.effective_sampling_ratio() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn combine_factor_reports_reduction() {
        let m = JobMetrics {
            emitted_pairs: 1000,
            shuffled_pairs: 40,
            ..Default::default()
        };
        assert!((m.combine_factor() - 25.0).abs() < 1e-12);
        assert_eq!(JobMetrics::default().combine_factor(), 1.0);
    }

    #[test]
    fn empty_metrics_are_safe() {
        let m = JobMetrics::default();
        assert_eq!(m.drop_fraction(), 0.0);
        assert_eq!(m.effective_sampling_ratio(), 1.0);
        assert_eq!(m.mean_map_secs(), 0.0);
    }

    #[test]
    fn metrics_serialize_to_json() {
        let m = JobMetrics {
            total_maps: 2,
            executed_maps: 1,
            wall_secs: 0.25,
            map_stats: vec![MapStats {
                task: TaskId(1),
                dataset: DatasetId::default(),
                total_records: 10,
                sampled_records: 5,
                emitted: 3,
                shuffled: 3,
                duration_secs: 0.1,
                read_secs: 0.05,
            }],
            ..Default::default()
        };
        let json = serde_json::to_string(&m).unwrap();
        assert!(json.contains("\"total_maps\":2"), "json: {json}");
        assert!(json.contains("\"deadline_hit\":false"), "json: {json}");
        // TaskId is a newtype: serializes transparently as its index.
        assert!(json.contains("\"task\":1"), "json: {json}");
    }

    #[test]
    fn mean_map_secs() {
        let mk = |d: f64| MapStats {
            task: TaskId(0),
            dataset: DatasetId::default(),
            total_records: 1,
            sampled_records: 1,
            emitted: 0,
            shuffled: 0,
            duration_secs: d,
            read_secs: 0.0,
        };
        let m = JobMetrics {
            map_stats: vec![mk(1.0), mk(3.0)],
            ..Default::default()
        };
        assert_eq!(m.mean_map_secs(), 2.0);
    }
}
