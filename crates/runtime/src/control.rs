//! Job control: the channel between reduce tasks, the JobTracker, and
//! the approximation policy.
//!
//! * [`JobControl`] is shared state: reducers post error-bound reports
//!   and can request that all remaining maps be dropped; the tracker
//!   polls it.
//! * [`Coordinator`] is the policy hook: it decides, per task and *at
//!   schedule time*, whether to run (and at what sampling ratio) or drop
//!   — this late binding is what lets `approxhadoop-core` implement the
//!   paper's wave-based ratio selection.

use std::sync::atomic::{AtomicBool, Ordering};

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;

use approxhadoop_stats::sampling::choose_indices;

use crate::input::SplitMeta;
use crate::metrics::MapStats;
use crate::types::TaskId;
use crate::RuntimeError;

/// A reduce task's latest error-bound report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundReport {
    /// Map outputs the reducer had processed when reporting.
    pub maps_processed: usize,
    /// Worst (largest) relative error bound across the reducer's keys;
    /// `f64::INFINITY` if any key is still unbounded.
    pub worst_relative_bound: f64,
}

/// Shared job-control state (one per running job).
#[derive(Debug)]
pub struct JobControl {
    drop_remaining: AtomicBool,
    bounds: Mutex<Vec<Option<BoundReport>>>,
}

impl JobControl {
    /// Creates control state for a job with `reduce_tasks` reducers.
    pub fn new(reduce_tasks: usize) -> Self {
        JobControl {
            drop_remaining: AtomicBool::new(false),
            bounds: Mutex::new(vec![None; reduce_tasks]),
        }
    }

    /// Requests that the JobTracker drop all remaining maps (kill running
    /// ones, discard pending ones). Idempotent.
    pub fn request_drop_remaining(&self) {
        self.drop_remaining.store(true, Ordering::SeqCst);
    }

    /// Whether a drop of remaining maps has been requested.
    pub fn drop_requested(&self) -> bool {
        self.drop_remaining.load(Ordering::SeqCst)
    }

    /// Posts reducer `partition`'s latest error report.
    pub fn report_bound(&self, partition: usize, report: BoundReport) {
        let mut bounds = self.bounds.lock();
        if partition < bounds.len() {
            bounds[partition] = Some(report);
        }
    }

    /// Snapshot of every reducer's latest report (`None` = no report yet).
    pub fn bound_reports(&self) -> Vec<Option<BoundReport>> {
        self.bounds.lock().clone()
    }

    /// The worst relative bound across all reducers, provided **every**
    /// reducer has reported after processing at least `min_maps` maps;
    /// `None` otherwise. A job with zero reducers has no bound (`None`)
    /// rather than a vacuous perfect bound of `0.0`.
    pub fn worst_bound_across_reducers(&self, min_maps: usize) -> Option<f64> {
        let bounds = self.bounds.lock();
        if bounds.is_empty() {
            return None;
        }
        let mut worst: f64 = 0.0;
        for b in bounds.iter() {
            match b {
                Some(r) if r.maps_processed >= min_maps => {
                    worst = worst.max(r.worst_relative_bound);
                }
                _ => return None,
            }
        }
        Some(worst)
    }
}

/// Scheduling decision for one map task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MapDirective {
    /// Execute the task, sampling its block at `sampling_ratio`
    /// (`1.0` = precise).
    Run {
        /// Within-block input data sampling ratio in `(0, 1]`.
        sampling_ratio: f64,
    },
    /// Drop the task without executing it.
    Drop,
}

/// The approximation policy driving a job.
///
/// The tracker calls [`Coordinator::directive`] immediately before
/// launching each task (tasks are dispatched one slot at a time, so later
/// calls observe earlier completions — waves), and
/// [`Coordinator::on_map_complete`] for every completed attempt.
pub trait Coordinator: Send {
    /// Decides the fate of `task` at schedule time.
    fn directive(&mut self, task: TaskId, meta: &SplitMeta) -> MapDirective;

    /// Observes a completed map attempt (timing + sampling counts).
    fn on_map_complete(&mut self, stats: &MapStats) {
        let _ = stats;
    }

    /// Polled by the tracker after processing events: should all
    /// remaining maps be dropped now? (In addition to reducers setting
    /// [`JobControl::request_drop_remaining`] directly.)
    fn want_drop_remaining(&mut self, control: &JobControl) -> bool {
        let _ = control;
        false
    }
}

/// The default policy: a fixed sampling ratio for every task plus an
/// exact fraction of randomly pre-selected dropped tasks — the paper's
/// "user-specified dropping/sampling ratios" mode.
#[derive(Debug, Clone)]
pub struct FixedCoordinator {
    sampling_ratio: f64,
    dropped: Vec<bool>,
}

impl FixedCoordinator {
    /// Creates a policy for `total_tasks` tasks that drops
    /// `floor(drop_ratio · total)` random tasks and samples the rest at
    /// `sampling_ratio`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < sampling_ratio <= 1` and `0 <= drop_ratio < 1`.
    pub fn new(total_tasks: usize, sampling_ratio: f64, drop_ratio: f64, seed: u64) -> Self {
        assert!(
            sampling_ratio > 0.0 && sampling_ratio <= 1.0,
            "sampling_ratio must lie in (0, 1], got {sampling_ratio}"
        );
        assert!(
            (0.0..1.0).contains(&drop_ratio),
            "drop_ratio must lie in [0, 1), got {drop_ratio}"
        );
        let mut dropped = vec![false; total_tasks];
        let k = (drop_ratio * total_tasks as f64).floor() as usize;
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD20F_F00D);
        for i in choose_indices(&mut rng, total_tasks, k) {
            dropped[i] = true;
        }
        FixedCoordinator {
            sampling_ratio,
            dropped,
        }
    }

    /// The number of tasks this policy will drop.
    pub fn planned_drops(&self) -> usize {
        self.dropped.iter().filter(|&&d| d).count()
    }
}

impl Coordinator for FixedCoordinator {
    fn directive(&mut self, task: TaskId, _meta: &SplitMeta) -> MapDirective {
        if self.dropped.get(task.0).copied().unwrap_or(false) {
            MapDirective::Drop
        } else {
            MapDirective::Run {
                sampling_ratio: self.sampling_ratio,
            }
        }
    }
}

/// Per-dataset approximation ratios of a multi-input job: dataset `d`
/// runs with `datasets[d]`'s sampling/drop ratios, independent of every
/// other dataset. A join can sample its fact table aggressively while
/// reading its dimension table precisely (`sampling_ratio: 1.0,
/// drop_ratio: 0.0`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetRatios {
    /// Within-block input sampling ratio in `(0, 1]`.
    pub sampling_ratio: f64,
    /// Fraction of this dataset's map tasks dropped, in `[0, 1)`.
    pub drop_ratio: f64,
}

impl DatasetRatios {
    /// Precise execution: no sampling, no drops.
    pub fn precise() -> Self {
        DatasetRatios {
            sampling_ratio: 1.0,
            drop_ratio: 0.0,
        }
    }

    /// Checks the ratio ranges.
    pub fn validate(&self) -> crate::Result<()> {
        if !(self.sampling_ratio > 0.0 && self.sampling_ratio <= 1.0) {
            return Err(RuntimeError::invalid(format!(
                "dataset sampling_ratio must lie in (0, 1], got {}",
                self.sampling_ratio
            )));
        }
        if !(0.0..1.0).contains(&self.drop_ratio) {
            return Err(RuntimeError::invalid(format!(
                "dataset drop_ratio must lie in [0, 1), got {}",
                self.drop_ratio
            )));
        }
        Ok(())
    }
}

/// [`FixedCoordinator`]'s multi-input sibling: per-dataset fixed ratios,
/// with the exact-count drop selection performed **within each dataset's
/// own task set**. Dropping `floor(drop_ratio_d · N_d)` clusters of
/// dataset `d` — never of a co-scheduled dataset — is what keeps the
/// per-dataset `N_d (N_d - n_d)` variance terms (Eq. 1–3) and
/// degrade-to-drop accounting honest when a job reads several inputs.
#[derive(Debug, Clone)]
pub struct DatasetFixedCoordinator {
    /// Per-task sampling ratio (indexed by global task id).
    sampling_ratios: Vec<f64>,
    /// Per-task drop flag (indexed by global task id).
    dropped: Vec<bool>,
}

impl DatasetFixedCoordinator {
    /// Builds the policy from the job's split table and per-dataset
    /// ratios; `ratios[d]` governs every split tagged
    /// [`DatasetId`](crate::input::DatasetId)`(d)`.
    /// Rejects (rather than panics on) out-of-range ratios and splits
    /// referring to datasets missing from the table, so a malformed
    /// multi-input spec fails the job cleanly.
    pub fn new(splits: &[SplitMeta], ratios: &[DatasetRatios], seed: u64) -> crate::Result<Self> {
        for r in ratios {
            r.validate()?;
        }
        let mut per_dataset: Vec<Vec<usize>> = vec![Vec::new(); ratios.len()];
        for s in splits {
            let d = s.dataset.0 as usize;
            let Some(tasks) = per_dataset.get_mut(d) else {
                return Err(RuntimeError::invalid(format!(
                    "split {} is tagged {}, but the job declares only {} dataset(s)",
                    s.index,
                    s.dataset,
                    ratios.len()
                )));
            };
            tasks.push(s.index);
        }
        let mut sampling_ratios = vec![1.0; splits.len()];
        let mut dropped = vec![false; splits.len()];
        for (d, tasks) in per_dataset.iter().enumerate() {
            let r = ratios[d];
            for &t in tasks {
                sampling_ratios[t] = r.sampling_ratio;
            }
            // Independent drop draw per dataset: the same xor-mixed seed
            // family as FixedCoordinator, further mixed with the dataset
            // id so each dataset's selection is its own deterministic
            // stream.
            let k = (r.drop_ratio * tasks.len() as f64).floor() as usize;
            let mut rng = StdRng::seed_from_u64(
                seed ^ 0xD20F_F00D ^ (d as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            for i in choose_indices(&mut rng, tasks.len(), k) {
                dropped[tasks[i]] = true;
            }
        }
        Ok(DatasetFixedCoordinator {
            sampling_ratios,
            dropped,
        })
    }

    /// The number of tasks this policy will drop, across all datasets.
    pub fn planned_drops(&self) -> usize {
        self.dropped.iter().filter(|&&d| d).count()
    }
}

impl Coordinator for DatasetFixedCoordinator {
    fn directive(&mut self, task: TaskId, _meta: &SplitMeta) -> MapDirective {
        if self.dropped.get(task.0).copied().unwrap_or(false) {
            MapDirective::Drop
        } else {
            MapDirective::Run {
                sampling_ratio: self.sampling_ratios.get(task.0).copied().unwrap_or(1.0),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::DatasetId;

    #[test]
    fn job_control_drop_flag() {
        let c = JobControl::new(2);
        assert!(!c.drop_requested());
        c.request_drop_remaining();
        assert!(c.drop_requested());
        c.request_drop_remaining(); // idempotent
        assert!(c.drop_requested());
    }

    #[test]
    fn worst_bound_requires_all_reducers() {
        let c = JobControl::new(2);
        assert_eq!(c.worst_bound_across_reducers(1), None);
        c.report_bound(
            0,
            BoundReport {
                maps_processed: 5,
                worst_relative_bound: 0.02,
            },
        );
        assert_eq!(c.worst_bound_across_reducers(1), None);
        c.report_bound(
            1,
            BoundReport {
                maps_processed: 4,
                worst_relative_bound: 0.05,
            },
        );
        assert_eq!(c.worst_bound_across_reducers(1), Some(0.05));
        // min_maps gate.
        assert_eq!(c.worst_bound_across_reducers(5), None);
    }

    #[test]
    fn worst_bound_with_zero_reducers_is_none() {
        // A vacuous `Some(0.0)` here would tell the target-error planner
        // the job is already perfectly bounded and stop it instantly.
        let c = JobControl::new(0);
        assert_eq!(c.worst_bound_across_reducers(0), None);
        assert_eq!(c.worst_bound_across_reducers(3), None);
    }

    #[test]
    fn worst_bound_min_maps_zero_accepts_fresh_reports() {
        let c = JobControl::new(1);
        c.report_bound(
            0,
            BoundReport {
                maps_processed: 0,
                worst_relative_bound: f64::INFINITY,
            },
        );
        // min_maps = 0: a report from a reducer that has seen nothing
        // still counts, and its (infinite) bound dominates.
        assert_eq!(c.worst_bound_across_reducers(0), Some(f64::INFINITY));
        // But requiring at least one processed map gates it out again.
        assert_eq!(c.worst_bound_across_reducers(1), None);
    }

    #[test]
    fn worst_bound_takes_max_not_last() {
        let c = JobControl::new(3);
        for (p, b) in [(0, 0.01), (1, 0.20), (2, 0.05)] {
            c.report_bound(
                p,
                BoundReport {
                    maps_processed: 10,
                    worst_relative_bound: b,
                },
            );
        }
        assert_eq!(c.worst_bound_across_reducers(1), Some(0.20));
    }

    #[test]
    fn report_to_out_of_range_partition_is_ignored() {
        let c = JobControl::new(1);
        c.report_bound(
            5,
            BoundReport {
                maps_processed: 1,
                worst_relative_bound: 0.1,
            },
        );
        assert_eq!(c.bound_reports(), vec![None]);
    }

    #[test]
    fn fixed_coordinator_drops_exact_fraction() {
        let mut c = FixedCoordinator::new(100, 0.5, 0.25, 42);
        assert_eq!(c.planned_drops(), 25);
        let meta = SplitMeta {
            index: 0,
            dataset: DatasetId::default(),
            records: 1,
            bytes: 0,
            locations: vec![],
        };
        let mut drops = 0;
        for t in 0..100 {
            match c.directive(TaskId(t), &meta) {
                MapDirective::Drop => drops += 1,
                MapDirective::Run { sampling_ratio } => {
                    assert!((sampling_ratio - 0.5).abs() < 1e-12)
                }
            }
        }
        assert_eq!(drops, 25);
    }

    #[test]
    fn fixed_coordinator_zero_drop() {
        let c = FixedCoordinator::new(10, 1.0, 0.0, 1);
        assert_eq!(c.planned_drops(), 0);
    }

    #[test]
    #[should_panic]
    fn fixed_coordinator_rejects_full_drop() {
        FixedCoordinator::new(10, 1.0, 1.0, 1);
    }

    fn tagged_splits(counts: &[usize]) -> Vec<SplitMeta> {
        let mut splits = Vec::new();
        for (d, &n) in counts.iter().enumerate() {
            for _ in 0..n {
                splits.push(SplitMeta {
                    index: splits.len(),
                    dataset: DatasetId(d as u32),
                    records: 10,
                    bytes: 0,
                    locations: vec![],
                });
            }
        }
        splits
    }

    #[test]
    fn dataset_coordinator_drops_within_each_dataset() {
        let splits = tagged_splits(&[40, 10]);
        let ratios = [
            DatasetRatios {
                sampling_ratio: 0.25,
                drop_ratio: 0.5,
            },
            DatasetRatios::precise(),
        ];
        let mut c = DatasetFixedCoordinator::new(&splits, &ratios, 7).unwrap();
        assert_eq!(c.planned_drops(), 20, "half of dataset 0 only");
        let mut drops_by_dataset = [0usize; 2];
        for s in &splits {
            match c.directive(TaskId(s.index), s) {
                MapDirective::Drop => drops_by_dataset[s.dataset.0 as usize] += 1,
                MapDirective::Run { sampling_ratio } => {
                    let expect = ratios[s.dataset.0 as usize].sampling_ratio;
                    assert!(
                        (sampling_ratio - expect).abs() < 1e-12,
                        "task {} ({}) ran at {sampling_ratio}, expected {expect}",
                        s.index,
                        s.dataset
                    );
                }
            }
        }
        assert_eq!(drops_by_dataset, [20, 0], "the precise dataset never drops");
    }

    #[test]
    fn dataset_coordinator_is_deterministic_per_seed() {
        let splits = tagged_splits(&[30, 30]);
        let ratios = [
            DatasetRatios {
                sampling_ratio: 0.5,
                drop_ratio: 0.2,
            },
            DatasetRatios {
                sampling_ratio: 0.5,
                drop_ratio: 0.2,
            },
        ];
        let pick = |seed| {
            let mut c = DatasetFixedCoordinator::new(&splits, &ratios, seed).unwrap();
            splits
                .iter()
                .map(|s| matches!(c.directive(TaskId(s.index), s), MapDirective::Drop))
                .collect::<Vec<_>>()
        };
        assert_eq!(pick(3), pick(3));
        assert_ne!(pick(3), pick(4), "different seed, different drop set");
        // Same ratios, but each dataset draws from its own stream: the
        // drop pattern of dataset 0 differs from dataset 1's.
        let drops = pick(3);
        assert_ne!(drops[..30], drops[30..]);
    }

    #[test]
    fn dataset_coordinator_rejects_malformed_tables() {
        let splits = tagged_splits(&[4, 4]);
        // Split tagged beyond the declared dataset table.
        assert!(matches!(
            DatasetFixedCoordinator::new(&splits, &[DatasetRatios::precise()], 0),
            Err(RuntimeError::InvalidJob { .. })
        ));
        // Out-of-range ratios.
        for bad in [
            DatasetRatios {
                sampling_ratio: 0.0,
                drop_ratio: 0.0,
            },
            DatasetRatios {
                sampling_ratio: 1.0,
                drop_ratio: 1.0,
            },
        ] {
            assert!(DatasetFixedCoordinator::new(&splits, &[bad, bad], 0).is_err());
        }
    }
}
