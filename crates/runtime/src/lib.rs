//! A multi-threaded MapReduce engine — the "modified Hadoop" of the
//! ApproxHadoop paper, built from scratch in Rust.
//!
//! The engine reproduces the pieces of Hadoop the paper modifies:
//!
//! * a **JobTracker** ([`engine`]) that schedules one map task per input
//!   block, **in random order** (required by the cluster-sampling
//!   theory), on a fixed number of map slots. The scheduler is a single
//!   backend-agnostic state machine; *where* attempts run is a pluggable
//!   executor — job-private task-tracker threads ([`engine::run_job`],
//!   [`engine::run_job_with_coordinator`], [`engine::run_job_with_session`]),
//!   a shared, weighted-fair [`pool::SlotPool`]
//!   ([`engine::run_job_on_pool`], service mode), or separate worker
//!   **processes** with a spill-capable shuffle
//!   ([`engine::run_job_process`], [`engine::process`]);
//! * **task dropping**: tasks can be dropped before launch or **killed
//!   while running**; dropped maps get a distinct terminal state and the
//!   job still completes (paper Section 4.3);
//! * **barrier-less incremental reduce** ([`reducer`]): reduce tasks
//!   consume map outputs as each map finishes, can report error bounds
//!   to the JobTracker, and can request that all remaining maps be
//!   dropped (the Verma et al. extension the paper builds on);
//! * **input data sampling** ([`input`]): every input source reads a
//!   block at a per-task sampling ratio decided at schedule time and
//!   reports `(m_i, M_i)` with the map output;
//! * **speculative execution** of stragglers (duplicate launch, first
//!   completion wins);
//! * **fault tolerance** ([`fault`]): deterministic fault injection
//!   ([`fault::FaultPlan`]), bounded per-task retry with exponential
//!   backoff and server blacklisting, and **degrade-to-drop** — a task
//!   that exhausts its retries is absorbed into the sampling design as
//!   a dropped cluster (widening the confidence interval) instead of
//!   failing the job ([`fault::FaultPolicy`]).
//!
//! Approximation *policy* — error estimation, ratio selection, target
//! bounds — lives in `approxhadoop-core`, which drives this engine
//! through the [`control::Coordinator`] trait and the reduce-side
//! [`control::JobControl`] channel.
//!
//! # Example: word count
//!
//! ```
//! use approxhadoop_runtime::engine::{run_job, JobConfig};
//! use approxhadoop_runtime::input::VecSource;
//! use approxhadoop_runtime::mapper::FnMapper;
//! use approxhadoop_runtime::reducer::GroupedReducer;
//!
//! let blocks = vec![
//!     vec!["a b a".to_string()],
//!     vec!["b c".to_string()],
//! ];
//! let input = VecSource::new(blocks);
//! let mapper = FnMapper::new(|line: &String, emit: &mut dyn FnMut(String, u64)| {
//!     for w in line.split_whitespace() {
//!         emit(w.to_string(), 1);
//!     }
//! });
//! let result = run_job(
//!     &input,
//!     &mapper,
//!     |_| GroupedReducer::new(|key: &String, counts: &[u64]| {
//!         Some((key.clone(), counts.iter().sum::<u64>()))
//!     }),
//!     JobConfig::default(),
//! )
//! .unwrap();
//! let mut counts = result.outputs;
//! counts.sort();
//! assert_eq!(counts, vec![("a".into(), 2), ("b".into(), 2), ("c".into(), 1)]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod combine;
pub mod control;
pub mod engine;
pub mod error;
pub mod event;
pub mod fault;
pub mod input;
mod instrument;
pub mod mapper;
pub mod metrics;
pub mod pool;
pub mod reducer;
pub mod text;
pub mod types;

pub use combine::{
    CombineTable, Combined, Combiner, FnCombiner, MaxCombiner, MinCombiner, PairSumCombiner,
    SumCombiner,
};
pub use control::{
    Coordinator, DatasetFixedCoordinator, DatasetRatios, FixedCoordinator, JobControl, MapDirective,
};
pub use engine::{
    run_job, run_job_on_pool, run_job_process, run_job_with_coordinator, run_job_with_session,
    Executor, JobConfig, JobResult, RecvOutcome, WorkItem, WorkerMsg, WorkerSpec,
};
pub use error::RuntimeError;
pub use event::{CancelHandle, JobEvent, JobId, JobSession};
pub use fault::{FaultDecision, FaultPlan, FaultPolicy};
pub use mapper::MapTaskContext;
pub use pool::{SlotPool, TenantId};
pub use types::{FxHashMap, FxHasher, Key, Partitioner, TaskId, Value};

/// Result alias for runtime operations.
pub type Result<T> = std::result::Result<T, RuntimeError>;
