//! A shared, service-wide pool of map slots.
//!
//! The seed engine owned its task-tracker threads for the lifetime of a
//! single job. The pool inverts that ownership: a fixed set of worker
//! threads outlives any job, and jobs (tenants) submit boxed map
//! attempts into per-tenant queues. Workers pick the next task by
//! **start-time fair queuing**: every tenant carries a virtual time
//! that advances by `1/weight` per dispatched task, and the runnable
//! tenant with the smallest virtual time goes first. Two tenants with
//! equal weights therefore interleave 1:1 regardless of how many tasks
//! each has queued — neither can starve the other.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use approxhadoop_obs::Obs;

/// Identifier of a tenant (one registered job or traffic class).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(pub u64);

/// A unit of work executed on a pool slot.
pub type PoolTask = Box<dyn FnOnce() + Send + 'static>;

struct TenantQueue {
    weight: f64,
    /// Start-time fair-queuing virtual time.
    vtime: f64,
    /// Queued tasks, each with its enqueue instant for wait-time metrics.
    queue: std::collections::VecDeque<(PoolTask, Instant)>,
}

#[derive(Default)]
struct PoolState {
    tenants: HashMap<u64, TenantQueue>,
    next_tenant: u64,
}

impl PoolState {
    fn min_active_vtime(&self) -> Option<f64> {
        self.tenants
            .values()
            .filter(|t| !t.queue.is_empty())
            .map(|t| t.vtime)
            .fold(None, |acc, v| {
                Some(match acc {
                    None => v,
                    Some(a) if v < a => v,
                    Some(a) => a,
                })
            })
    }

    /// Fairness skew: spread between the most- and least-served active
    /// tenants' virtual times. `0` with fewer than two active tenants;
    /// a persistently large value means weighted sharing is failing.
    fn vtime_skew(&self) -> f64 {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut active = 0usize;
        for t in self.tenants.values().filter(|t| !t.queue.is_empty()) {
            active += 1;
            min = min.min(t.vtime);
            max = max.max(t.vtime);
        }
        if active < 2 {
            0.0
        } else {
            max - min
        }
    }

    /// Pops the next task under weighted fair sharing, returning the
    /// task, when it was enqueued, and the owning tenant.
    fn pop_fair(&mut self) -> Option<(PoolTask, Instant, u64)> {
        let tenant = self
            .tenants
            .iter()
            .filter(|(_, t)| !t.queue.is_empty())
            .min_by(|a, b| {
                a.1.vtime
                    .partial_cmp(&b.1.vtime)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    // Deterministic tie-break on tenant id.
                    .then(a.0.cmp(b.0))
            })
            .map(|(id, _)| *id)?;
        let tq = self.tenants.get_mut(&tenant).expect("tenant exists");
        let (task, enqueued) = tq.queue.pop_front()?;
        tq.vtime += 1.0 / tq.weight.max(1e-9);
        Some((task, enqueued, tenant))
    }
}

struct PoolShared {
    state: Mutex<PoolState>,
    ready: Condvar,
    shutdown: AtomicBool,
    busy: AtomicUsize,
    queued: AtomicUsize,
    slots: usize,
    /// Optional observability context: queue/slot gauges, per-tenant
    /// wait histograms, fairness skew, and `pid 0` trace counters.
    obs: Option<Arc<Obs>>,
}

impl PoolShared {
    /// Publishes queue-depth/busy gauges and the pool trace counter.
    fn record_occupancy(&self) {
        let Some(obs) = &self.obs else { return };
        let queued = self.queued.load(Ordering::SeqCst) as f64;
        let busy = self.busy.load(Ordering::SeqCst) as f64;
        obs.registry.gauge("pool_queue_depth", &[]).set(queued);
        obs.registry.gauge("pool_busy_slots", &[]).set(busy);
        obs.tracer
            .counter("pool", 0, &[("queued", queued), ("busy", busy)]);
    }
}

/// A fixed-size pool of worker threads shared by many concurrent jobs.
///
/// Dropping the pool shuts it down: queued tasks are discarded and the
/// workers are joined. Jobs in flight should be cancelled (or awaited)
/// first; submitted closures must therefore tolerate never running —
/// the engine's tracker detects this via its disconnect path.
pub struct SlotPool {
    shared: Arc<PoolShared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for SlotPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlotPool")
            .field("slots", &self.shared.slots)
            .field("busy", &self.busy())
            .field("queued", &self.queued())
            .finish()
    }
}

impl SlotPool {
    /// Creates a pool with `slots` worker threads.
    ///
    /// # Panics
    ///
    /// Panics if `slots == 0`.
    pub fn new(slots: usize) -> Arc<SlotPool> {
        Self::new_with_obs(slots, None)
    }

    /// Creates a pool with `slots` worker threads that publishes queue
    /// depth, slot occupancy, per-tenant wait times, and fair-share
    /// skew into `obs` (pool metrics live on trace lane `pid 0`).
    ///
    /// # Panics
    ///
    /// Panics if `slots == 0`.
    pub fn new_with_obs(slots: usize, obs: Option<Arc<Obs>>) -> Arc<SlotPool> {
        assert!(slots > 0, "slot pool needs at least one slot");
        if let Some(o) = &obs {
            o.tracer.name_process(0, "slot-pool");
            o.registry.gauge("pool_slots", &[]).set(slots as f64);
        }
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState::default()),
            ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
            busy: AtomicUsize::new(0),
            queued: AtomicUsize::new(0),
            slots,
            obs,
        });
        let workers = (0..slots)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("slot-{i}"))
                    .spawn(move || worker_loop(shared))
                    .expect("spawn pool worker")
            })
            .collect();
        Arc::new(SlotPool {
            shared,
            workers: Mutex::new(workers),
        })
    }

    /// Total worker slots.
    pub fn slots(&self) -> usize {
        self.shared.slots
    }

    /// Registers a tenant with a fair-share `weight` (higher = more
    /// slots under contention). Weight is clamped to be positive.
    pub fn register_tenant(&self, weight: f64) -> TenantId {
        let mut state = self.shared.state.lock().unwrap();
        let id = state.next_tenant;
        state.next_tenant += 1;
        // A joining tenant starts at the current minimum active virtual
        // time so it cannot claim "catch-up" slots for the past, nor be
        // penalised for arriving late.
        let vtime = state.min_active_vtime().unwrap_or(0.0);
        state.tenants.insert(
            id,
            TenantQueue {
                weight: weight.max(1e-9),
                vtime,
                queue: Default::default(),
            },
        );
        TenantId(id)
    }

    /// Removes a tenant, discarding any tasks it still has queued.
    /// Returns how many tasks were discarded.
    pub fn unregister_tenant(&self, tenant: TenantId) -> usize {
        let mut state = self.shared.state.lock().unwrap();
        let dropped = state
            .tenants
            .remove(&tenant.0)
            .map(|t| t.queue.len())
            .unwrap_or(0);
        self.shared.queued.fetch_sub(dropped, Ordering::SeqCst);
        dropped
    }

    /// Enqueues `task` for `tenant`. Returns `false` (dropping the
    /// task) if the tenant is unknown or the pool is shutting down.
    pub fn submit(&self, tenant: TenantId, task: PoolTask) -> bool {
        if self.shared.shutdown.load(Ordering::SeqCst) {
            return false;
        }
        let mut state = self.shared.state.lock().unwrap();
        let Some(tq) = state.tenants.get_mut(&tenant.0) else {
            return false;
        };
        let was_empty = tq.queue.is_empty();
        tq.queue.push_back((task, Instant::now()));
        if was_empty {
            // Re-activating after idle: forfeit unused past share.
            let floor = tq.vtime;
            let min = state.min_active_vtime().unwrap_or(floor);
            let tq = state.tenants.get_mut(&tenant.0).expect("still present");
            tq.vtime = tq.vtime.max(min.min(f64::MAX)).max(floor);
        }
        self.shared.queued.fetch_add(1, Ordering::SeqCst);
        drop(state);
        if let Some(obs) = &self.shared.obs {
            obs.registry
                .counter("pool_submitted_total", &[("tenant", &tenant.0.to_string())])
                .inc();
        }
        self.shared.record_occupancy();
        self.shared.ready.notify_one();
        true
    }

    /// Tasks currently queued (not yet running) across all tenants.
    pub fn queued(&self) -> usize {
        self.shared.queued.load(Ordering::SeqCst)
    }

    /// Slots currently executing a task.
    pub fn busy(&self) -> usize {
        self.shared.busy.load(Ordering::SeqCst)
    }

    /// Instantaneous utilisation in `[0, 1]`.
    pub fn utilisation(&self) -> f64 {
        self.busy() as f64 / self.shared.slots as f64
    }
}

impl Drop for SlotPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        {
            let _state = self.shared.state.lock().unwrap();
            self.shared.ready.notify_all();
        }
        for h in self.workers.lock().unwrap().drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: Arc<PoolShared>) {
    loop {
        let (task, enqueued, tenant, skew) = {
            let mut state = shared.state.lock().unwrap();
            loop {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if let Some((task, enqueued, tenant)) = state.pop_fair() {
                    shared.queued.fetch_sub(1, Ordering::SeqCst);
                    break (task, enqueued, tenant, state.vtime_skew());
                }
                state = shared.ready.wait(state).unwrap();
            }
        };
        shared.busy.fetch_add(1, Ordering::SeqCst);
        if let Some(obs) = &shared.obs {
            obs.registry.counter("pool_dispatched_total", &[]).inc();
            obs.registry
                .histogram("pool_wait_secs", &[("tenant", &tenant.to_string())])
                .observe(enqueued.elapsed().as_secs_f64());
            obs.registry.gauge("pool_vtime_skew", &[]).set(skew);
        }
        shared.record_occupancy();
        // Map attempts contain user code; a panic must not kill the
        // shared worker — the owning job's tracker sees the attempt
        // vanish and fails that job alone.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(task));
        shared.busy.fetch_sub(1, Ordering::SeqCst);
        shared.record_occupancy();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::time::Duration;

    fn drain(pool: &SlotPool) {
        while pool.queued() > 0 || pool.busy() > 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn executes_submitted_tasks() {
        let pool = SlotPool::new(4);
        let tenant = pool.register_tenant(1.0);
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..100 {
            let c = Arc::clone(&counter);
            assert!(pool.submit(
                tenant,
                Box::new(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                })
            ));
        }
        drain(&pool);
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn unknown_tenant_rejected() {
        let pool = SlotPool::new(1);
        assert!(!pool.submit(TenantId(99), Box::new(|| {})));
    }

    #[test]
    fn unregister_discards_queue() {
        let pool = SlotPool::new(1);
        let blocker = pool.register_tenant(1.0);
        let victim = pool.register_tenant(1.0);
        let gate = Arc::new(AtomicBool::new(false));
        let g = Arc::clone(&gate);
        pool.submit(
            blocker,
            Box::new(move || {
                while !g.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_millis(1));
                }
            }),
        );
        // Wait for the blocker to occupy the only slot.
        while pool.busy() == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        for _ in 0..5 {
            pool.submit(victim, Box::new(|| {}));
        }
        assert_eq!(pool.unregister_tenant(victim), 5);
        assert_eq!(pool.queued(), 0);
        gate.store(true, Ordering::SeqCst);
        drain(&pool);
    }

    #[test]
    fn fair_sharing_interleaves_equal_weights() {
        // One slot; tenant A floods the queue first, then B submits.
        // With fair queuing B's tasks must not all wait behind A's.
        let pool = SlotPool::new(1);
        let a = pool.register_tenant(1.0);
        let b = pool.register_tenant(1.0);
        let order = Arc::new(Mutex::new(Vec::new()));
        let gate = Arc::new(AtomicBool::new(false));
        {
            let g = Arc::clone(&gate);
            pool.submit(
                a,
                Box::new(move || {
                    while !g.load(Ordering::SeqCst) {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }),
            );
        }
        while pool.busy() == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        for i in 0..10u32 {
            let o = Arc::clone(&order);
            pool.submit(a, Box::new(move || o.lock().unwrap().push(('a', i))));
        }
        for i in 0..10u32 {
            let o = Arc::clone(&order);
            pool.submit(b, Box::new(move || o.lock().unwrap().push(('b', i))));
        }
        gate.store(true, Ordering::SeqCst);
        drain(&pool);
        let order = order.lock().unwrap();
        assert_eq!(order.len(), 20);
        // B must appear within the first few dispatches, not after all
        // of A's backlog.
        let first_b = order.iter().position(|(t, _)| *t == 'b').unwrap();
        assert!(
            first_b <= 2,
            "tenant b starved: first b at position {first_b} in {order:?}"
        );
        // And the tail must still contain both tenants interleaved:
        // among the first 10 dispatches, each tenant gets 4-6.
        let a_in_front = order.iter().take(10).filter(|(t, _)| *t == 'a').count();
        assert!(
            (4..=6).contains(&a_in_front),
            "unfair split in first 10: {order:?}"
        );
    }

    #[test]
    fn weights_bias_the_share() {
        let pool = SlotPool::new(1);
        let heavy = pool.register_tenant(3.0);
        let light = pool.register_tenant(1.0);
        let order = Arc::new(Mutex::new(Vec::new()));
        let gate = Arc::new(AtomicBool::new(false));
        {
            let g = Arc::clone(&gate);
            pool.submit(
                heavy,
                Box::new(move || {
                    while !g.load(Ordering::SeqCst) {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }),
            );
        }
        while pool.busy() == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        for i in 0..12u32 {
            let o = Arc::clone(&order);
            pool.submit(heavy, Box::new(move || o.lock().unwrap().push(('h', i))));
            let o = Arc::clone(&order);
            pool.submit(light, Box::new(move || o.lock().unwrap().push(('l', i))));
        }
        gate.store(true, Ordering::SeqCst);
        drain(&pool);
        let order = order.lock().unwrap();
        let h_in_front = order.iter().take(8).filter(|(t, _)| *t == 'h').count();
        assert!(
            h_in_front >= 5,
            "3:1 weight should dominate early dispatches: {order:?}"
        );
    }

    #[test]
    fn instrumented_pool_records_metrics() {
        let obs = Obs::shared();
        let pool = SlotPool::new_with_obs(2, Some(Arc::clone(&obs)));
        let tenant = pool.register_tenant(1.0);
        for _ in 0..10 {
            pool.submit(tenant, Box::new(|| {}));
        }
        drain(&pool);
        let snap = obs.registry.snapshot();
        assert_eq!(snap.counter_total("pool_submitted_total"), 10);
        assert_eq!(snap.counter_total("pool_dispatched_total"), 10);
        assert_eq!(snap.gauge("pool_slots"), Some(2.0));
        let text = obs.registry.render_prometheus();
        assert!(
            text.contains("pool_wait_secs_count{tenant=\"0\"} 10"),
            "missing wait histogram: {text}"
        );
        // Occupancy counters also stream onto trace lane pid 0.
        assert!(obs
            .tracer
            .events()
            .iter()
            .any(|e| e.phase == 'C' && e.name == "pool"));
    }

    #[test]
    fn panicking_task_does_not_kill_workers() {
        let pool = SlotPool::new(2);
        let tenant = pool.register_tenant(1.0);
        pool.submit(tenant, Box::new(|| panic!("user code exploded")));
        drain(&pool);
        let done = Arc::new(AtomicBool::new(false));
        let d = Arc::clone(&done);
        pool.submit(tenant, Box::new(move || d.store(true, Ordering::SeqCst)));
        drain(&pool);
        assert!(done.load(Ordering::SeqCst), "worker survived the panic");
    }
}
