//! The JobTracker: schedules map tasks in random order on a pool of
//! task-tracker threads, streams map outputs to barrier-less reduce
//! tasks, and implements task dropping, mid-flight kills and speculative
//! execution.

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, RecvTimeoutError, Sender};
use rand::rngs::StdRng;
use rand::SeedableRng;

use approxhadoop_stats::sampling::random_order;

use crate::control::{Coordinator, FixedCoordinator, JobControl, MapDirective};
use crate::event::{JobEvent, JobSession};
use crate::fault::{FaultDecision, FaultPlan, FaultPolicy};
use crate::input::InputSource;
use crate::instrument::{BoundTracker, EngineObs};
use crate::mapper::Mapper;
use crate::metrics::{JobMetrics, MapStats, TaskOutcome, TaskOutcomeRecord};
use crate::pool::{SlotPool, TenantId};
use crate::reducer::{DedupState, MapOutputMeta, ReduceContext, ReduceEvent, Reducer};
use crate::types::{partition_for, TaskId};
use crate::{Result, RuntimeError};

/// Configuration of one MapReduce job.
#[derive(Debug, Clone)]
pub struct JobConfig {
    /// Concurrent map tasks across the cluster (total map slots).
    pub map_slots: usize,
    /// Simulated servers hosting the slots (slots are spread round-robin
    /// across servers; the scheduler prefers tasks whose input block has
    /// a replica on the assigned server — HDFS-style data locality).
    pub servers: usize,
    /// Number of reduce tasks.
    pub reduce_tasks: usize,
    /// Within-block input sampling ratio applied by the default policy
    /// (`1.0` = precise).
    pub sampling_ratio: f64,
    /// Fraction of map tasks dropped by the default policy.
    pub drop_ratio: f64,
    /// Seed for task ordering, drop selection and per-task sampling.
    pub seed: u64,
    /// Enable speculative execution of stragglers.
    pub speculative: bool,
    /// A task is a straggler when it runs longer than
    /// `straggler_factor × mean completed-map time`. Must be finite and
    /// at least `1.0` (below that, every task is "slower than itself"
    /// and gets speculatively relaunched).
    pub straggler_factor: f64,
    /// Deterministic fault injection (testing/chaos); `None` injects
    /// nothing. DFS-level knobs additionally need the plan installed on
    /// the cluster via
    /// [`DfsCluster::set_read_faults`](approxhadoop_dfs::DfsCluster::set_read_faults).
    pub fault_plan: Option<FaultPlan>,
    /// How the tracker reacts to failed map attempts: bounded retry with
    /// backoff, server blacklisting, and degrade-to-drop. The default
    /// policy (no retries, no degrading) fails the job on the first
    /// exhausted task, matching the engine's historical behaviour.
    pub fault_policy: FaultPolicy,
    /// Optional observability context: when set, the tracker records
    /// registry metrics and a `job → wave → task` span tree into it.
    /// `None` (the default) runs fully uninstrumented.
    pub obs: Option<Arc<approxhadoop_obs::Obs>>,
    /// Enable map-side combining for mappers that provide a
    /// [`crate::combine::Combiner`] (on by default). Turning this off
    /// forces the raw per-pair shuffle path — useful for A/B perf
    /// comparisons; results are identical either way.
    pub combining: bool,
}

impl Default for JobConfig {
    fn default() -> Self {
        JobConfig {
            map_slots: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            servers: 1,
            reduce_tasks: 1,
            sampling_ratio: 1.0,
            drop_ratio: 0.0,
            seed: 0,
            speculative: false,
            straggler_factor: 2.0,
            fault_plan: None,
            fault_policy: FaultPolicy::default(),
            obs: None,
            combining: true,
        }
    }
}

impl JobConfig {
    fn validate(&self) -> Result<()> {
        if self.map_slots == 0 {
            return Err(RuntimeError::invalid("map_slots must be positive"));
        }
        if self.servers == 0 {
            return Err(RuntimeError::invalid("servers must be positive"));
        }
        if self.reduce_tasks == 0 {
            return Err(RuntimeError::invalid("reduce_tasks must be positive"));
        }
        if !(self.sampling_ratio > 0.0 && self.sampling_ratio <= 1.0) {
            return Err(RuntimeError::invalid(format!(
                "sampling_ratio must lie in (0, 1], got {}",
                self.sampling_ratio
            )));
        }
        if !(0.0..1.0).contains(&self.drop_ratio) {
            return Err(RuntimeError::invalid(format!(
                "drop_ratio must lie in [0, 1), got {}",
                self.drop_ratio
            )));
        }
        if !(self.straggler_factor.is_finite() && self.straggler_factor >= 1.0) {
            return Err(RuntimeError::invalid(format!(
                "straggler_factor must be finite and >= 1.0, got {}",
                self.straggler_factor
            )));
        }
        if let Some(plan) = &self.fault_plan {
            plan.validate().map_err(RuntimeError::invalid)?;
        }
        self.fault_policy
            .validate()
            .map_err(RuntimeError::invalid)?;
        Ok(())
    }
}

/// The outcome of a job: reducer outputs (concatenated in reducer order)
/// plus execution metrics.
#[derive(Debug)]
pub struct JobResult<O> {
    /// All reducers' outputs.
    pub outputs: Vec<O>,
    /// Execution metrics.
    pub metrics: JobMetrics,
}

struct WorkItem {
    task: TaskId,
    attempt: u32,
    sampling_ratio: f64,
    seed: u64,
    kill: Arc<AtomicBool>,
    fault: Option<Arc<FaultPlan>>,
    combining: bool,
}

enum WorkerMsg {
    Completed {
        stats: MapStats,
        attempt: u32,
    },
    Killed {
        task: TaskId,
        attempt: u32,
    },
    Failed {
        task: TaskId,
        attempt: u32,
        error: RuntimeError,
    },
}

struct RunningAttempt {
    started: Instant,
    kill: Arc<AtomicBool>,
    server: usize,
}

/// A failed task waiting out its backoff before redispatch.
struct RetryEntry {
    due: Instant,
    task: usize,
    attempt: u32,
    sampling_ratio: f64,
    /// The server whose attempt just failed — retries prefer any other.
    avoid_server: Option<usize>,
}

/// Runs a job with the default fixed-ratio policy derived from
/// `config.sampling_ratio` / `config.drop_ratio` — the paper's
/// "user-specified dropping/sampling ratios" mode.
pub fn run_job<S, M, R, FR>(
    input: &S,
    mapper: &M,
    make_reducer: FR,
    config: JobConfig,
) -> Result<JobResult<R::Output>>
where
    S: InputSource,
    M: Mapper<Item = S::Item>,
    R: Reducer<Key = M::Key, Value = M::Value>,
    FR: Fn(usize) -> R + Sync,
{
    config.validate()?;
    let total = input.splits().len();
    if total == 0 {
        return Err(RuntimeError::invalid("input has no splits"));
    }
    let mut coordinator =
        FixedCoordinator::new(total, config.sampling_ratio, config.drop_ratio, config.seed);
    run_job_with_coordinator(input, mapper, make_reducer, config, &mut coordinator)
}

/// Runs a job under an explicit [`Coordinator`] policy (used by the
/// target-error-bound controller in `approxhadoop-core`).
pub fn run_job_with_coordinator<S, M, R, FR>(
    input: &S,
    mapper: &M,
    make_reducer: FR,
    config: JobConfig,
    coordinator: &mut dyn Coordinator,
) -> Result<JobResult<R::Output>>
where
    S: InputSource,
    M: Mapper<Item = S::Item>,
    R: Reducer<Key = M::Key, Value = M::Value>,
    FR: Fn(usize) -> R + Sync,
{
    config.validate()?;
    let splits = input.splits();
    let total = splits.len();
    if total == 0 {
        return Err(RuntimeError::invalid("input has no splits"));
    }
    let start = Instant::now();
    let control = Arc::new(JobControl::new(config.reduce_tasks));
    let num_reducers = config.reduce_tasks;

    let servers = config.servers.min(config.map_slots).max(1);
    let mut task_txs: Vec<Sender<WorkItem>> = Vec::with_capacity(servers);
    let mut task_rxs = Vec::with_capacity(servers);
    for _ in 0..servers {
        let (tx, rx) = unbounded::<WorkItem>();
        task_txs.push(tx);
        task_rxs.push(rx);
    }
    let mut capacity = vec![0usize; servers];
    for w in 0..config.map_slots {
        capacity[w % servers] += 1;
    }
    let (msg_tx, msg_rx) = unbounded::<WorkerMsg>();
    let mut reducer_txs: Vec<Sender<ReduceEvent<M::Key, M::Value>>> = Vec::new();
    let mut reducer_rxs = VecDeque::new();
    for _ in 0..num_reducers {
        let (tx, rx) = unbounded();
        reducer_txs.push(tx);
        reducer_rxs.push_back(rx);
    }

    let make_reducer = &make_reducer;
    let scope_result = crossbeam::thread::scope(|s| {
        // ---- reduce tasks ----
        let mut reducer_handles = Vec::new();
        for r in 0..num_reducers {
            let rx = reducer_rxs.pop_front().expect("one rx per reducer");
            let control = Arc::clone(&control);
            reducer_handles.push(s.spawn(move |_| {
                let mut reducer = make_reducer(r);
                let mut ctx = ReduceContext::new(r, total, control);
                let mut dedup = DedupState::new();
                for event in rx.iter() {
                    match event {
                        ReduceEvent::MapOutput { meta, pairs } => {
                            if dedup.first(meta.task) {
                                ctx.note_map();
                                reducer.on_map_output(&meta, pairs, &mut ctx);
                            }
                        }
                        ReduceEvent::MapDropped { task } => {
                            if dedup.first(task) {
                                ctx.note_map();
                                reducer.on_map_dropped(task, &mut ctx);
                            }
                        }
                    }
                }
                reducer.finish(&mut ctx)
            }));
        }

        // ---- task trackers (map slots, spread across servers) ----
        for w in 0..config.map_slots {
            let task_rx = task_rxs[w % servers].clone();
            let msg_tx = msg_tx.clone();
            let reducer_txs = reducer_txs.clone();
            s.spawn(move |_| {
                for work in task_rx.iter() {
                    run_map_attempt(input, mapper, &work, &reducer_txs, &msg_tx);
                }
            });
        }
        drop(task_rxs);
        drop(msg_tx);

        // ---- JobTracker loop ----
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut pending: VecDeque<usize> = random_order(&mut rng, total).into_iter().collect();
        let mut metrics = JobMetrics {
            total_maps: total,
            ..Default::default()
        };
        let mut running: HashMap<(usize, u32), RunningAttempt> = HashMap::new();
        let mut busy = vec![0usize; servers];
        let mut completed: HashSet<usize> = HashSet::new();
        let mut duplicated: HashSet<usize> = HashSet::new();
        let mut finished = 0usize;
        let mut dropping = false;
        let mut fatal: Option<RuntimeError> = None;
        let mut last_wave = 0usize;
        let mut eobs = config
            .obs
            .as_ref()
            .map(|o| EngineObs::new(Arc::clone(o), 1, "run_job"));
        let mut bound_tracker = BoundTracker::new(start, num_reducers);
        let policy = config.fault_policy.clone();
        let fault: Option<Arc<FaultPlan>> = config
            .fault_plan
            .as_ref()
            .filter(|p| p.injects_map_faults())
            .cloned()
            .map(Arc::new);
        let mut failures: HashMap<usize, u32> = HashMap::new();
        let mut task_ratio: HashMap<usize, f64> = HashMap::new();
        let mut retry_queue: Vec<RetryEntry> = Vec::new();
        let mut server_failures = vec![0u32; servers];
        let mut blacklisted = vec![false; servers];

        let notify_drop = |task: usize, txs: &[Sender<ReduceEvent<M::Key, M::Value>>]| {
            for tx in txs {
                let _ = tx.send(ReduceEvent::MapDropped { task: TaskId(task) });
            }
        };

        macro_rules! handle_msg {
            ($msg:expr) => {
                match $msg {
                    WorkerMsg::Completed { stats, attempt } => {
                        if let Some(ra) = running.remove(&(stats.task.0, attempt)) {
                            busy[ra.server] = busy[ra.server].saturating_sub(1);
                        }
                        if completed.insert(stats.task.0) {
                            finished += 1;
                            metrics.executed_maps += 1;
                            metrics.total_records += stats.total_records;
                            metrics.sampled_records += stats.sampled_records;
                            metrics.emitted_pairs += stats.emitted;
                            metrics.shuffled_pairs += stats.shuffled;
                            coordinator.on_map_complete(&stats);
                            metrics.task_outcomes.push(TaskOutcomeRecord {
                                task: stats.task,
                                outcome: TaskOutcome::Completed,
                            });
                            if let Some(e) = eobs.as_mut() {
                                e.task_completed(&stats);
                                e.task_outcome(TaskOutcome::Completed);
                            }
                            metrics.map_stats.push(stats);
                            // Kill the losing sibling attempt, if any.
                            for ((t, _a), ra) in running.iter() {
                                if *t == stats.task.0 {
                                    ra.kill.store(true, Ordering::SeqCst);
                                }
                            }
                        }
                    }
                    WorkerMsg::Killed { task, attempt } => {
                        if let Some(ra) = running.remove(&(task.0, attempt)) {
                            busy[ra.server] = busy[ra.server].saturating_sub(1);
                        }
                        let sibling_running = running.keys().any(|(t, _)| *t == task.0);
                        if !completed.contains(&task.0) && !sibling_running {
                            finished += 1;
                            metrics.killed_maps += 1;
                            metrics.task_outcomes.push(TaskOutcomeRecord {
                                task,
                                outcome: TaskOutcome::Killed,
                            });
                            if let Some(e) = eobs.as_ref() {
                                e.task_outcome(TaskOutcome::Killed);
                            }
                            if fatal.is_none() {
                                notify_drop(task.0, &reducer_txs);
                            }
                        }
                    }
                    WorkerMsg::Failed {
                        task,
                        attempt,
                        error,
                    } => {
                        let mut failed_server = None;
                        if let Some(ra) = running.remove(&(task.0, attempt)) {
                            busy[ra.server] = busy[ra.server].saturating_sub(1);
                            failed_server = Some(ra.server);
                            server_failures[ra.server] += 1;
                            if policy.blacklist_after > 0
                                && !blacklisted[ra.server]
                                && server_failures[ra.server] >= policy.blacklist_after
                            {
                                blacklisted[ra.server] = true;
                                if let Some(e) = eobs.as_ref() {
                                    e.server_blacklisted();
                                }
                            }
                        }
                        metrics.failed_maps += 1;
                        if let Some(e) = eobs.as_ref() {
                            e.task_failed();
                        }
                        let sibling_running = running.keys().any(|(t, _)| *t == task.0);
                        if !completed.contains(&task.0) && !sibling_running {
                            let fails = failures.entry(task.0).or_insert(0);
                            *fails += 1;
                            if !dropping && *fails <= policy.max_task_retries {
                                metrics.retried_maps += 1;
                                if let Some(e) = eobs.as_ref() {
                                    e.task_retry();
                                }
                                retry_queue.push(RetryEntry {
                                    due: Instant::now() + policy.backoff_for(*fails),
                                    task: task.0,
                                    attempt: attempt + 1,
                                    sampling_ratio: task_ratio.get(&task.0).copied().unwrap_or(1.0),
                                    avoid_server: failed_server,
                                });
                            } else if policy.degrade_to_drop {
                                finished += 1;
                                metrics.degraded_to_drop += 1;
                                metrics.task_outcomes.push(TaskOutcomeRecord {
                                    task,
                                    outcome: TaskOutcome::Failed,
                                });
                                if let Some(e) = eobs.as_ref() {
                                    e.task_outcome(TaskOutcome::Failed);
                                    e.task_degraded();
                                }
                                notify_drop(task.0, &reducer_txs);
                            } else {
                                finished += 1;
                                metrics.task_outcomes.push(TaskOutcomeRecord {
                                    task,
                                    outcome: TaskOutcome::Failed,
                                });
                                if let Some(e) = eobs.as_ref() {
                                    e.task_outcome(TaskOutcome::Failed);
                                }
                                if fatal.is_none() {
                                    fatal = Some(error);
                                }
                                dropping = true;
                            }
                        }
                    }
                }
            };
        }

        while finished < total {
            // 1. Early-termination check (reduce-initiated or policy).
            if !dropping && (control.drop_requested() || coordinator.want_drop_remaining(&control))
            {
                dropping = true;
            }
            if dropping {
                for entry in retry_queue.drain(..) {
                    finished += 1;
                    metrics.dropped_maps += 1;
                    metrics.task_outcomes.push(TaskOutcomeRecord {
                        task: TaskId(entry.task),
                        outcome: TaskOutcome::Dropped,
                    });
                    if let Some(e) = eobs.as_ref() {
                        e.task_outcome(TaskOutcome::Dropped);
                    }
                    if fatal.is_none() {
                        notify_drop(entry.task, &reducer_txs);
                    }
                }
                while let Some(t) = pending.pop_front() {
                    finished += 1;
                    metrics.dropped_maps += 1;
                    metrics.task_outcomes.push(TaskOutcomeRecord {
                        task: TaskId(t),
                        outcome: TaskOutcome::Dropped,
                    });
                    if let Some(e) = eobs.as_ref() {
                        e.task_outcome(TaskOutcome::Dropped);
                    }
                    if fatal.is_none() {
                        notify_drop(t, &reducer_txs);
                    }
                }
                for ra in running.values() {
                    ra.kill.store(true, Ordering::SeqCst);
                }
            }

            // 2a. Redispatch failed tasks whose retry backoff elapsed,
            //     preferring a server other than the one that just
            //     failed and skipping blacklisted servers (unless every
            //     server is blacklisted).
            if !dropping {
                loop {
                    let now = Instant::now();
                    let Some(pos) = retry_queue.iter().position(|e| e.due <= now) else {
                        break;
                    };
                    let all_black = blacklisted.iter().all(|&b| b);
                    let usable =
                        |sv: usize| busy[sv] < capacity[sv] && (all_black || !blacklisted[sv]);
                    let avoid = retry_queue[pos].avoid_server;
                    let Some(server) = (0..servers)
                        .find(|&sv| usable(sv) && Some(sv) != avoid)
                        .or_else(|| (0..servers).find(|&sv| usable(sv)))
                    else {
                        break;
                    };
                    let entry = retry_queue.swap_remove(pos);
                    let kill = Arc::new(AtomicBool::new(false));
                    busy[server] += 1;
                    running.insert(
                        (entry.task, entry.attempt),
                        RunningAttempt {
                            started: Instant::now(),
                            kill: Arc::clone(&kill),
                            server,
                        },
                    );
                    let _ = task_txs[server].send(WorkItem {
                        task: TaskId(entry.task),
                        attempt: entry.attempt,
                        sampling_ratio: entry.sampling_ratio,
                        // Same read seed as the original attempt: a retry
                        // re-draws the exact sample, keeping the estimator
                        // independent of the fault history.
                        seed: config.seed ^ (entry.task as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                        kill,
                        fault: fault.clone(),
                        combining: config.combining,
                    });
                }
            }

            // 2. Dispatch while slots are free. Directives are requested
            //    lazily so the policy can adapt between waves, and each
            //    free server prefers a task whose block it hosts (HDFS
            //    data locality).
            while !dropping && !pending.is_empty() {
                let all_black = blacklisted.iter().all(|&b| b);
                let Some(server) = (0..servers)
                    .find(|&sv| busy[sv] < capacity[sv] && (all_black || !blacklisted[sv]))
                else {
                    break;
                };
                let local_pos = pending
                    .iter()
                    .position(|&t| splits[t].locations.contains(&server));
                let local = local_pos.is_some();
                let t = pending
                    .remove(local_pos.unwrap_or(0))
                    .expect("position from scan");
                match coordinator.directive(TaskId(t), &splits[t]) {
                    MapDirective::Drop => {
                        finished += 1;
                        metrics.dropped_maps += 1;
                        metrics.task_outcomes.push(TaskOutcomeRecord {
                            task: TaskId(t),
                            outcome: TaskOutcome::Dropped,
                        });
                        if let Some(e) = eobs.as_ref() {
                            e.directive(false, 0.0);
                            e.task_outcome(TaskOutcome::Dropped);
                        }
                        notify_drop(t, &reducer_txs);
                    }
                    MapDirective::Run { sampling_ratio } => {
                        if let Some(e) = eobs.as_ref() {
                            e.directive(true, sampling_ratio);
                        }
                        let kill = Arc::new(AtomicBool::new(false));
                        busy[server] += 1;
                        if local {
                            metrics.local_maps += 1;
                        }
                        task_ratio.insert(t, sampling_ratio);
                        running.insert(
                            (t, 0),
                            RunningAttempt {
                                started: Instant::now(),
                                kill: Arc::clone(&kill),
                                server,
                            },
                        );
                        let _ = task_txs[server].send(WorkItem {
                            task: TaskId(t),
                            attempt: 0,
                            sampling_ratio,
                            seed: config.seed ^ (t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                            kill,
                            fault: fault.clone(),
                            combining: config.combining,
                        });
                    }
                }
            }
            if finished >= total {
                break;
            }

            // 3. Speculative execution: duplicate stragglers once the
            //    queue is empty and we have a baseline.
            if config.speculative && !dropping && pending.is_empty() && metrics.map_stats.len() >= 3
            {
                let mean = metrics.mean_map_secs();
                let threshold = (config.straggler_factor * mean).max(0.05);
                let stragglers: Vec<usize> = running
                    .iter()
                    .filter(|((t, a), ra)| {
                        *a == 0
                            && !duplicated.contains(t)
                            && ra.started.elapsed().as_secs_f64() > threshold
                    })
                    .map(|((t, _), _)| *t)
                    .collect();
                for t in stragglers {
                    duplicated.insert(t);
                    metrics.speculative_attempts += 1;
                    let kill = Arc::new(AtomicBool::new(false));
                    // Duplicate on the least-loaded non-blacklisted
                    // server (not the one already struggling with the
                    // original attempt).
                    let server = (0..servers)
                        .filter(|&sv| !blacklisted[sv])
                        .min_by_key(|&sv| busy[sv])
                        .or_else(|| (0..servers).min_by_key(|&sv| busy[sv]))
                        .unwrap_or(0);
                    busy[server] += 1;
                    running.insert(
                        (t, 1),
                        RunningAttempt {
                            started: Instant::now(),
                            kill: Arc::clone(&kill),
                            server,
                        },
                    );
                    let _ = task_txs[server].send(WorkItem {
                        task: TaskId(t),
                        attempt: 1,
                        sampling_ratio: 1.0,
                        seed: config.seed ^ (t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                        kill,
                        fault: fault.clone(),
                        combining: config.combining,
                    });
                }
            }

            // 4. Wait for worker events.
            match msg_rx.recv_timeout(Duration::from_millis(10)) {
                Ok(msg) => {
                    handle_msg!(msg);
                    while let Ok(extra) = msg_rx.try_recv() {
                        handle_msg!(extra);
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    if fatal.is_none() {
                        fatal = Some(RuntimeError::TaskPanicked {
                            what: "all task trackers exited early".into(),
                        });
                    }
                    break;
                }
            }

            // 5. Trace/telemetry bookkeeping (no-ops when uninstrumented).
            //    Once a fatal error is latched the bound is meaningless
            //    (the estimate will be discarded), so stop publishing it.
            if finished != last_wave {
                last_wave = finished;
                if let Some(e) = eobs.as_mut() {
                    let bound = if fatal.is_none() {
                        control.worst_bound_across_reducers(1)
                    } else {
                        None
                    };
                    e.wave_tick(finished, total, bound);
                }
            }
            if fatal.is_none() {
                bound_tracker.poll(&control, &mut metrics.bound_series, eobs.as_ref());
            }
        }

        // Shut down: close the dispatch channel (workers exit after
        // draining), then release our reducer senders so reducers can
        // finish once the last worker exits.
        for ra in running.values() {
            ra.kill.store(true, Ordering::SeqCst);
        }
        drop(task_txs);
        drop(reducer_txs);

        let mut outputs = Vec::new();
        let mut panicked = false;
        for h in reducer_handles {
            match h.join() {
                Ok(out) => outputs.extend(out),
                Err(_) => panicked = true,
            }
        }
        metrics.wall_secs = start.elapsed().as_secs_f64();
        if fatal.is_none() {
            bound_tracker.poll(&control, &mut metrics.bound_series, eobs.as_ref());
        }
        if let Some(e) = eobs.as_mut() {
            e.finish(&metrics);
        }
        if let Some(e) = fatal {
            return Err(e);
        }
        if panicked {
            return Err(RuntimeError::TaskPanicked {
                what: "reduce task".into(),
            });
        }
        check_degrade_budget(&policy, &metrics, &control)?;
        Ok(JobResult { outputs, metrics })
    });

    match scope_result {
        Ok(job) => job,
        Err(_) => Err(RuntimeError::TaskPanicked {
            what: "task tracker".into(),
        }),
    }
}

/// Runs a job on a shared [`SlotPool`] instead of job-private
/// task-tracker threads — the service-mode entry point.
///
/// Differences from [`run_job_with_coordinator`]:
///
/// * map attempts execute on `pool` slots shared with other concurrent
///   jobs, queued under `tenant` for weighted fair sharing; the job's
///   own `config.map_slots` caps *its* attempts in flight, while the
///   pool caps how many actually run at once across all jobs;
/// * the per-job handle in `session` adds cancellation (job fails with
///   [`RuntimeError::Cancelled`]), a deadline (remaining maps are
///   dropped and the job completes **approximately**, flagged via
///   [`JobMetrics::deadline_hit`]) and a stream of
///   [`JobEvent::Wave`] / [`JobEvent::Estimate`] progress events;
/// * simulated data locality and speculative execution do not apply —
///   the pool is one shared cluster, not per-job virtual servers.
///
/// `input` and `mapper` are `Arc`s because attempts outlive the borrow
/// a scoped thread could give them: they run on pool workers owned by
/// the service, not by this call.
#[allow(clippy::too_many_arguments)] // the service-facing surface: job + policy + pool + session
pub fn run_job_on_pool<S, M, R, FR>(
    input: Arc<S>,
    mapper: Arc<M>,
    make_reducer: FR,
    config: JobConfig,
    coordinator: &mut dyn Coordinator,
    pool: &SlotPool,
    tenant: TenantId,
    session: &JobSession,
) -> Result<JobResult<R::Output>>
where
    S: InputSource + 'static,
    M: Mapper<Item = S::Item> + 'static,
    R: Reducer<Key = M::Key, Value = M::Value> + Send + 'static,
    R::Output: Send + 'static,
    FR: Fn(usize) -> R,
{
    config.validate()?;
    let splits = input.splits();
    let total = splits.len();
    if total == 0 {
        return Err(RuntimeError::invalid("input has no splits"));
    }
    let start = Instant::now();
    let control = Arc::new(JobControl::new(config.reduce_tasks));
    let num_reducers = config.reduce_tasks;

    let (msg_tx, msg_rx) = unbounded::<WorkerMsg>();
    let mut reducer_txs: Vec<Sender<ReduceEvent<M::Key, M::Value>>> = Vec::new();
    let mut reducer_handles = Vec::new();
    for r in 0..num_reducers {
        let (tx, rx) = unbounded::<ReduceEvent<M::Key, M::Value>>();
        reducer_txs.push(tx);
        let control = Arc::clone(&control);
        let mut reducer = make_reducer(r);
        reducer_handles.push(std::thread::spawn(move || {
            let mut ctx = ReduceContext::new(r, total, control);
            let mut dedup = DedupState::new();
            for event in rx.iter() {
                match event {
                    ReduceEvent::MapOutput { meta, pairs } => {
                        if dedup.first(meta.task) {
                            ctx.note_map();
                            reducer.on_map_output(&meta, pairs, &mut ctx);
                        }
                    }
                    ReduceEvent::MapDropped { task } => {
                        if dedup.first(task) {
                            ctx.note_map();
                            reducer.on_map_dropped(task, &mut ctx);
                        }
                    }
                }
            }
            reducer.finish(&mut ctx)
        }));
    }

    // ---- JobTracker loop (runs on the calling thread) ----
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut pending: VecDeque<usize> = random_order(&mut rng, total).into_iter().collect();
    let mut metrics = JobMetrics {
        total_maps: total,
        ..Default::default()
    };
    let in_flight_cap = config.map_slots;
    let mut running: HashMap<usize, Arc<AtomicBool>> = HashMap::new();
    let mut completed: HashSet<usize> = HashSet::new();
    let mut finished = 0usize;
    let mut dropping = false;
    let mut fatal: Option<RuntimeError> = None;
    let mut last_wave = 0usize;
    let mut last_bound: Option<f64> = None;
    let mut eobs = config
        .obs
        .as_ref()
        .map(|o| EngineObs::new(Arc::clone(o), session.job.0 + 2, &session.job.to_string()));
    let mut bound_tracker = BoundTracker::new(start, num_reducers);
    let policy = config.fault_policy.clone();
    let fault: Option<Arc<FaultPlan>> = config
        .fault_plan
        .as_ref()
        .filter(|p| p.injects_map_faults())
        .cloned()
        .map(Arc::new);
    let mut failures: HashMap<usize, u32> = HashMap::new();
    let mut task_ratio: HashMap<usize, f64> = HashMap::new();
    let mut retry_queue: Vec<RetryEntry> = Vec::new();

    let notify_drop = |task: usize, txs: &[Sender<ReduceEvent<M::Key, M::Value>>]| {
        for tx in txs {
            let _ = tx.send(ReduceEvent::MapDropped { task: TaskId(task) });
        }
    };

    macro_rules! handle_msg {
        ($msg:expr) => {
            match $msg {
                WorkerMsg::Completed { stats, .. } => {
                    running.remove(&stats.task.0);
                    if completed.insert(stats.task.0) {
                        finished += 1;
                        metrics.executed_maps += 1;
                        metrics.total_records += stats.total_records;
                        metrics.sampled_records += stats.sampled_records;
                        metrics.emitted_pairs += stats.emitted;
                        metrics.shuffled_pairs += stats.shuffled;
                        coordinator.on_map_complete(&stats);
                        metrics.task_outcomes.push(TaskOutcomeRecord {
                            task: stats.task,
                            outcome: TaskOutcome::Completed,
                        });
                        if let Some(e) = eobs.as_mut() {
                            e.task_completed(&stats);
                            e.task_outcome(TaskOutcome::Completed);
                        }
                        metrics.map_stats.push(stats);
                    }
                }
                WorkerMsg::Killed { task, .. } => {
                    running.remove(&task.0);
                    if !completed.contains(&task.0) {
                        finished += 1;
                        metrics.killed_maps += 1;
                        metrics.task_outcomes.push(TaskOutcomeRecord {
                            task,
                            outcome: TaskOutcome::Killed,
                        });
                        if let Some(e) = eobs.as_ref() {
                            e.task_outcome(TaskOutcome::Killed);
                        }
                        if fatal.is_none() {
                            notify_drop(task.0, &reducer_txs);
                        }
                    }
                }
                WorkerMsg::Failed {
                    task,
                    attempt,
                    error,
                } => {
                    running.remove(&task.0);
                    metrics.failed_maps += 1;
                    if let Some(e) = eobs.as_ref() {
                        e.task_failed();
                    }
                    if !completed.contains(&task.0) {
                        let fails = failures.entry(task.0).or_insert(0);
                        *fails += 1;
                        if !dropping && *fails <= policy.max_task_retries {
                            metrics.retried_maps += 1;
                            if let Some(e) = eobs.as_ref() {
                                e.task_retry();
                            }
                            session.emit(JobEvent::TaskRetry {
                                job: session.job,
                                task,
                                attempt: attempt + 1,
                                reason: error.to_string(),
                            });
                            retry_queue.push(RetryEntry {
                                due: Instant::now() + policy.backoff_for(*fails),
                                task: task.0,
                                attempt: attempt + 1,
                                sampling_ratio: task_ratio.get(&task.0).copied().unwrap_or(1.0),
                                avoid_server: None,
                            });
                        } else if policy.degrade_to_drop {
                            finished += 1;
                            metrics.degraded_to_drop += 1;
                            metrics.task_outcomes.push(TaskOutcomeRecord {
                                task,
                                outcome: TaskOutcome::Failed,
                            });
                            if let Some(e) = eobs.as_ref() {
                                e.task_outcome(TaskOutcome::Failed);
                                e.task_degraded();
                            }
                            notify_drop(task.0, &reducer_txs);
                        } else {
                            finished += 1;
                            metrics.task_outcomes.push(TaskOutcomeRecord {
                                task,
                                outcome: TaskOutcome::Failed,
                            });
                            if let Some(e) = eobs.as_ref() {
                                e.task_outcome(TaskOutcome::Failed);
                            }
                            if fatal.is_none() {
                                fatal = Some(error);
                            }
                            dropping = true;
                        }
                    }
                }
            }
        };
    }

    while finished < total {
        // 1. Owner-driven termination: cancellation aborts, a passed
        //    deadline degrades to an approximate result.
        if session.cancelled() && fatal.is_none() {
            fatal = Some(RuntimeError::Cancelled);
            dropping = true;
        }
        if let Some(deadline) = session.deadline {
            if !dropping && Instant::now() >= deadline {
                metrics.deadline_hit = true;
                dropping = true;
            }
        }

        // 2. Reduce-initiated or policy-initiated early termination.
        if !dropping && (control.drop_requested() || coordinator.want_drop_remaining(&control)) {
            dropping = true;
        }
        if dropping {
            for entry in retry_queue.drain(..) {
                finished += 1;
                metrics.dropped_maps += 1;
                metrics.task_outcomes.push(TaskOutcomeRecord {
                    task: TaskId(entry.task),
                    outcome: TaskOutcome::Dropped,
                });
                if let Some(e) = eobs.as_ref() {
                    e.task_outcome(TaskOutcome::Dropped);
                }
                if fatal.is_none() {
                    notify_drop(entry.task, &reducer_txs);
                }
            }
            while let Some(t) = pending.pop_front() {
                finished += 1;
                metrics.dropped_maps += 1;
                metrics.task_outcomes.push(TaskOutcomeRecord {
                    task: TaskId(t),
                    outcome: TaskOutcome::Dropped,
                });
                if let Some(e) = eobs.as_ref() {
                    e.task_outcome(TaskOutcome::Dropped);
                }
                if fatal.is_none() {
                    notify_drop(t, &reducer_txs);
                }
            }
            for kill in running.values() {
                kill.store(true, Ordering::SeqCst);
            }
        }

        // 2a. Redispatch failed tasks whose retry backoff elapsed.
        while !dropping && running.len() < in_flight_cap {
            let now = Instant::now();
            let Some(pos) = retry_queue.iter().position(|e| e.due <= now) else {
                break;
            };
            let entry = retry_queue.swap_remove(pos);
            let kill = Arc::new(AtomicBool::new(false));
            let work = WorkItem {
                task: TaskId(entry.task),
                attempt: entry.attempt,
                sampling_ratio: entry.sampling_ratio,
                // Same read seed as the original attempt: a retry
                // re-draws the exact sample, keeping the estimator
                // independent of the fault history.
                seed: config.seed ^ (entry.task as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                kill: Arc::clone(&kill),
                fault: fault.clone(),
                combining: config.combining,
            };
            running.insert(entry.task, kill);
            let input = Arc::clone(&input);
            let mapper = Arc::clone(&mapper);
            let attempt_txs = reducer_txs.clone();
            let msg_tx = msg_tx.clone();
            let accepted = pool.submit(
                tenant,
                Box::new(move || {
                    run_map_attempt(&*input, &*mapper, &work, &attempt_txs, &msg_tx);
                }),
            );
            if !accepted {
                running.remove(&entry.task);
                finished += 1;
                metrics.killed_maps += 1;
                metrics.task_outcomes.push(TaskOutcomeRecord {
                    task: TaskId(entry.task),
                    outcome: TaskOutcome::Killed,
                });
                if let Some(e) = eobs.as_ref() {
                    e.task_outcome(TaskOutcome::Killed);
                }
                if fatal.is_none() {
                    fatal = Some(RuntimeError::invalid(
                        "slot pool rejected task (pool shut down or tenant unregistered)",
                    ));
                }
                dropping = true;
            }
        }

        // 3. Dispatch into the shared pool while under this job's own
        //    in-flight cap. Directives are requested lazily so the
        //    policy can adapt between waves.
        while !dropping && !pending.is_empty() && running.len() < in_flight_cap {
            let t = pending.pop_front().expect("checked non-empty");
            match coordinator.directive(TaskId(t), &splits[t]) {
                MapDirective::Drop => {
                    finished += 1;
                    metrics.dropped_maps += 1;
                    metrics.task_outcomes.push(TaskOutcomeRecord {
                        task: TaskId(t),
                        outcome: TaskOutcome::Dropped,
                    });
                    if let Some(e) = eobs.as_ref() {
                        e.directive(false, 0.0);
                        e.task_outcome(TaskOutcome::Dropped);
                    }
                    notify_drop(t, &reducer_txs);
                }
                MapDirective::Run { sampling_ratio } => {
                    if let Some(e) = eobs.as_ref() {
                        e.directive(true, sampling_ratio);
                    }
                    task_ratio.insert(t, sampling_ratio);
                    let kill = Arc::new(AtomicBool::new(false));
                    let work = WorkItem {
                        task: TaskId(t),
                        attempt: 0,
                        sampling_ratio,
                        seed: config.seed ^ (t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                        kill: Arc::clone(&kill),
                        fault: fault.clone(),
                        combining: config.combining,
                    };
                    running.insert(t, kill);
                    let input = Arc::clone(&input);
                    let mapper = Arc::clone(&mapper);
                    let attempt_txs = reducer_txs.clone();
                    let msg_tx = msg_tx.clone();
                    let accepted = pool.submit(
                        tenant,
                        Box::new(move || {
                            run_map_attempt(&*input, &*mapper, &work, &attempt_txs, &msg_tx);
                        }),
                    );
                    if !accepted {
                        running.remove(&t);
                        finished += 1;
                        metrics.killed_maps += 1;
                        metrics.task_outcomes.push(TaskOutcomeRecord {
                            task: TaskId(t),
                            outcome: TaskOutcome::Killed,
                        });
                        if let Some(e) = eobs.as_ref() {
                            e.task_outcome(TaskOutcome::Killed);
                        }
                        if fatal.is_none() {
                            fatal = Some(RuntimeError::invalid(
                                "slot pool rejected task (pool shut down or tenant unregistered)",
                            ));
                        }
                        dropping = true;
                    }
                }
            }
        }
        if finished >= total {
            break;
        }

        // 4. Wait for worker events.
        match msg_rx.recv_timeout(Duration::from_millis(10)) {
            Ok(msg) => {
                handle_msg!(msg);
                while let Ok(extra) = msg_rx.try_recv() {
                    handle_msg!(extra);
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => unreachable!("tracker holds a sender"),
        }

        // 5. Stream progress to the submitter and record telemetry.
        //    Once a fatal error is latched the bound is meaningless (the
        //    estimate will be discarded), so stop publishing it.
        let worst_bound = if fatal.is_none() {
            control.worst_bound_across_reducers(1)
        } else {
            None
        };
        if finished != last_wave {
            last_wave = finished;
            session.emit(JobEvent::Wave {
                job: session.job,
                finished,
                total,
                worst_bound,
            });
            if let Some(e) = eobs.as_mut() {
                e.wave_tick(finished, total, worst_bound);
            }
        }
        if let Some(bound) = worst_bound {
            if last_bound != Some(bound) {
                last_bound = Some(bound);
                session.emit(JobEvent::Estimate {
                    job: session.job,
                    worst_relative_bound: bound,
                });
            }
        }
        if fatal.is_none() {
            bound_tracker.poll(&control, &mut metrics.bound_series, eobs.as_ref());
        }
    }

    if finished != last_wave {
        let worst_bound = if fatal.is_none() {
            control.worst_bound_across_reducers(1)
        } else {
            None
        };
        session.emit(JobEvent::Wave {
            job: session.job,
            finished,
            total,
            worst_bound,
        });
        if let Some(e) = eobs.as_mut() {
            e.wave_tick(finished, total, worst_bound);
        }
    }

    // Shut down: every submitted attempt has reported (finished == total
    // implies no closure still holds a reducer sender), so dropping our
    // senders lets the reducers drain and finish.
    drop(reducer_txs);
    drop(msg_tx);

    let mut outputs = Vec::new();
    let mut panicked = false;
    for h in reducer_handles {
        match h.join() {
            Ok(out) => outputs.extend(out),
            Err(_) => panicked = true,
        }
    }
    metrics.wall_secs = start.elapsed().as_secs_f64();
    if fatal.is_none() {
        bound_tracker.poll(&control, &mut metrics.bound_series, eobs.as_ref());
    }
    if let Some(e) = eobs.as_mut() {
        e.finish(&metrics);
    }
    if let Some(e) = fatal {
        return Err(e);
    }
    if panicked {
        return Err(RuntimeError::TaskPanicked {
            what: "reduce task".into(),
        });
    }
    check_degrade_budget(&policy, &metrics, &control)?;
    if let Some(bound) = control.worst_bound_across_reducers(1) {
        if last_bound != Some(bound) {
            session.emit(JobEvent::Estimate {
                job: session.job,
                worst_relative_bound: bound,
            });
        }
    }
    Ok(JobResult { outputs, metrics })
}

/// Enforces a degraded job's error budget: when tasks were degraded to
/// drops and the policy carries a `max_degraded_bound`, the final worst
/// relative bound across reducers must not exceed it. An unbounded
/// (∞/NaN) result also fails the check.
fn check_degrade_budget(
    policy: &FaultPolicy,
    metrics: &JobMetrics,
    control: &JobControl,
) -> Result<()> {
    let Some(limit) = policy.max_degraded_bound else {
        return Ok(());
    };
    if metrics.degraded_to_drop == 0 {
        return Ok(());
    }
    let Some(worst_bound) = control.worst_bound_across_reducers(1) else {
        return Ok(());
    };
    if worst_bound.is_nan() || worst_bound > limit {
        return Err(RuntimeError::DegradeBudgetExceeded {
            worst_bound,
            limit,
            degraded_maps: metrics.degraded_to_drop,
        });
    }
    Ok(())
}

/// Executes one map attempt on a task-tracker thread.
fn run_map_attempt<S, M>(
    input: &S,
    mapper: &M,
    work: &WorkItem,
    reducer_txs: &[Sender<ReduceEvent<M::Key, M::Value>>],
    msg_tx: &Sender<WorkerMsg>,
) where
    S: InputSource,
    M: Mapper<Item = S::Item>,
{
    if work.kill.load(Ordering::SeqCst) {
        let _ = msg_tx.send(WorkerMsg::Killed {
            task: work.task,
            attempt: work.attempt,
        });
        return;
    }
    let decision = work
        .fault
        .as_deref()
        .map(|f| f.decide(work.task.0, work.attempt))
        .unwrap_or(FaultDecision::None);
    if decision == FaultDecision::IoError {
        let _ = msg_tx.send(WorkerMsg::Failed {
            task: work.task,
            attempt: work.attempt,
            error: RuntimeError::InjectedFault {
                what: format!("input read of {} (attempt {})", work.task, work.attempt),
            },
        });
        return;
    }
    let t0 = Instant::now();
    // Clone-free read path: the source yields records lazily (precise
    // reads iterate blocks in place; sampled reads materialise only the
    // sample) instead of handing back a fully cloned vector.
    let stream = match input.stream_split(work.task.0, work.sampling_ratio, work.seed) {
        Ok(s) => s,
        Err(e) => {
            let _ = msg_tx.send(WorkerMsg::Failed {
                task: work.task,
                attempt: work.attempt,
                error: e,
            });
            return;
        }
    };
    let read_secs = t0.elapsed().as_secs_f64();
    let total_records = stream.total;
    let sampled_records = stream.sampled;
    let num_reducers = reducer_txs.len();
    let combiner = if work.combining {
        mapper.combiner()
    } else {
        None
    };
    // User map code may panic; contain it so the JobTracker can fail the
    // job cleanly instead of losing a worker thread (and hanging).
    let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if decision == FaultDecision::MapPanic {
            panic!("injected map panic in {}", work.task);
        }
        // Raw path: one Vec of pairs per reducer. Combining path: one
        // ordered table per reducer (BTreeMap, so batch order — and with
        // it the whole job — stays deterministic), folded in place as
        // pairs are emitted.
        let mut raw: Vec<Vec<(M::Key, M::Value)>> = (0..num_reducers).map(|_| Vec::new()).collect();
        let mut combined: Vec<BTreeMap<M::Key, M::Value>> =
            (0..num_reducers).map(|_| BTreeMap::new()).collect();
        let mut emitted = 0u64;
        let ctx = crate::mapper::MapTaskContext {
            task: work.task,
            sampling_ratio: work.sampling_ratio,
            attempt: work.attempt,
        };
        let mut state = mapper.begin_task(&ctx);
        let mut killed = false;
        for item in stream {
            if work.kill.load(Ordering::Relaxed) {
                killed = true;
                break;
            }
            mapper.map(&mut state, item, &mut |k, v| {
                emitted += 1;
                let p = partition_for(&k, num_reducers);
                crate::combine::route_emission(combiner, &mut raw, &mut combined, p, k, v);
            });
        }
        if !killed {
            mapper.end_task(state, &mut |k, v| {
                emitted += 1;
                let p = partition_for(&k, num_reducers);
                crate::combine::route_emission(combiner, &mut raw, &mut combined, p, k, v);
            });
        }
        (raw, combined, emitted, killed)
    }));
    let (mut raw, mut combined, emitted, killed) = match run {
        Ok(r) => r,
        Err(_) => {
            let _ = msg_tx.send(WorkerMsg::Failed {
                task: work.task,
                attempt: work.attempt,
                error: RuntimeError::TaskPanicked {
                    what: format!("user map code in {}", work.task),
                },
            });
            return;
        }
    };
    if killed {
        let _ = msg_tx.send(WorkerMsg::Killed {
            task: work.task,
            attempt: work.attempt,
        });
        return;
    }
    let duration_secs = t0.elapsed().as_secs_f64();
    let meta = MapOutputMeta {
        task: work.task,
        total_records,
        sampled_records,
        duration_secs,
    };
    let mut shuffled = 0u64;
    for (p, tx) in reducer_txs.iter().enumerate() {
        // Each reducer receives one pre-partitioned batch; with a
        // combiner it is pre-combined too (at most one pair per key),
        // in key order.
        let pairs: Vec<(M::Key, M::Value)> = if combiner.is_some() {
            std::mem::take(&mut combined[p]).into_iter().collect()
        } else {
            std::mem::take(&mut raw[p])
        };
        shuffled += pairs.len() as u64;
        let _ = tx.send(ReduceEvent::MapOutput { meta, pairs });
    }
    let stats = MapStats {
        task: work.task,
        total_records,
        sampled_records,
        emitted,
        shuffled,
        duration_secs,
        read_secs,
    };
    let _ = msg_tx.send(WorkerMsg::Completed {
        stats,
        attempt: work.attempt,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::{SampledItems, SplitMeta, VecSource};
    use crate::mapper::FnMapper;
    use crate::reducer::GroupedReducer;

    fn word_blocks() -> Vec<Vec<String>> {
        vec![
            vec!["a b a".into(), "c".into()],
            vec!["b c".into(), "a a".into()],
            vec!["c c c".into()],
        ]
    }

    #[allow(clippy::type_complexity)] // test helper returning the full generic
    fn word_mapper(
    ) -> FnMapper<String, String, u64, impl Fn(&String, &mut dyn FnMut(String, u64)) + Send + Sync>
    {
        FnMapper::new(|line: &String, emit: &mut dyn FnMut(String, u64)| {
            for w in line.split_whitespace() {
                emit(w.to_string(), 1);
            }
        })
    }

    #[allow(clippy::type_complexity)] // test helper returning the full generic
    fn sum_reducer(
    ) -> GroupedReducer<String, u64, impl FnMut(&String, &[u64]) -> Option<(String, u64)> + Send>
    {
        GroupedReducer::new(|k: &String, vs: &[u64]| Some((k.clone(), vs.iter().sum::<u64>())))
    }

    #[test]
    fn precise_word_count() {
        let input = VecSource::new(word_blocks());
        let mapper = word_mapper();
        let result = run_job(&input, &mapper, |_| sum_reducer(), JobConfig::default()).unwrap();
        let mut out = result.outputs;
        out.sort();
        assert_eq!(
            out,
            vec![
                ("a".to_string(), 4),
                ("b".to_string(), 2),
                ("c".to_string(), 5)
            ]
        );
        assert_eq!(result.metrics.executed_maps, 3);
        assert_eq!(result.metrics.dropped_maps, 0);
        assert_eq!(result.metrics.total_records, 5);
        assert_eq!(result.metrics.sampled_records, 5);
    }

    #[test]
    fn multiple_reducers_cover_all_keys() {
        let input = VecSource::new(word_blocks());
        let mapper = word_mapper();
        let config = JobConfig {
            reduce_tasks: 4,
            ..Default::default()
        };
        let result = run_job(&input, &mapper, |_| sum_reducer(), config).unwrap();
        let mut out = result.outputs;
        out.sort();
        assert_eq!(
            out,
            vec![
                ("a".to_string(), 4),
                ("b".to_string(), 2),
                ("c".to_string(), 5)
            ]
        );
    }

    #[test]
    fn results_are_deterministic_for_fixed_seed() {
        let run = |seed| {
            let input = VecSource::new(word_blocks());
            let mapper = word_mapper();
            let config = JobConfig {
                seed,
                reduce_tasks: 2,
                sampling_ratio: 0.5,
                ..Default::default()
            };
            let mut out = run_job(&input, &mapper, |_| sum_reducer(), config)
                .unwrap()
                .outputs;
            out.sort();
            out
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn drop_ratio_drops_exact_count() {
        let blocks: Vec<Vec<u32>> = (0..20).map(|i| vec![i, i, i]).collect();
        let input = VecSource::new(blocks);
        let mapper = FnMapper::new(|item: &u32, emit: &mut dyn FnMut(u8, u32)| emit(0, *item));
        let config = JobConfig {
            drop_ratio: 0.25,
            ..Default::default()
        };
        let result = run_job(
            &input,
            &mapper,
            |_| GroupedReducer::new(|_k: &u8, vs: &[u32]| Some(vs.len())),
            config,
        )
        .unwrap();
        assert_eq!(result.metrics.dropped_maps, 5);
        assert_eq!(result.metrics.executed_maps, 15);
        assert_eq!(result.outputs, vec![45]); // 15 maps × 3 items
    }

    #[test]
    fn sampling_ratio_reduces_processed_records() {
        let blocks: Vec<Vec<u32>> = (0..4).map(|_| (0..100).collect()).collect();
        let input = VecSource::new(blocks);
        let mapper = FnMapper::new(|item: &u32, emit: &mut dyn FnMut(u8, u32)| emit(0, *item));
        let config = JobConfig {
            sampling_ratio: 0.1,
            ..Default::default()
        };
        let result = run_job(
            &input,
            &mapper,
            |_| GroupedReducer::new(|_k: &u8, vs: &[u32]| Some(vs.len())),
            config,
        )
        .unwrap();
        assert_eq!(result.metrics.total_records, 400);
        assert_eq!(result.metrics.sampled_records, 40);
        assert_eq!(result.outputs, vec![40]);
    }

    /// A reducer that requests early termination after the first map
    /// output — the GEV-style "target achieved, kill the rest" path.
    struct EarlyStopReducer {
        seen_outputs: usize,
        seen_drops: usize,
    }

    impl Reducer for EarlyStopReducer {
        type Key = u8;
        type Value = u32;
        type Output = (usize, usize);

        fn on_map_output(
            &mut self,
            _meta: &MapOutputMeta,
            _pairs: Vec<(u8, u32)>,
            ctx: &mut ReduceContext,
        ) {
            self.seen_outputs += 1;
            if self.seen_outputs >= 2 {
                ctx.request_drop_remaining();
            }
        }

        fn on_map_dropped(&mut self, _task: TaskId, _ctx: &mut ReduceContext) {
            self.seen_drops += 1;
        }

        fn finish(&mut self, _ctx: &mut ReduceContext) -> Vec<(usize, usize)> {
            vec![(self.seen_outputs, self.seen_drops)]
        }
    }

    #[test]
    fn reducer_initiated_drop_terminates_job() {
        let blocks: Vec<Vec<u32>> = (0..50).map(|_| (0..200).collect()).collect();
        let input = VecSource::new(blocks);
        let mapper = FnMapper::new(|item: &u32, emit: &mut dyn FnMut(u8, u32)| emit(0, *item));
        let config = JobConfig {
            map_slots: 2,
            ..Default::default()
        };
        let result = run_job(
            &input,
            &mapper,
            |_| EarlyStopReducer {
                seen_outputs: 0,
                seen_drops: 0,
            },
            config,
        )
        .unwrap();
        let (outputs, drops) = result.outputs[0];
        assert!(outputs >= 2, "at least the triggering maps completed");
        assert!(drops > 0, "remaining maps were dropped");
        assert_eq!(outputs + drops, 50);
        assert!(
            result.metrics.executed_maps < 50,
            "job must not run all maps: {}",
            result.metrics.executed_maps
        );
        assert_eq!(
            result.metrics.executed_maps + result.metrics.dropped_maps + result.metrics.killed_maps,
            50
        );
    }

    #[test]
    fn zero_slots_rejected() {
        let input = VecSource::new(vec![vec![1u32]]);
        let mapper = FnMapper::new(|i: &u32, emit: &mut dyn FnMut(u8, u32)| emit(0, *i));
        let config = JobConfig {
            map_slots: 0,
            ..Default::default()
        };
        assert!(run_job(
            &input,
            &mapper,
            |_| GroupedReducer::new(|_: &u8, _: &[u32]| Some(())),
            config
        )
        .is_err());
    }

    #[test]
    fn bad_ratios_rejected() {
        let input = VecSource::new(vec![vec![1u32]]);
        let mapper = FnMapper::new(|i: &u32, emit: &mut dyn FnMut(u8, u32)| emit(0, *i));
        for (sampling, drop) in [(0.0, 0.0), (1.5, 0.0), (1.0, 1.0), (1.0, -0.1)] {
            let config = JobConfig {
                sampling_ratio: sampling,
                drop_ratio: drop,
                ..Default::default()
            };
            assert!(
                run_job(
                    &input,
                    &mapper,
                    |_| GroupedReducer::new(|_: &u8, _: &[u32]| Some(())),
                    config
                )
                .is_err(),
                "sampling={sampling} drop={drop} should be rejected"
            );
        }
    }

    /// Input source whose third split fails to read.
    struct FailingSource;

    impl InputSource for FailingSource {
        type Item = u32;

        fn splits(&self) -> Vec<SplitMeta> {
            (0..4)
                .map(|i| SplitMeta {
                    index: i,
                    records: 1,
                    bytes: 0,
                    locations: vec![],
                })
                .collect()
        }

        fn read_split(
            &self,
            index: usize,
            _ratio: f64,
            _seed: u64,
        ) -> crate::Result<SampledItems<u32>> {
            if index == 2 {
                Err(approxhadoop_dfs::DfsError::BlockNotFound {
                    block: approxhadoop_dfs::BlockId(2),
                }
                .into())
            } else {
                Ok(SampledItems {
                    items: vec![1],
                    total: 1,
                    sampled: 1,
                })
            }
        }
    }

    #[test]
    fn input_failure_aborts_job() {
        let mapper = FnMapper::new(|i: &u32, emit: &mut dyn FnMut(u8, u32)| emit(0, *i));
        let result = run_job(
            &FailingSource,
            &mapper,
            |_| GroupedReducer::new(|_: &u8, vs: &[u32]| Some(vs.len())),
            JobConfig::default(),
        );
        assert!(matches!(result, Err(RuntimeError::Input { .. })));
    }

    #[test]
    fn panicking_mapper_fails_job_cleanly() {
        let blocks: Vec<Vec<u32>> = (0..6).map(|i| vec![i as u32]).collect();
        let input = VecSource::new(blocks);
        let mapper = FnMapper::new(|v: &u32, emit: &mut dyn FnMut(u8, u32)| {
            assert!(*v != 3, "poisoned item");
            emit(0, *v);
        });
        let result = run_job(
            &input,
            &mapper,
            |_| GroupedReducer::new(|_: &u8, vs: &[u32]| Some(vs.len())),
            JobConfig::default(),
        );
        assert!(
            matches!(result, Err(RuntimeError::TaskPanicked { .. })),
            "panic must surface as a job error"
        );
    }

    #[test]
    fn speculative_execution_completes_correctly() {
        // One poisoned item makes its map slow; with speculation enabled
        // the job still finishes with the right answer.
        let mut blocks: Vec<Vec<u32>> = (0..8).map(|_| (0..50).collect()).collect();
        blocks[5][0] = 999; // marker: sleep per item
        let input = VecSource::new(blocks);
        let mapper = FnMapper::new(|item: &u32, emit: &mut dyn FnMut(u8, u64)| {
            if *item == 999 {
                std::thread::sleep(std::time::Duration::from_millis(120));
            }
            emit(0, 1);
        });
        let config = JobConfig {
            map_slots: 4,
            speculative: true,
            straggler_factor: 2.0,
            ..Default::default()
        };
        let result = run_job(
            &input,
            &mapper,
            |_| GroupedReducer::new(|_: &u8, vs: &[u64]| Some(vs.len())),
            config,
        )
        .unwrap();
        assert_eq!(result.outputs, vec![400]);
        assert_eq!(result.metrics.executed_maps, 8);
    }

    #[test]
    fn locality_preference_is_tracked() {
        // 12 blocks, each local to exactly one of 4 servers round-robin;
        // with 4 servers × 1 slot, every task can be scheduled locally.
        let blocks: Vec<Vec<u32>> = (0..12).map(|i| vec![i as u32]).collect();
        let locations: Vec<Vec<usize>> = (0..12).map(|i| vec![i % 4]).collect();
        let input = VecSource::new(blocks).with_locations(locations);
        let mapper = FnMapper::new(|v: &u32, emit: &mut dyn FnMut(u8, u32)| emit(0, *v));
        let config = JobConfig {
            map_slots: 4,
            servers: 4,
            ..Default::default()
        };
        let result = run_job(
            &input,
            &mapper,
            |_| GroupedReducer::new(|_: &u8, vs: &[u32]| Some(vs.len())),
            config,
        )
        .unwrap();
        assert_eq!(result.outputs, vec![12]);
        assert_eq!(result.metrics.executed_maps, 12);
        assert!(
            result.metrics.local_maps >= 9,
            "most maps should be local, got {}",
            result.metrics.local_maps
        );
    }

    #[test]
    fn zero_servers_rejected() {
        let input = VecSource::new(vec![vec![1u32]]);
        let mapper = FnMapper::new(|i: &u32, emit: &mut dyn FnMut(u8, u32)| emit(0, *i));
        let config = JobConfig {
            servers: 0,
            ..Default::default()
        };
        assert!(run_job(
            &input,
            &mapper,
            |_| GroupedReducer::new(|_: &u8, _: &[u32]| Some(())),
            config
        )
        .is_err());
    }

    /// Early termination during the very first map output, with many
    /// reducers: everything still shuts down cleanly.
    #[test]
    fn immediate_drop_request_with_many_reducers() {
        struct InstantStop;
        impl Reducer for InstantStop {
            type Key = u8;
            type Value = u32;
            type Output = usize;
            fn on_map_output(
                &mut self,
                _m: &MapOutputMeta,
                _p: Vec<(u8, u32)>,
                ctx: &mut ReduceContext,
            ) {
                ctx.request_drop_remaining();
            }
            fn finish(&mut self, ctx: &mut ReduceContext) -> Vec<usize> {
                vec![ctx.maps_seen()]
            }
        }
        let blocks: Vec<Vec<u32>> = (0..30).map(|i| vec![i as u32]).collect();
        let input = VecSource::new(blocks);
        let mapper = FnMapper::new(|v: &u32, emit: &mut dyn FnMut(u8, u32)| emit(*v as u8, *v));
        let result = run_job(
            &input,
            &mapper,
            |_| InstantStop,
            JobConfig {
                map_slots: 3,
                reduce_tasks: 5,
                ..Default::default()
            },
        )
        .unwrap();
        // Every reducer eventually observes all 30 maps (as outputs or
        // drop notifications).
        assert_eq!(result.outputs, vec![30; 5]);
        assert!(result.metrics.executed_maps < 30);
    }

    /// A mapper that emits nothing at all still completes with correct
    /// metadata flowing to the reducers.
    #[test]
    fn silent_mapper_completes() {
        struct CountMaps(usize);
        impl Reducer for CountMaps {
            type Key = u8;
            type Value = u32;
            type Output = usize;
            fn on_map_output(
                &mut self,
                meta: &MapOutputMeta,
                pairs: Vec<(u8, u32)>,
                _ctx: &mut ReduceContext,
            ) {
                assert!(pairs.is_empty());
                assert_eq!(meta.total_records, 4);
                self.0 += 1;
            }
            fn finish(&mut self, _ctx: &mut ReduceContext) -> Vec<usize> {
                vec![self.0]
            }
        }
        let blocks: Vec<Vec<u32>> = (0..6).map(|_| vec![0; 4]).collect();
        let input = VecSource::new(blocks);
        let mapper = FnMapper::new(|_: &u32, _emit: &mut dyn FnMut(u8, u32)| {});
        let result = run_job(&input, &mapper, |_| CountMaps(0), JobConfig::default()).unwrap();
        assert_eq!(result.outputs, vec![6]);
    }

    /// Stateful end_task emission arrives even when items were sampled
    /// down to a single record.
    #[test]
    fn end_task_emission_with_heavy_sampling() {
        let blocks: Vec<Vec<u32>> = (0..5).map(|_| (0..100).collect()).collect();
        let input = VecSource::new(blocks);
        struct PerTaskCount;
        impl Mapper for PerTaskCount {
            type Item = u32;
            type Key = u8;
            type Value = u64;
            type TaskState = u64;
            fn begin_task(&self, _c: &crate::mapper::MapTaskContext) -> u64 {
                0
            }
            fn map(&self, s: &mut u64, _i: u32, _e: &mut dyn FnMut(u8, u64)) {
                *s += 1;
            }
            fn end_task(&self, s: u64, emit: &mut dyn FnMut(u8, u64)) {
                emit(0, s);
            }
        }
        let result = run_job(
            &input,
            &PerTaskCount,
            |_| GroupedReducer::new(|_: &u8, vs: &[u64]| Some((vs.len(), vs.iter().sum::<u64>()))),
            JobConfig {
                sampling_ratio: 0.01,
                ..Default::default()
            },
        )
        .unwrap();
        let (tasks, items) = result.outputs[0];
        assert_eq!(tasks, 5, "every task emits its count");
        assert_eq!(items, 5, "1% of 100 items per task");
    }

    #[test]
    fn pool_word_count_matches_scoped_engine() {
        let pool = SlotPool::new(4);
        let tenant = pool.register_tenant(1.0);
        let session = JobSession::new(crate::event::JobId(0));
        let config = JobConfig::default();
        let mut coordinator = FixedCoordinator::new(3, 1.0, 0.0, config.seed);
        let result = run_job_on_pool(
            Arc::new(VecSource::new(word_blocks())),
            Arc::new(word_mapper()),
            |_| sum_reducer(),
            config,
            &mut coordinator,
            &pool,
            tenant,
            &session,
        )
        .unwrap();
        let mut out = result.outputs;
        out.sort();
        assert_eq!(
            out,
            vec![
                ("a".to_string(), 4),
                ("b".to_string(), 2),
                ("c".to_string(), 5)
            ]
        );
        assert_eq!(result.metrics.executed_maps, 3);
        assert!(!result.metrics.deadline_hit);
    }

    #[test]
    fn pool_jobs_share_slots_concurrently() {
        // Two jobs over one 2-slot pool, run from two threads; both
        // complete correctly.
        let pool = SlotPool::new(2);
        let mut handles = Vec::new();
        for _ in 0..2 {
            let pool = Arc::clone(&pool);
            handles.push(std::thread::spawn(move || {
                let tenant = pool.register_tenant(1.0);
                let session = JobSession::new(crate::event::JobId(0));
                let blocks: Vec<Vec<u32>> = (0..10).map(|i| vec![i, i]).collect();
                let mut coordinator = FixedCoordinator::new(10, 1.0, 0.0, 0);
                let result = run_job_on_pool(
                    Arc::new(VecSource::new(blocks)),
                    Arc::new(FnMapper::new(|i: &u32, emit: &mut dyn FnMut(u8, u32)| {
                        emit(0, *i)
                    })),
                    |_| GroupedReducer::new(|_: &u8, vs: &[u32]| Some(vs.len())),
                    JobConfig {
                        map_slots: 4,
                        ..Default::default()
                    },
                    &mut coordinator,
                    &pool,
                    tenant,
                    &session,
                )
                .unwrap();
                pool.unregister_tenant(tenant);
                result.outputs
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), vec![20]);
        }
    }

    #[test]
    fn pool_job_cancellation_fails_with_cancelled() {
        let pool = SlotPool::new(2);
        let tenant = pool.register_tenant(1.0);
        let session = JobSession::new(crate::event::JobId(1));
        let handle = session.cancel_handle();
        // Cancel as soon as the first map output lands.
        let blocks: Vec<Vec<u32>> = (0..40).map(|_| (0..100).collect()).collect();
        let mapper = FnMapper::new(move |_: &u32, emit: &mut dyn FnMut(u8, u32)| {
            std::thread::sleep(std::time::Duration::from_micros(50));
            emit(0, 1);
        });
        let canceller = {
            let handle = handle.clone();
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(20));
                handle.cancel();
            })
        };
        let result = run_job_on_pool(
            Arc::new(VecSource::new(blocks)),
            Arc::new(mapper),
            |_| GroupedReducer::new(|_: &u8, vs: &[u32]| Some(vs.len())),
            JobConfig {
                map_slots: 2,
                ..Default::default()
            },
            &mut FixedCoordinator::new(40, 1.0, 0.0, 0),
            &pool,
            tenant,
            &session,
        );
        canceller.join().unwrap();
        assert!(matches!(result, Err(RuntimeError::Cancelled)));
    }

    #[test]
    fn pool_job_deadline_completes_approximately() {
        let pool = SlotPool::new(1);
        let tenant = pool.register_tenant(1.0);
        let session = JobSession::new(crate::event::JobId(2))
            .with_deadline(Instant::now() + std::time::Duration::from_millis(40));
        let blocks: Vec<Vec<u32>> = (0..50).map(|_| (0..20).collect()).collect();
        let mapper = FnMapper::new(|_: &u32, emit: &mut dyn FnMut(u8, u32)| {
            std::thread::sleep(std::time::Duration::from_micros(300));
            emit(0, 1);
        });
        let result = run_job_on_pool(
            Arc::new(VecSource::new(blocks)),
            Arc::new(mapper),
            |_| GroupedReducer::new(|_: &u8, vs: &[u32]| Some(vs.len())),
            JobConfig {
                map_slots: 1,
                ..Default::default()
            },
            &mut FixedCoordinator::new(50, 1.0, 0.0, 0),
            &pool,
            tenant,
            &session,
        )
        .unwrap();
        assert!(result.metrics.deadline_hit, "deadline should have fired");
        assert!(
            result.metrics.executed_maps < 50,
            "job must not run all maps after the deadline"
        );
        assert_eq!(
            result.metrics.executed_maps + result.metrics.dropped_maps + result.metrics.killed_maps,
            50
        );
    }

    #[test]
    fn pool_job_streams_wave_events() {
        let pool = SlotPool::new(2);
        let tenant = pool.register_tenant(1.0);
        let (tx, rx) = unbounded();
        let session = JobSession::new(crate::event::JobId(3)).with_events(tx);
        let blocks: Vec<Vec<u32>> = (0..8).map(|i| vec![i as u32]).collect();
        run_job_on_pool(
            Arc::new(VecSource::new(blocks)),
            Arc::new(FnMapper::new(|i: &u32, emit: &mut dyn FnMut(u8, u32)| {
                emit(0, *i)
            })),
            |_| GroupedReducer::new(|_: &u8, vs: &[u32]| Some(vs.len())),
            JobConfig::default(),
            &mut FixedCoordinator::new(8, 1.0, 0.0, 0),
            &pool,
            tenant,
            &session,
        )
        .unwrap();
        let events: Vec<_> = rx.try_iter().collect();
        let final_wave = events.iter().rev().find_map(|e| match e {
            crate::event::JobEvent::Wave {
                finished, total, ..
            } => Some((*finished, *total)),
            _ => None,
        });
        assert_eq!(final_wave, Some((8, 8)), "events: {events:?}");
    }

    #[test]
    fn single_block_single_slot() {
        let input = VecSource::new(vec![vec![1u32, 2, 3]]);
        let mapper = FnMapper::new(|i: &u32, emit: &mut dyn FnMut(u8, u32)| emit(0, *i));
        let config = JobConfig {
            map_slots: 1,
            ..Default::default()
        };
        let result = run_job(
            &input,
            &mapper,
            |_| GroupedReducer::new(|_: &u8, vs: &[u32]| Some(vs.iter().sum::<u32>())),
            config,
        )
        .unwrap();
        assert_eq!(result.outputs, vec![6]);
    }
}
