//! Fault injection and fault-tolerance policy for the engine.
//!
//! [`FaultPlan`] is the deterministic, seedable chaos layer: it decides
//! — from a hash of `(seed, task, attempt)` — which map attempts panic
//! or fail their input read, and carries the read-path knobs (dead
//! datanodes, per-replica errors, slow replicas) that
//! [`DfsCluster`](approxhadoop_dfs::DfsCluster) applies when the plan is
//! installed via [`FaultPlan::read_faults`]. Because decisions hash the
//! attempt number, a retry of a failed attempt draws a fresh coin —
//! transient faults clear on retry — while DFS-level replica faults hash
//! `(block, node)` and therefore persist, forcing replica failover.
//!
//! [`FaultPolicy`] is the recovery side: how many times the JobTracker
//! retries a failed task, with what backoff, whether an exhausted task
//! is **degraded to a dropped cluster** (the reducers widen their
//! confidence intervals exactly as for a deliberate drop, paper
//! Eq. 1–3) instead of aborting the job, and the worst relative bound
//! the degraded result may carry before the job fails anyway.

use std::time::Duration;

use approxhadoop_dfs::fault::unit_hash;
use approxhadoop_dfs::ReadFaults;

/// Hash salt for map-panic decisions.
const SALT_PANIC: u64 = 0xDEAD;
/// Hash salt for map read-error decisions.
const SALT_IO: u64 = 0x10E0;

/// What the fault plan injects into one map attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDecision {
    /// Run the attempt normally.
    None,
    /// Panic inside the user map code.
    MapPanic,
    /// Fail the attempt's input read with an I/O error.
    IoError,
}

/// A deterministic, seedable description of faults to inject.
///
/// Parse one from a CLI spec with [`FaultPlan::parse`]:
///
/// ```
/// use approxhadoop_runtime::fault::FaultPlan;
///
/// let plan = FaultPlan::parse("seed=7,panic=0.05,io=0.1,read=0.2,slow=0.1:25,dead=0+2").unwrap();
/// assert_eq!(plan.seed, 7);
/// assert_eq!(plan.dead_datanodes, vec![0, 2]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for every injection decision.
    pub seed: u64,
    /// Probability that a map attempt panics in user code.
    pub map_panic_prob: f64,
    /// Probability that a map attempt's input read fails.
    pub map_io_error_prob: f64,
    /// Datanodes considered dead on the DFS read path.
    pub dead_datanodes: Vec<usize>,
    /// Per-replica block-read failure probability on the DFS read path.
    pub replica_error_prob: f64,
    /// Per-replica slow-read probability on the DFS read path.
    pub slow_replica_prob: f64,
    /// Delay applied to slow replica reads.
    pub slow_replica_delay: Duration,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            map_panic_prob: 0.0,
            map_io_error_prob: 0.0,
            dead_datanodes: Vec::new(),
            replica_error_prob: 0.0,
            slow_replica_prob: 0.0,
            slow_replica_delay: Duration::from_millis(10),
        }
    }
}

impl FaultPlan {
    /// Parses a comma-separated `key=value` spec:
    ///
    /// | key     | meaning                                   | example    |
    /// |---------|-------------------------------------------|------------|
    /// | `seed`  | injection seed                            | `seed=7`   |
    /// | `panic` | map panic probability                     | `panic=0.1`|
    /// | `io`    | map read-error probability                | `io=0.05`  |
    /// | `read`  | per-replica block-read error probability  | `read=0.2` |
    /// | `slow`  | slow-replica probability, `:ms` optional  | `slow=0.1:25` |
    /// | `dead`  | `+`-separated dead datanode ids           | `dead=0+2` |
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for part in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault plan expects key=value, got `{part}`"))?;
            let prob = |v: &str| -> Result<f64, String> {
                let p: f64 = v
                    .parse()
                    .map_err(|_| format!("invalid probability `{v}` for `{key}`"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!(
                        "probability for `{key}` must lie in [0, 1], got {p}"
                    ));
                }
                Ok(p)
            };
            match key.trim() {
                "seed" => {
                    plan.seed = value
                        .parse()
                        .map_err(|_| format!("invalid seed `{value}`"))?;
                }
                "panic" => plan.map_panic_prob = prob(value)?,
                "io" => plan.map_io_error_prob = prob(value)?,
                "read" => plan.replica_error_prob = prob(value)?,
                "slow" => match value.split_once(':') {
                    Some((p, ms)) => {
                        plan.slow_replica_prob = prob(p)?;
                        plan.slow_replica_delay = Duration::from_millis(
                            ms.parse()
                                .map_err(|_| format!("invalid slow delay `{ms}`"))?,
                        );
                    }
                    None => plan.slow_replica_prob = prob(value)?,
                },
                "dead" => {
                    plan.dead_datanodes = value
                        .split('+')
                        .map(|n| n.parse().map_err(|_| format!("invalid datanode id `{n}`")))
                        .collect::<Result<_, String>>()?;
                }
                other => return Err(format!("unknown fault plan key `{other}`")),
            }
        }
        plan.validate()?;
        Ok(plan)
    }

    /// Validates probability ranges.
    pub fn validate(&self) -> Result<(), String> {
        for (name, p) in [
            ("panic", self.map_panic_prob),
            ("io", self.map_io_error_prob),
            ("read", self.replica_error_prob),
            ("slow", self.slow_replica_prob),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!(
                    "fault probability `{name}` must lie in [0, 1], got {p}"
                ));
            }
        }
        Ok(())
    }

    /// Whether the plan injects anything into the map execution path.
    pub fn injects_map_faults(&self) -> bool {
        self.map_panic_prob > 0.0 || self.map_io_error_prob > 0.0
    }

    /// The (deterministic) fate of map attempt `attempt` of `task`.
    /// Panics take precedence over read errors when both coins hit.
    pub fn decide(&self, task: usize, attempt: u32) -> FaultDecision {
        if self.map_panic_prob > 0.0
            && unit_hash(self.seed, task as u64, attempt as u64, SALT_PANIC) < self.map_panic_prob
        {
            return FaultDecision::MapPanic;
        }
        if self.map_io_error_prob > 0.0
            && unit_hash(self.seed, task as u64, attempt as u64, SALT_IO) < self.map_io_error_prob
        {
            return FaultDecision::IoError;
        }
        FaultDecision::None
    }

    /// The DFS read-path side of the plan, for
    /// [`DfsCluster::set_read_faults`](approxhadoop_dfs::DfsCluster::set_read_faults).
    /// `None` when the plan carries no read-path faults.
    pub fn read_faults(&self) -> Option<ReadFaults> {
        let faults = ReadFaults {
            seed: self.seed,
            dead_nodes: self.dead_datanodes.clone(),
            replica_error_prob: self.replica_error_prob,
            slow_replica_prob: self.slow_replica_prob,
            slow_replica_delay: self.slow_replica_delay,
        };
        faults.is_active().then_some(faults)
    }
}

/// How the JobTracker reacts to failed map attempts.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPolicy {
    /// Retries per task after its first failure (`0` = fail fast, the
    /// pre-fault-tolerance behaviour).
    pub max_task_retries: u32,
    /// Base delay before the first retry; doubles per subsequent failure
    /// of the same task (exponential backoff).
    pub retry_backoff: Duration,
    /// Cap on the backoff delay.
    pub max_backoff: Duration,
    /// When a task exhausts its retries: `true` converts it into a
    /// dropped cluster (the job completes with a widened confidence
    /// interval), `false` aborts the job with the task's error.
    pub degrade_to_drop: bool,
    /// With `degrade_to_drop`, fail the job anyway if the final worst
    /// relative error bound across reducers exceeds this limit (the
    /// job's error budget). `None` accepts any widening.
    pub max_degraded_bound: Option<f64>,
    /// Blacklist a server from new dispatches after this many failed
    /// attempts on it (`0` disables blacklisting). Ignored once every
    /// server is blacklisted.
    pub blacklist_after: u32,
}

impl Default for FaultPolicy {
    fn default() -> Self {
        FaultPolicy {
            max_task_retries: 0,
            retry_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(200),
            degrade_to_drop: false,
            max_degraded_bound: None,
            blacklist_after: 3,
        }
    }
}

impl FaultPolicy {
    /// A forgiving policy: a few retries, then degrade to drop.
    pub fn tolerant(max_task_retries: u32) -> Self {
        FaultPolicy {
            max_task_retries,
            degrade_to_drop: true,
            ..Default::default()
        }
    }

    /// Validates the bound limit.
    pub fn validate(&self) -> Result<(), String> {
        if let Some(b) = self.max_degraded_bound {
            if !(b.is_finite() && b > 0.0) {
                return Err(format!(
                    "max_degraded_bound must be positive and finite, got {b}"
                ));
            }
        }
        Ok(())
    }

    /// Backoff before retrying a task that has failed `failures` times:
    /// `retry_backoff × 2^(failures−1)`, capped at `max_backoff`.
    pub fn backoff_for(&self, failures: u32) -> Duration {
        let exp = failures.saturating_sub(1).min(16);
        (self.retry_backoff * 2u32.saturating_pow(exp)).min(self.max_backoff)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_spec() {
        let p = FaultPlan::parse("seed=9,panic=0.1,io=0.2,read=0.3,slow=0.4:25,dead=1+3").unwrap();
        assert_eq!(p.seed, 9);
        assert_eq!(p.map_panic_prob, 0.1);
        assert_eq!(p.map_io_error_prob, 0.2);
        assert_eq!(p.replica_error_prob, 0.3);
        assert_eq!(p.slow_replica_prob, 0.4);
        assert_eq!(p.slow_replica_delay, Duration::from_millis(25));
        assert_eq!(p.dead_datanodes, vec![1, 3]);
    }

    #[test]
    fn parse_partial_and_empty_specs() {
        let p = FaultPlan::parse("io=0.5").unwrap();
        assert_eq!(p.map_io_error_prob, 0.5);
        assert_eq!(p.map_panic_prob, 0.0);
        assert!(p.injects_map_faults());
        assert!(p.read_faults().is_none());
        let p = FaultPlan::parse("").unwrap();
        assert_eq!(p, FaultPlan::default());
        assert!(!p.injects_map_faults());
    }

    #[test]
    fn parse_rejects_bad_specs() {
        for bad in [
            "panic",
            "panic=2.0",
            "panic=-0.1",
            "io=x",
            "seed=abc",
            "dead=1+x",
            "slow=0.1:ms",
            "bogus=1",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "`{bad}` should be rejected");
        }
    }

    #[test]
    fn decisions_are_deterministic_and_vary_by_attempt() {
        let p = FaultPlan {
            seed: 11,
            map_io_error_prob: 0.5,
            ..Default::default()
        };
        let mut differs = false;
        for t in 0..100 {
            assert_eq!(p.decide(t, 0), p.decide(t, 0));
            if p.decide(t, 0) != p.decide(t, 1) {
                differs = true;
            }
        }
        assert!(differs, "retries must draw a fresh coin");
    }

    #[test]
    fn decision_rate_matches_probability() {
        let p = FaultPlan {
            seed: 5,
            map_panic_prob: 0.2,
            ..Default::default()
        };
        let hits = (0..5_000)
            .filter(|&t| p.decide(t, 0) == FaultDecision::MapPanic)
            .count();
        let rate = hits as f64 / 5_000.0;
        assert!((rate - 0.2).abs() < 0.03, "rate {rate}");
    }

    #[test]
    fn panic_takes_precedence_over_io() {
        let p = FaultPlan {
            seed: 1,
            map_panic_prob: 1.0,
            map_io_error_prob: 1.0,
            ..Default::default()
        };
        assert_eq!(p.decide(0, 0), FaultDecision::MapPanic);
    }

    #[test]
    fn read_faults_carries_dfs_side() {
        let p = FaultPlan::parse("seed=3,dead=2,read=0.1").unwrap();
        let rf = p.read_faults().unwrap();
        assert_eq!(rf.seed, 3);
        assert_eq!(rf.dead_nodes, vec![2]);
        assert_eq!(rf.replica_error_prob, 0.1);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let policy = FaultPolicy {
            retry_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(35),
            ..Default::default()
        };
        assert_eq!(policy.backoff_for(1), Duration::from_millis(10));
        assert_eq!(policy.backoff_for(2), Duration::from_millis(20));
        assert_eq!(policy.backoff_for(3), Duration::from_millis(35));
        assert_eq!(policy.backoff_for(30), Duration::from_millis(35));
    }

    #[test]
    fn policy_validation() {
        assert!(FaultPolicy::default().validate().is_ok());
        assert!(FaultPolicy::tolerant(3).degrade_to_drop);
        let bad = FaultPolicy {
            max_degraded_bound: Some(f64::NAN),
            ..Default::default()
        };
        assert!(bad.validate().is_err());
        let bad = FaultPolicy {
            max_degraded_bound: Some(0.0),
            ..Default::default()
        };
        assert!(bad.validate().is_err());
    }
}
