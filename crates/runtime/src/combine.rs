//! Map-side combiners: algebraic folding of same-key pairs inside the
//! map task, before anything reaches the shuffle channels.
//!
//! A [`Combiner`] collapses the stream of `(key, value)` emissions of a
//! map task into at most one value per key per reduce partition — the
//! classic Hadoop combiner optimisation. Because the engine applies the
//! combiner *per reducer partition*, a map task ships one pre-combined,
//! pre-partitioned batch per reducer instead of every raw pair.
//!
//! **Correctness contract:** the combiner's fold must be an associative,
//! commutative reduction that the job's reducer also applies — i.e. the
//! value type forms a monoid under `combine` and the reducer treats
//! incoming values as partial aggregates. The approximation templates in
//! `approxhadoop-core` satisfy this by construction: their per-key
//! statistics (`KeyStat`, `PairStat`) carry exactly the per-cluster
//! `Σv` / `Σv²` sums the multi-stage estimators consume, and merging is
//! plain addition, so confidence intervals are identical with combining
//! on or off.

use std::marker::PhantomData;

use crate::mapper::{MapTaskContext, Mapper};
use crate::types::{Key, Value};

/// Folds a freshly emitted value into the accumulated value for `key`.
///
/// Implementations must be pure with respect to the key: the same
/// `(acc, incoming)` pair must fold identically on every call, or
/// combined and uncombined runs diverge.
pub trait Combiner<K, V>: Send + Sync {
    /// Folds `incoming` into `acc` (the running combined value for
    /// `key` within the current map task and reduce partition).
    fn combine(&self, key: &K, acc: &mut V, incoming: V);
}

/// Sums numeric values per key — the word-count combiner.
#[derive(Debug, Clone, Copy, Default)]
pub struct SumCombiner;

macro_rules! impl_sum_combiner {
    ($($t:ty),*) => {
        $(impl<K> Combiner<K, $t> for SumCombiner {
            fn combine(&self, _key: &K, acc: &mut $t, incoming: $t) {
                *acc += incoming;
            }
        })*
    };
}

impl_sum_combiner!(u32, u64, i32, i64, f32, f64);

/// Keeps the smallest value per key.
///
/// **NaN contract** (and for any `PartialOrd` type with unordered
/// values): `f64::min`-style — an unordered value is ignored unless
/// *every* value for the key is unordered, in which case one of them is
/// kept. Concretely, a NaN accumulator is displaced by the first ordered
/// incoming value, and a NaN incoming never displaces an ordered
/// accumulator. Combined and uncombined runs agree as long as the
/// reducer folds with the same rule (e.g. `f64::min` over the group).
/// Without this rule a NaN accumulator would be sticky (`incoming < NaN`
/// is always false) and combining on/off would diverge.
#[derive(Debug, Clone, Copy, Default)]
pub struct MinCombiner;

impl<K, V: PartialOrd + Send + Sync> Combiner<K, V> for MinCombiner {
    // `*acc != *acc` is the PartialOrd-generic probe for an unordered
    // accumulator (true only for NaN-like values); `is_nan` does not
    // exist for a generic `V`.
    #[allow(clippy::eq_op)]
    fn combine(&self, _key: &K, acc: &mut V, incoming: V) {
        if incoming < *acc || *acc != *acc {
            *acc = incoming;
        }
    }
}

/// Keeps the largest value per key.
///
/// Same NaN contract as [`MinCombiner`], mirroring `f64::max`.
#[derive(Debug, Clone, Copy, Default)]
pub struct MaxCombiner;

impl<K, V: PartialOrd + Send + Sync> Combiner<K, V> for MaxCombiner {
    // Same unordered-accumulator probe as `MinCombiner`.
    #[allow(clippy::eq_op)]
    fn combine(&self, _key: &K, acc: &mut V, incoming: V) {
        if incoming > *acc || *acc != *acc {
            *acc = incoming;
        }
    }
}

/// Sums `(y, x)` pairs component-wise — the combiner for raw
/// mean/ratio-style emissions where the reducer divides `Σy / Σx`.
#[derive(Debug, Clone, Copy, Default)]
pub struct PairSumCombiner;

impl<K> Combiner<K, (f64, f64)> for PairSumCombiner {
    fn combine(&self, _key: &K, acc: &mut (f64, f64), incoming: (f64, f64)) {
        acc.0 += incoming.0;
        acc.1 += incoming.1;
    }
}

/// A combiner from a closure `f(key, &mut acc, incoming)`.
pub struct FnCombiner<K, V, F> {
    f: F,
    _marker: PhantomData<fn(K, V)>,
}

impl<K, V, F> FnCombiner<K, V, F>
where
    F: Fn(&K, &mut V, V) + Send + Sync,
{
    /// Wraps `f` as a [`Combiner`].
    pub fn new(f: F) -> Self {
        FnCombiner {
            f,
            _marker: PhantomData,
        }
    }
}

impl<K, V, F> Combiner<K, V> for FnCombiner<K, V, F>
where
    K: Send + Sync,
    V: Send + Sync,
    F: Fn(&K, &mut V, V) + Send + Sync,
{
    fn combine(&self, key: &K, acc: &mut V, incoming: V) {
        (self.f)(key, acc, incoming)
    }
}

/// Attaches a combiner to any [`Mapper`], opting the job into the
/// map-side combining fast path without changing the mapper itself.
pub struct Combined<M, C> {
    mapper: M,
    combiner: C,
}

impl<M, C> Combined<M, C> {
    /// Pairs `mapper` with `combiner`.
    pub fn new(mapper: M, combiner: C) -> Self {
        Combined { mapper, combiner }
    }
}

impl<M, C> Mapper for Combined<M, C>
where
    M: Mapper,
    C: Combiner<M::Key, M::Value>,
{
    type Item = M::Item;
    type Key = M::Key;
    type Value = M::Value;
    type TaskState = M::TaskState;

    fn begin_task(&self, ctx: &MapTaskContext) -> Self::TaskState {
        self.mapper.begin_task(ctx)
    }

    fn map(
        &self,
        state: &mut Self::TaskState,
        item: Self::Item,
        emit: &mut dyn FnMut(Self::Key, Self::Value),
    ) {
        self.mapper.map(state, item, emit)
    }

    fn end_task(&self, state: Self::TaskState, emit: &mut dyn FnMut(Self::Key, Self::Value)) {
        self.mapper.end_task(state, emit)
    }

    fn combiner(&self) -> Option<&dyn Combiner<Self::Key, Self::Value>> {
        Some(&self.combiner)
    }
}

/// The per-partition map-side combine table: a pre-hashed open-addressing
/// fold with a sort-at-drain step.
///
/// Earlier engine versions kept a `BTreeMap` per partition so batches
/// shipped in key order for free, but that put an *ordered insert*
/// (a chain of key comparisons plus possible node splits) on every
/// single emission — the hottest loop in the whole system. The table is
/// now a flat linear-probe array keyed by the caller-supplied
/// [`fx_hash`](crate::types::fx_hash) — the *same* hash the partitioner
/// already computed for the emission, so each pair is hashed exactly
/// once — and the key sort happens once per batch, in
/// [`CombineTable::drain_sorted`], at ship/spill time. Combined keys are
/// unique within a table, so the sort has a single deterministic result
/// and shipped batches stay bit-identical with the old ordered-insert
/// path — the property the executor-equivalence differential suites pin.
///
/// Entries are only removed wholesale ([`drain_sorted`] /
/// [`clear`](CombineTable::clear)), never individually, so linear
/// probing needs no tombstones. Draining retains the slot array, so an
/// arena-reused table (see `MapBuffers`) stops growing once it has seen
/// its largest attempt.
///
/// [`drain_sorted`]: CombineTable::drain_sorted
#[derive(Debug, Clone)]
pub struct CombineTable<K, V> {
    /// Power-of-two slot array: `(fx_hash, key, value)` or empty.
    slots: Vec<Option<(u64, K, V)>>,
    len: usize,
}

/// First allocation of a combine table, in slots.
const COMBINE_TABLE_MIN_SLOTS: usize = 64;

impl<K: Key, V: Value> CombineTable<K, V> {
    /// An empty table (no allocation until the first fold).
    pub fn new() -> Self {
        CombineTable {
            slots: Vec::new(),
            len: 0,
        }
    }

    /// Number of distinct keys currently folded.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no pairs have been folded since the last drain.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Folds one `(key, value)` emission into the table: a single probe
    /// from the precomputed `hash` ([`fx_hash`](crate::types::fx_hash)
    /// of `key`) combines on the hot (repeated-key) path and inserts the
    /// first time a key is seen.
    #[inline]
    pub fn fold(&mut self, combiner: &dyn Combiner<K, V>, hash: u64, key: K, value: V) {
        debug_assert_eq!(
            hash,
            crate::types::fx_hash(&key),
            "hash must be fx_hash(key)"
        );
        // Grow at 3/4 load so probe chains stay short.
        if self.len * 4 >= self.slots.len() * 3 {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut i = hash as usize & mask;
        loop {
            match &mut self.slots[i] {
                Some((h, k, acc)) if *h == hash && *k == key => {
                    combiner.combine(k, acc, value);
                    return;
                }
                Some(_) => i = (i + 1) & mask,
                empty @ None => {
                    *empty = Some((hash, key, value));
                    self.len += 1;
                    return;
                }
            }
        }
    }

    /// Doubles the slot array (or makes the first allocation),
    /// re-placing entries by their stored hash — keys are not re-hashed.
    fn grow(&mut self) {
        let new_cap = (self.slots.len() * 2).max(COMBINE_TABLE_MIN_SLOTS);
        let old = std::mem::take(&mut self.slots);
        self.slots.resize_with(new_cap, || None);
        let mask = new_cap - 1;
        for entry in old.into_iter().flatten() {
            let mut i = entry.0 as usize & mask;
            while self.slots[i].is_some() {
                i = (i + 1) & mask;
            }
            self.slots[i] = Some(entry);
        }
    }

    /// Drains every folded pair in ascending key order, leaving the
    /// table empty but with its slot array intact. Keys are unique, so
    /// the unstable sort is deterministic.
    pub fn drain_sorted(&mut self) -> Vec<(K, V)> {
        let mut pairs: Vec<(K, V)> = self
            .slots
            .iter_mut()
            .filter_map(|slot| slot.take().map(|(_, k, v)| (k, v)))
            .collect();
        self.len = 0;
        pairs.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        pairs
    }

    /// Discards all folded pairs, keeping the slot array.
    pub fn clear(&mut self) {
        for slot in &mut self.slots {
            *slot = None;
        }
        self.len = 0;
    }
}

impl<K: Key, V: Value> Default for CombineTable<K, V> {
    fn default() -> Self {
        CombineTable::new()
    }
}

/// Folds one emission into a per-partition combined table, or appends it
/// to the raw pair list when no combiner is active. `hash` is the
/// [`fx_hash`](crate::types::fx_hash) of `key` — callers derive the
/// partition from it ([`Partitioner::partition_of_hash`]) and pass it
/// through so the combine probe never re-hashes. Used by the engine's
/// map attempt; public so custom engines (e.g. the cluster simulator)
/// can reuse the exact routing logic.
///
/// [`Partitioner::partition_of_hash`]: crate::types::Partitioner::partition_of_hash
#[inline]
pub fn route_emission<K: Key, V: Value>(
    combiner: Option<&dyn Combiner<K, V>>,
    raw: &mut [Vec<(K, V)>],
    combined: &mut [CombineTable<K, V>],
    partition: usize,
    hash: u64,
    key: K,
    value: V,
) {
    match combiner {
        Some(c) => combined[partition].fold(c, hash, key, value),
        None => raw[partition].push((key, value)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapper::FnMapper;
    use crate::types::TaskId;

    #[test]
    fn sum_combiner_adds() {
        let c = SumCombiner;
        let mut acc = 3u64;
        Combiner::<&str, u64>::combine(&c, &"k", &mut acc, 4);
        assert_eq!(acc, 7);
        let mut f = 1.5f64;
        Combiner::<u32, f64>::combine(&c, &0, &mut f, 2.5);
        assert_eq!(f, 4.0);
    }

    #[test]
    fn min_max_combiners_track_extremes() {
        let mut acc = 5.0f64;
        Combiner::<u8, f64>::combine(&MinCombiner, &0, &mut acc, 7.0);
        assert_eq!(acc, 5.0);
        Combiner::<u8, f64>::combine(&MinCombiner, &0, &mut acc, 2.0);
        assert_eq!(acc, 2.0);
        Combiner::<u8, f64>::combine(&MaxCombiner, &0, &mut acc, 9.0);
        assert_eq!(acc, 9.0);
    }

    #[test]
    fn pair_sum_combiner_adds_componentwise() {
        let mut acc = (1.0, 2.0);
        Combiner::<u8, (f64, f64)>::combine(&PairSumCombiner, &0, &mut acc, (3.0, 4.0));
        assert_eq!(acc, (4.0, 6.0));
    }

    #[test]
    fn fn_combiner_applies_closure() {
        let c = FnCombiner::new(|_k: &u32, acc: &mut Vec<u32>, mut v: Vec<u32>| {
            acc.append(&mut v);
        });
        let mut acc = vec![1];
        c.combine(&0, &mut acc, vec![2, 3]);
        assert_eq!(acc, vec![1, 2, 3]);
    }

    #[test]
    fn combined_adapter_exposes_combiner_and_delegates() {
        let m = Combined::new(
            FnMapper::new(|v: &u32, emit: &mut dyn FnMut(u32, u64)| emit(*v % 2, 1)),
            SumCombiner,
        );
        assert!(m.combiner().is_some());
        let ctx = MapTaskContext {
            task: TaskId(0),
            dataset: Default::default(),
            sampling_ratio: 1.0,
            attempt: 0,
        };
        let mut out = Vec::new();
        m.begin_task(&ctx);
        m.map(&mut (), 3, &mut |k, v| out.push((k, v)));
        m.end_task((), &mut |k, v| out.push((k, v)));
        assert_eq!(out, vec![(1, 1)]);
    }

    #[test]
    fn route_emission_combines_or_appends() {
        let h = crate::types::fx_hash::<u32>;
        let mut raw: Vec<Vec<(u32, u64)>> = vec![Vec::new(), Vec::new()];
        let mut combined: Vec<CombineTable<u32, u64>> =
            vec![CombineTable::new(), CombineTable::new()];
        // No combiner: raw append.
        route_emission(None, &mut raw, &mut combined, 0, h(&7), 7, 1);
        route_emission(None, &mut raw, &mut combined, 0, h(&7), 7, 1);
        assert_eq!(raw[0], vec![(7, 1), (7, 1)]);
        assert!(combined[0].is_empty());
        // Combiner: folded into the table.
        let c = SumCombiner;
        route_emission(Some(&c), &mut raw, &mut combined, 1, h(&9), 9, 1);
        route_emission(Some(&c), &mut raw, &mut combined, 1, h(&9), 9, 1);
        assert!(raw[1].is_empty());
        assert_eq!(combined[1].drain_sorted(), vec![(9, 2)]);
    }

    #[test]
    fn combine_table_drains_in_key_order_and_keeps_capacity() {
        let mut table: CombineTable<String, u64> = CombineTable::new();
        let c = SumCombiner;
        for i in [5u32, 1, 9, 1, 5, 3] {
            let k = format!("k{i}");
            table.fold(&c, crate::types::fx_hash(&k), k, 1);
        }
        assert_eq!(table.len(), 4);
        let drained = table.drain_sorted();
        assert_eq!(
            drained,
            vec![
                ("k1".to_string(), 2),
                ("k3".to_string(), 1),
                ("k5".to_string(), 2),
                ("k9".to_string(), 1),
            ]
        );
        assert!(table.is_empty());
        // Refilling after a drain reuses the retained allocation and
        // yields the same deterministic order again.
        for i in [9u32, 5, 3, 1, 1, 5] {
            let k = format!("k{i}");
            table.fold(&c, crate::types::fx_hash(&k), k, 1);
        }
        assert_eq!(
            table
                .drain_sorted()
                .iter()
                .map(|(k, _)| k.clone())
                .collect::<Vec<_>>(),
            vec!["k1", "k3", "k5", "k9"]
        );
    }

    #[test]
    fn combine_table_grows_past_initial_capacity() {
        // Enough distinct keys to force several doublings; every key's
        // count must survive the re-placements intact.
        let mut table: CombineTable<u64, u64> = CombineTable::new();
        let c = SumCombiner;
        for round in 0..3u64 {
            for k in 0..5000u64 {
                let _ = round;
                table.fold(&c, crate::types::fx_hash(&k), k, 1);
            }
        }
        assert_eq!(table.len(), 5000);
        let drained = table.drain_sorted();
        assert_eq!(drained.len(), 5000);
        assert!(drained
            .iter()
            .enumerate()
            .all(|(i, &(k, v))| k == i as u64 && v == 3));
    }

    /// The reference fold for the Min/Max NaN contract: ignore NaN
    /// unless every value is NaN.
    fn min_ignoring_nan(values: &[f64]) -> f64 {
        values.iter().copied().fold(f64::NAN, f64::min)
    }

    fn max_ignoring_nan(values: &[f64]) -> f64 {
        values.iter().copied().fold(f64::NAN, f64::max)
    }

    /// Deterministic xorshift for the property tests below.
    fn next_rand(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    #[test]
    fn min_max_combiners_ignore_nan_unless_all_nan() {
        let mut acc = f64::NAN;
        Combiner::<u8, f64>::combine(&MinCombiner, &0, &mut acc, f64::NAN);
        assert!(acc.is_nan(), "all-NaN stream stays NaN");
        Combiner::<u8, f64>::combine(&MinCombiner, &0, &mut acc, 4.0);
        assert_eq!(acc, 4.0, "first ordered value displaces a NaN accumulator");
        Combiner::<u8, f64>::combine(&MinCombiner, &0, &mut acc, f64::NAN);
        assert_eq!(
            acc, 4.0,
            "NaN incoming never displaces an ordered accumulator"
        );
        Combiner::<u8, f64>::combine(&MinCombiner, &0, &mut acc, 2.0);
        assert_eq!(acc, 2.0);

        let mut acc = f64::NAN;
        Combiner::<u8, f64>::combine(&MaxCombiner, &0, &mut acc, 4.0);
        Combiner::<u8, f64>::combine(&MaxCombiner, &0, &mut acc, f64::NAN);
        Combiner::<u8, f64>::combine(&MaxCombiner, &0, &mut acc, 9.0);
        assert_eq!(acc, 9.0);
    }

    /// Property test for the satellite fix: over random NaN-bearing
    /// streams, routing through the combiner (combining on) and reducing
    /// the raw pairs with the reference fold (combining off) must agree
    /// bit-for-bit. Before the fix a NaN accumulator was sticky and the
    /// two paths diverged.
    #[test]
    fn min_max_combine_on_off_equivalence_with_nans() {
        let mut rng = 0x9e3779b97f4a7c15u64;
        for case in 0..200 {
            let keys = 1 + (next_rand(&mut rng) % 5) as u32;
            let len = 1 + (next_rand(&mut rng) % 40) as usize;
            let mut raw: Vec<Vec<(u32, f64)>> = vec![Vec::new()];
            let mut min_tab: Vec<CombineTable<u32, f64>> = vec![CombineTable::new()];
            let mut max_tab: Vec<CombineTable<u32, f64>> = vec![CombineTable::new()];
            for _ in 0..len {
                let key = (next_rand(&mut rng) % keys as u64) as u32;
                let value = match next_rand(&mut rng) % 4 {
                    0 => f64::NAN,
                    _ => (next_rand(&mut rng) % 1000) as f64 - 500.0,
                };
                let h = crate::types::fx_hash(&key);
                route_emission(None, &mut raw, &mut min_tab, 0, h, key, value);
                route_emission(Some(&MinCombiner), &mut raw, &mut min_tab, 0, h, key, value);
                route_emission(Some(&MaxCombiner), &mut raw, &mut max_tab, 0, h, key, value);
            }
            // Reference: group the raw pairs, fold with the documented
            // NaN-ignoring rule.
            let mut groups: std::collections::BTreeMap<u32, Vec<f64>> = Default::default();
            for (k, v) in &raw[0] {
                groups.entry(*k).or_default().push(*v);
            }
            for (k, min_v) in min_tab[0].drain_sorted() {
                let want = min_ignoring_nan(&groups[&k]);
                assert_eq!(
                    min_v.to_bits(),
                    want.to_bits(),
                    "case {case}: min diverged for key {k}: {min_v} vs {want}"
                );
            }
            for (k, max_v) in max_tab[0].drain_sorted() {
                let want = max_ignoring_nan(&groups[&k]);
                assert_eq!(
                    max_v.to_bits(),
                    want.to_bits(),
                    "case {case}: max diverged for key {k}: {max_v} vs {want}"
                );
            }
            raw[0].clear();
        }
    }
}
