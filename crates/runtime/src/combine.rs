//! Map-side combiners: algebraic folding of same-key pairs inside the
//! map task, before anything reaches the shuffle channels.
//!
//! A [`Combiner`] collapses the stream of `(key, value)` emissions of a
//! map task into at most one value per key per reduce partition — the
//! classic Hadoop combiner optimisation. Because the engine applies the
//! combiner *per reducer partition*, a map task ships one pre-combined,
//! pre-partitioned batch per reducer instead of every raw pair.
//!
//! **Correctness contract:** the combiner's fold must be an associative,
//! commutative reduction that the job's reducer also applies — i.e. the
//! value type forms a monoid under `combine` and the reducer treats
//! incoming values as partial aggregates. The approximation templates in
//! `approxhadoop-core` satisfy this by construction: their per-key
//! statistics (`KeyStat`, `PairStat`) carry exactly the per-cluster
//! `Σv` / `Σv²` sums the multi-stage estimators consume, and merging is
//! plain addition, so confidence intervals are identical with combining
//! on or off.

use std::marker::PhantomData;

use crate::mapper::{MapTaskContext, Mapper};
use crate::types::{Key, Value};

/// Folds a freshly emitted value into the accumulated value for `key`.
///
/// Implementations must be pure with respect to the key: the same
/// `(acc, incoming)` pair must fold identically on every call, or
/// combined and uncombined runs diverge.
pub trait Combiner<K, V>: Send + Sync {
    /// Folds `incoming` into `acc` (the running combined value for
    /// `key` within the current map task and reduce partition).
    fn combine(&self, key: &K, acc: &mut V, incoming: V);
}

/// Sums numeric values per key — the word-count combiner.
#[derive(Debug, Clone, Copy, Default)]
pub struct SumCombiner;

macro_rules! impl_sum_combiner {
    ($($t:ty),*) => {
        $(impl<K> Combiner<K, $t> for SumCombiner {
            fn combine(&self, _key: &K, acc: &mut $t, incoming: $t) {
                *acc += incoming;
            }
        })*
    };
}

impl_sum_combiner!(u32, u64, i32, i64, f32, f64);

/// Keeps the smallest value per key.
#[derive(Debug, Clone, Copy, Default)]
pub struct MinCombiner;

impl<K, V: PartialOrd + Send + Sync> Combiner<K, V> for MinCombiner {
    fn combine(&self, _key: &K, acc: &mut V, incoming: V) {
        if incoming < *acc {
            *acc = incoming;
        }
    }
}

/// Keeps the largest value per key.
#[derive(Debug, Clone, Copy, Default)]
pub struct MaxCombiner;

impl<K, V: PartialOrd + Send + Sync> Combiner<K, V> for MaxCombiner {
    fn combine(&self, _key: &K, acc: &mut V, incoming: V) {
        if incoming > *acc {
            *acc = incoming;
        }
    }
}

/// Sums `(y, x)` pairs component-wise — the combiner for raw
/// mean/ratio-style emissions where the reducer divides `Σy / Σx`.
#[derive(Debug, Clone, Copy, Default)]
pub struct PairSumCombiner;

impl<K> Combiner<K, (f64, f64)> for PairSumCombiner {
    fn combine(&self, _key: &K, acc: &mut (f64, f64), incoming: (f64, f64)) {
        acc.0 += incoming.0;
        acc.1 += incoming.1;
    }
}

/// A combiner from a closure `f(key, &mut acc, incoming)`.
pub struct FnCombiner<K, V, F> {
    f: F,
    _marker: PhantomData<fn(K, V)>,
}

impl<K, V, F> FnCombiner<K, V, F>
where
    F: Fn(&K, &mut V, V) + Send + Sync,
{
    /// Wraps `f` as a [`Combiner`].
    pub fn new(f: F) -> Self {
        FnCombiner {
            f,
            _marker: PhantomData,
        }
    }
}

impl<K, V, F> Combiner<K, V> for FnCombiner<K, V, F>
where
    K: Send + Sync,
    V: Send + Sync,
    F: Fn(&K, &mut V, V) + Send + Sync,
{
    fn combine(&self, key: &K, acc: &mut V, incoming: V) {
        (self.f)(key, acc, incoming)
    }
}

/// Attaches a combiner to any [`Mapper`], opting the job into the
/// map-side combining fast path without changing the mapper itself.
pub struct Combined<M, C> {
    mapper: M,
    combiner: C,
}

impl<M, C> Combined<M, C> {
    /// Pairs `mapper` with `combiner`.
    pub fn new(mapper: M, combiner: C) -> Self {
        Combined { mapper, combiner }
    }
}

impl<M, C> Mapper for Combined<M, C>
where
    M: Mapper,
    C: Combiner<M::Key, M::Value>,
{
    type Item = M::Item;
    type Key = M::Key;
    type Value = M::Value;
    type TaskState = M::TaskState;

    fn begin_task(&self, ctx: &MapTaskContext) -> Self::TaskState {
        self.mapper.begin_task(ctx)
    }

    fn map(
        &self,
        state: &mut Self::TaskState,
        item: Self::Item,
        emit: &mut dyn FnMut(Self::Key, Self::Value),
    ) {
        self.mapper.map(state, item, emit)
    }

    fn end_task(&self, state: Self::TaskState, emit: &mut dyn FnMut(Self::Key, Self::Value)) {
        self.mapper.end_task(state, emit)
    }

    fn combiner(&self) -> Option<&dyn Combiner<Self::Key, Self::Value>> {
        Some(&self.combiner)
    }
}

/// Folds one emission into a per-partition combined table, or appends it
/// to the raw pair list when no combiner is active. Used by the engine's
/// map attempt; public so custom engines (e.g. the cluster simulator)
/// can reuse the exact routing logic.
pub fn route_emission<K: Key, V: Value>(
    combiner: Option<&dyn Combiner<K, V>>,
    raw: &mut [Vec<(K, V)>],
    combined: &mut [std::collections::BTreeMap<K, V>],
    partition: usize,
    key: K,
    value: V,
) {
    match combiner {
        Some(c) => {
            let table = &mut combined[partition];
            if let Some(acc) = table.get_mut(&key) {
                c.combine(&key, acc, value);
            } else {
                table.insert(key, value);
            }
        }
        None => raw[partition].push((key, value)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapper::FnMapper;
    use crate::types::TaskId;
    use std::collections::BTreeMap;

    #[test]
    fn sum_combiner_adds() {
        let c = SumCombiner;
        let mut acc = 3u64;
        Combiner::<&str, u64>::combine(&c, &"k", &mut acc, 4);
        assert_eq!(acc, 7);
        let mut f = 1.5f64;
        Combiner::<u32, f64>::combine(&c, &0, &mut f, 2.5);
        assert_eq!(f, 4.0);
    }

    #[test]
    fn min_max_combiners_track_extremes() {
        let mut acc = 5.0f64;
        Combiner::<u8, f64>::combine(&MinCombiner, &0, &mut acc, 7.0);
        assert_eq!(acc, 5.0);
        Combiner::<u8, f64>::combine(&MinCombiner, &0, &mut acc, 2.0);
        assert_eq!(acc, 2.0);
        Combiner::<u8, f64>::combine(&MaxCombiner, &0, &mut acc, 9.0);
        assert_eq!(acc, 9.0);
    }

    #[test]
    fn pair_sum_combiner_adds_componentwise() {
        let mut acc = (1.0, 2.0);
        Combiner::<u8, (f64, f64)>::combine(&PairSumCombiner, &0, &mut acc, (3.0, 4.0));
        assert_eq!(acc, (4.0, 6.0));
    }

    #[test]
    fn fn_combiner_applies_closure() {
        let c = FnCombiner::new(|_k: &u32, acc: &mut Vec<u32>, mut v: Vec<u32>| {
            acc.append(&mut v);
        });
        let mut acc = vec![1];
        c.combine(&0, &mut acc, vec![2, 3]);
        assert_eq!(acc, vec![1, 2, 3]);
    }

    #[test]
    fn combined_adapter_exposes_combiner_and_delegates() {
        let m = Combined::new(
            FnMapper::new(|v: &u32, emit: &mut dyn FnMut(u32, u64)| emit(*v % 2, 1)),
            SumCombiner,
        );
        assert!(m.combiner().is_some());
        let ctx = MapTaskContext {
            task: TaskId(0),
            sampling_ratio: 1.0,
            attempt: 0,
        };
        let mut out = Vec::new();
        m.begin_task(&ctx);
        m.map(&mut (), 3, &mut |k, v| out.push((k, v)));
        m.end_task((), &mut |k, v| out.push((k, v)));
        assert_eq!(out, vec![(1, 1)]);
    }

    #[test]
    fn route_emission_combines_or_appends() {
        let mut raw: Vec<Vec<(u32, u64)>> = vec![Vec::new(), Vec::new()];
        let mut combined: Vec<BTreeMap<u32, u64>> = vec![BTreeMap::new(), BTreeMap::new()];
        // No combiner: raw append.
        route_emission(None, &mut raw, &mut combined, 0, 7, 1);
        route_emission(None, &mut raw, &mut combined, 0, 7, 1);
        assert_eq!(raw[0], vec![(7, 1), (7, 1)]);
        assert!(combined[0].is_empty());
        // Combiner: folded into the table.
        let c = SumCombiner;
        route_emission(Some(&c), &mut raw, &mut combined, 1, 9, 1);
        route_emission(Some(&c), &mut raw, &mut combined, 1, 9, 1);
        assert!(raw[1].is_empty());
        assert_eq!(combined[1].get(&9), Some(&2));
    }
}
