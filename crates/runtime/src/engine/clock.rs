//! Time source for scheduler decisions.
//!
//! Every control-flow decision that reads the clock — straggler
//! detection, retry due-times, deadline checks — goes through [`Clock`]
//! so tests can drive them deterministically with [`FakeClock`] instead
//! of real sleeps. Telemetry timestamps (`wall_secs`, bound-series
//! times) stay on the real clock: they are reporting, not control flow.

use std::time::Instant;

/// A monotonic time source the [`super::scheduler::JobTracker`] consults
/// for every timing decision.
pub(crate) trait Clock: Sync {
    /// The current instant.
    fn now(&self) -> Instant;
}

/// The real monotonic clock — production behaviour.
pub(crate) struct SystemClock;

impl Clock for SystemClock {
    fn now(&self) -> Instant {
        Instant::now()
    }
}

/// A deterministic test clock: a fixed base instant plus an atomically
/// advanced offset. "Time passing" is an explicit [`FakeClock::advance`]
/// call, so timing-sensitive scheduler tests never sleep and never race
/// against machine load.
#[cfg(test)]
pub(crate) struct FakeClock {
    base: Instant,
    offset_micros: std::sync::atomic::AtomicU64,
}

#[cfg(test)]
impl FakeClock {
    pub(crate) fn new() -> Self {
        FakeClock {
            base: Instant::now(),
            offset_micros: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// The instant the fake clock started at; deadlines for tests are
    /// expressed relative to this.
    pub(crate) fn base(&self) -> Instant {
        self.base
    }

    /// Advances the clock by `d` for every subsequent `now()` reader.
    pub(crate) fn advance(&self, d: std::time::Duration) {
        self.offset_micros
            .fetch_add(d.as_micros() as u64, std::sync::atomic::Ordering::SeqCst);
    }
}

#[cfg(test)]
impl Clock for FakeClock {
    fn now(&self) -> Instant {
        let offset = self.offset_micros.load(std::sync::atomic::Ordering::SeqCst);
        self.base + std::time::Duration::from_micros(offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn fake_clock_advances_without_sleeping() {
        let clock = FakeClock::new();
        let t0 = clock.now();
        assert_eq!(t0, clock.base());
        clock.advance(Duration::from_secs(5));
        assert_eq!(clock.now().duration_since(t0), Duration::from_secs(5));
    }

    #[test]
    fn system_clock_is_monotonic() {
        let clock = SystemClock;
        let a = clock.now();
        let b = clock.now();
        assert!(b >= a);
    }
}
