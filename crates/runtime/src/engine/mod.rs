//! The MapReduce engine: one scheduler, pluggable execution backends.
//!
//! The engine is split along the paper's own seam (§3): *deciding* what
//! to run is the JobTracker's job, *running* it is the cluster's.
//!
//! * `scheduler` — the single `JobTracker` state machine owning every
//!   control-flow decision: dispatch order and data locality, task
//!   dropping, mid-flight kills, speculative execution, bounded retry
//!   with backoff and blacklisting, degrade-to-drop plus its error
//!   budget, wave accounting and event/telemetry emission.
//! * `executor` — the `Executor` trait and its two backends: scoped
//!   task-tracker threads (job-private simulated servers) and the
//!   shared [`crate::pool::SlotPool`] (service mode).
//! * `attempt` — the worker-side body of one map attempt.
//! * `shuffle` — per-reducer channels, batch shipping, drop
//!   broadcasts and the reduce-side drain loop.
//! * `clock` — the time source scheduling decisions consult, swapped
//!   for a fake in deterministic tests.
//!
//! The public entry points below are thin wrappers that validate the
//! [`JobConfig`], pick a backend and hand everything to the tracker.

mod attempt;
mod clock;
mod executor;
pub mod process;
mod scheduler;
mod shuffle;

pub use attempt::{RemoteSpan, WorkItem, WorkerMsg};
pub use executor::{Executor, RecvOutcome};
pub use process::{run_job_process, WorkerSpec};

use std::path::PathBuf;
use std::sync::Arc;

use crate::control::{Coordinator, FixedCoordinator};
use crate::event::{JobId, JobSession};
use crate::fault::{FaultPlan, FaultPolicy};
use crate::input::InputSource;
use crate::mapper::Mapper;
use crate::metrics::JobMetrics;
use crate::pool::{SlotPool, TenantId};
use crate::reducer::Reducer;
use crate::{Result, RuntimeError};

use clock::SystemClock;

/// Configuration of one MapReduce job.
#[derive(Debug, Clone)]
pub struct JobConfig {
    /// Concurrent map tasks across the cluster (total map slots).
    pub map_slots: usize,
    /// Simulated servers hosting the slots (slots are spread round-robin
    /// across servers; the scheduler prefers tasks whose input block has
    /// a replica on the assigned server — HDFS-style data locality).
    pub servers: usize,
    /// Number of reduce tasks.
    pub reduce_tasks: usize,
    /// Within-block input sampling ratio applied by the default policy
    /// (`1.0` = precise).
    pub sampling_ratio: f64,
    /// Fraction of map tasks dropped by the default policy.
    pub drop_ratio: f64,
    /// Per-dataset approximation ratios for **multi-input** jobs:
    /// `datasets[d]` governs every split tagged
    /// [`DatasetId`](crate::input::DatasetId)` (d)`, overriding the
    /// job-wide `sampling_ratio`/`drop_ratio` pair. Empty (the default)
    /// means single-input behaviour: one dataset, the job-wide ratios —
    /// bit-identical to the pre-multi-input engine.
    pub datasets: Vec<crate::control::DatasetRatios>,
    /// Seed for task ordering, drop selection and per-task sampling.
    pub seed: u64,
    /// Enable speculative execution of stragglers.
    pub speculative: bool,
    /// A task is a straggler when it runs longer than
    /// `straggler_factor × mean completed-map time`. Must be finite and
    /// at least `1.0` (below that, every task is "slower than itself"
    /// and gets speculatively relaunched).
    pub straggler_factor: f64,
    /// Deterministic fault injection (testing/chaos); `None` injects
    /// nothing. DFS-level knobs additionally need the plan installed on
    /// the cluster via
    /// [`DfsCluster::set_read_faults`](approxhadoop_dfs::DfsCluster::set_read_faults).
    pub fault_plan: Option<FaultPlan>,
    /// How the tracker reacts to failed map attempts: bounded retry with
    /// backoff, server blacklisting, and degrade-to-drop. The default
    /// policy (no retries, no degrading) fails the job on the first
    /// exhausted task, matching the engine's historical behaviour.
    pub fault_policy: FaultPolicy,
    /// Optional observability context: when set, the tracker records
    /// registry metrics and a `job → wave → task` span tree into it.
    /// `None` (the default) runs fully uninstrumented.
    pub obs: Option<Arc<approxhadoop_obs::Obs>>,
    /// Enable map-side combining for mappers that provide a
    /// [`crate::combine::Combiner`] (on by default). Turning this off
    /// forces the raw per-pair shuffle path — useful for A/B perf
    /// comparisons; results are identical either way.
    pub combining: bool,
    /// Worker **processes** spawned by the process backend
    /// ([`run_job_process`]); each worker holds one map slot. Ignored by
    /// the in-process backends, which size themselves from `map_slots`.
    pub workers: usize,
    /// Per-attempt in-memory shuffle budget (bytes of encoded pairs) on
    /// the process backend. When an attempt's buffered map output
    /// exceeds this budget the worker spills a sorted run to disk and
    /// merges the runs back while shipping, so shuffles larger than RAM
    /// complete. Ignored by the in-process backends.
    pub shuffle_mem_bytes: usize,
    /// Directory for process-backend scratch files (input spool, spill
    /// runs). `None` (the default) uses the system temp directory.
    pub spill_dir: Option<PathBuf>,
    /// Directory for flight-recorder dumps: when the job fails (fatal
    /// error, reducer panic, degrade-budget breach) or a worker process
    /// crashes, the scheduler writes its recent-decision ring there as
    /// `flight-<job>-<reason>.json`. `None` falls back to the
    /// `APPROX_FLIGHT_DIR` environment variable; with neither set, no
    /// dump is written.
    pub flight_dir: Option<PathBuf>,
}

impl Default for JobConfig {
    fn default() -> Self {
        JobConfig {
            map_slots: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            servers: 1,
            reduce_tasks: 1,
            sampling_ratio: 1.0,
            drop_ratio: 0.0,
            datasets: Vec::new(),
            seed: 0,
            speculative: false,
            straggler_factor: 2.0,
            fault_plan: None,
            fault_policy: FaultPolicy::default(),
            obs: None,
            combining: true,
            workers: 2,
            shuffle_mem_bytes: 64 * 1024 * 1024,
            spill_dir: None,
            flight_dir: None,
        }
    }
}

impl JobConfig {
    /// Checks every invariant a job needs to run — positive slot/server/
    /// reducer counts, ratio ranges, a sane straggler factor, and the
    /// embedded fault plan/policy. Every entry point (engine, job
    /// service, CLI) funnels through this one check, so a config is
    /// rejected identically no matter how it arrives.
    pub fn validate(&self) -> Result<()> {
        if self.map_slots == 0 {
            return Err(RuntimeError::invalid("map_slots must be positive"));
        }
        if self.servers == 0 {
            return Err(RuntimeError::invalid("servers must be positive"));
        }
        if self.reduce_tasks == 0 {
            return Err(RuntimeError::invalid("reduce_tasks must be positive"));
        }
        if self.workers == 0 {
            return Err(RuntimeError::invalid("workers must be positive"));
        }
        if self.shuffle_mem_bytes == 0 {
            return Err(RuntimeError::invalid("shuffle_mem_bytes must be positive"));
        }
        if !(self.sampling_ratio > 0.0 && self.sampling_ratio <= 1.0) {
            return Err(RuntimeError::invalid(format!(
                "sampling_ratio must lie in (0, 1], got {}",
                self.sampling_ratio
            )));
        }
        if !(0.0..1.0).contains(&self.drop_ratio) {
            return Err(RuntimeError::invalid(format!(
                "drop_ratio must lie in [0, 1), got {}",
                self.drop_ratio
            )));
        }
        for (d, r) in self.datasets.iter().enumerate() {
            r.validate()
                .map_err(|e| RuntimeError::invalid(format!("dataset {d}: {e}")))?;
        }
        if !(self.straggler_factor.is_finite() && self.straggler_factor >= 1.0) {
            return Err(RuntimeError::invalid(format!(
                "straggler_factor must be finite and >= 1.0, got {}",
                self.straggler_factor
            )));
        }
        if let Some(plan) = &self.fault_plan {
            plan.validate().map_err(RuntimeError::invalid)?;
        }
        self.fault_policy
            .validate()
            .map_err(RuntimeError::invalid)?;
        Ok(())
    }
}

/// The outcome of a job: reducer outputs (concatenated in reducer order)
/// plus execution metrics.
#[derive(Debug)]
pub struct JobResult<O> {
    /// All reducers' outputs.
    pub outputs: Vec<O>,
    /// Execution metrics.
    pub metrics: JobMetrics,
}

/// Runs a job with the default fixed-ratio policy derived from
/// `config.sampling_ratio` / `config.drop_ratio` — the paper's
/// "user-specified dropping/sampling ratios" mode.
pub fn run_job<S, M, R, FR>(
    input: &S,
    mapper: &M,
    make_reducer: FR,
    config: JobConfig,
) -> Result<JobResult<R::Output>>
where
    S: InputSource,
    M: Mapper<Item = S::Item>,
    R: Reducer<Key = M::Key, Value = M::Value>,
    FR: Fn(usize) -> R + Sync,
{
    config.validate()?;
    let splits = input.splits();
    if splits.is_empty() {
        return Err(RuntimeError::invalid("input has no splits"));
    }
    if config.datasets.is_empty() {
        let mut coordinator = FixedCoordinator::new(
            splits.len(),
            config.sampling_ratio,
            config.drop_ratio,
            config.seed,
        );
        run_job_with_coordinator(input, mapper, make_reducer, config, &mut coordinator)
    } else {
        // Multi-input job: per-dataset ratios, with drop selection
        // performed within each dataset's own task set.
        let mut coordinator =
            crate::control::DatasetFixedCoordinator::new(&splits, &config.datasets, config.seed)?;
        run_job_with_coordinator(input, mapper, make_reducer, config, &mut coordinator)
    }
}

/// Runs a job under an explicit [`Coordinator`] policy (used by the
/// target-error-bound controller in `approxhadoop-core`).
pub fn run_job_with_coordinator<S, M, R, FR>(
    input: &S,
    mapper: &M,
    make_reducer: FR,
    config: JobConfig,
    coordinator: &mut dyn Coordinator,
) -> Result<JobResult<R::Output>>
where
    S: InputSource,
    M: Mapper<Item = S::Item>,
    R: Reducer<Key = M::Key, Value = M::Value>,
    FR: Fn(usize) -> R + Sync,
{
    config.validate()?;
    let session = JobSession::new(JobId(0));
    executor::run_scoped(
        input,
        mapper,
        make_reducer,
        config,
        coordinator,
        &session,
        &SystemClock,
        1,
        "run_job",
    )
}

/// Runs a job on the scoped backend under a caller-owned [`JobSession`]:
/// like [`run_job_with_coordinator`], plus cancellation (the job fails
/// with [`RuntimeError::Cancelled`]), an optional deadline (remaining
/// maps are dropped and the job completes **approximately**, flagged via
/// [`JobMetrics::deadline_hit`]) and a stream of [`JobEvent`] progress
/// events — the same session semantics [`run_job_on_pool`] offers, on
/// job-private threads.
///
/// [`JobEvent`]: crate::event::JobEvent
pub fn run_job_with_session<S, M, R, FR>(
    input: &S,
    mapper: &M,
    make_reducer: FR,
    config: JobConfig,
    coordinator: &mut dyn Coordinator,
    session: &JobSession,
) -> Result<JobResult<R::Output>>
where
    S: InputSource,
    M: Mapper<Item = S::Item>,
    R: Reducer<Key = M::Key, Value = M::Value>,
    FR: Fn(usize) -> R + Sync,
{
    config.validate()?;
    let label = session.job.to_string();
    executor::run_scoped(
        input,
        mapper,
        make_reducer,
        config,
        coordinator,
        session,
        &SystemClock,
        session.job.0 + 2,
        &label,
    )
}

/// Runs a job on a shared [`SlotPool`] instead of job-private
/// task-tracker threads — the service-mode entry point.
///
/// Differences from [`run_job_with_coordinator`]:
///
/// * map attempts execute on `pool` slots shared with other concurrent
///   jobs, queued under `tenant` for weighted fair sharing; the job's
///   own `config.map_slots` caps *its* attempts in flight, while the
///   pool caps how many actually run at once across all jobs;
/// * the per-job handle in `session` adds cancellation (job fails with
///   [`RuntimeError::Cancelled`]), a deadline (remaining maps are
///   dropped and the job completes **approximately**, flagged via
///   [`JobMetrics::deadline_hit`]) and a stream of
///   [`JobEvent::Wave`](crate::event::JobEvent::Wave) /
///   [`JobEvent::Estimate`](crate::event::JobEvent::Estimate) progress
///   events;
/// * simulated data locality and speculative execution do not apply —
///   the pool is one shared cluster, not per-job virtual servers.
///
/// `input` and `mapper` are `Arc`s because attempts outlive the borrow
/// a scoped thread could give them: they run on pool workers owned by
/// the service, not by this call.
#[allow(clippy::too_many_arguments)] // the service-facing surface: job + policy + pool + session
pub fn run_job_on_pool<S, M, R, FR>(
    input: Arc<S>,
    mapper: Arc<M>,
    make_reducer: FR,
    config: JobConfig,
    coordinator: &mut dyn Coordinator,
    pool: &SlotPool,
    tenant: TenantId,
    session: &JobSession,
) -> Result<JobResult<R::Output>>
where
    S: InputSource + 'static,
    M: Mapper<Item = S::Item> + 'static,
    R: Reducer<Key = M::Key, Value = M::Value> + Send + 'static,
    R::Output: Send + 'static,
    FR: Fn(usize) -> R,
{
    config.validate()?;
    executor::run_pooled(
        input,
        mapper,
        make_reducer,
        config,
        coordinator,
        pool,
        tenant,
        session,
        &SystemClock,
    )
}

#[cfg(test)]
pub(crate) mod testutil {
    use crate::mapper::FnMapper;
    use crate::reducer::GroupedReducer;

    pub(crate) fn word_blocks() -> Vec<Vec<String>> {
        vec![
            vec!["a b a".into(), "c".into()],
            vec!["b c".into(), "a a".into()],
            vec!["c c c".into()],
        ]
    }

    #[allow(clippy::type_complexity)] // test helper returning the full generic
    pub(crate) fn word_mapper(
    ) -> FnMapper<String, String, u64, impl Fn(&String, &mut dyn FnMut(String, u64)) + Send + Sync>
    {
        FnMapper::new(|line: &String, emit: &mut dyn FnMut(String, u64)| {
            for w in line.split_whitespace() {
                emit(w.to_string(), 1);
            }
        })
    }

    #[allow(clippy::type_complexity)] // test helper returning the full generic
    pub(crate) fn sum_reducer(
    ) -> GroupedReducer<String, u64, impl FnMut(&String, &[u64]) -> Option<(String, u64)> + Send>
    {
        GroupedReducer::new(|k: &String, vs: &[u64]| Some((k.clone(), vs.iter().sum::<u64>())))
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::{sum_reducer, word_blocks, word_mapper};
    use super::*;
    use crate::fault::FaultPlan;
    use crate::input::VecSource;
    use crate::mapper::FnMapper;
    use crate::reducer::GroupedReducer;

    #[test]
    fn precise_word_count() {
        let input = VecSource::new(word_blocks());
        let mapper = word_mapper();
        let result = run_job(&input, &mapper, |_| sum_reducer(), JobConfig::default()).unwrap();
        let mut out = result.outputs;
        out.sort();
        assert_eq!(
            out,
            vec![
                ("a".to_string(), 4),
                ("b".to_string(), 2),
                ("c".to_string(), 5)
            ]
        );
        assert_eq!(result.metrics.executed_maps, 3);
        assert_eq!(result.metrics.dropped_maps, 0);
        assert_eq!(result.metrics.total_records, 5);
        assert_eq!(result.metrics.sampled_records, 5);
    }

    #[test]
    fn results_are_deterministic_for_fixed_seed() {
        let run = |seed| {
            let input = VecSource::new(word_blocks());
            let mapper = word_mapper();
            let config = JobConfig {
                seed,
                reduce_tasks: 2,
                sampling_ratio: 0.5,
                ..Default::default()
            };
            let mut out = run_job(&input, &mapper, |_| sum_reducer(), config)
                .unwrap()
                .outputs;
            out.sort();
            out
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn drop_ratio_drops_exact_count() {
        let blocks: Vec<Vec<u32>> = (0..20).map(|i| vec![i, i, i]).collect();
        let input = VecSource::new(blocks);
        let mapper = FnMapper::new(|item: &u32, emit: &mut dyn FnMut(u8, u32)| emit(0, *item));
        let config = JobConfig {
            drop_ratio: 0.25,
            ..Default::default()
        };
        let result = run_job(
            &input,
            &mapper,
            |_| GroupedReducer::new(|_k: &u8, vs: &[u32]| Some(vs.len())),
            config,
        )
        .unwrap();
        assert_eq!(result.metrics.dropped_maps, 5);
        assert_eq!(result.metrics.executed_maps, 15);
        assert_eq!(result.outputs, vec![45]); // 15 maps × 3 items
    }

    #[test]
    fn sampling_ratio_reduces_processed_records() {
        let blocks: Vec<Vec<u32>> = (0..4).map(|_| (0..100).collect()).collect();
        let input = VecSource::new(blocks);
        let mapper = FnMapper::new(|item: &u32, emit: &mut dyn FnMut(u8, u32)| emit(0, *item));
        let config = JobConfig {
            sampling_ratio: 0.1,
            ..Default::default()
        };
        let result = run_job(
            &input,
            &mapper,
            |_| GroupedReducer::new(|_k: &u8, vs: &[u32]| Some(vs.len())),
            config,
        )
        .unwrap();
        assert_eq!(result.metrics.total_records, 400);
        assert_eq!(result.metrics.sampled_records, 40);
        assert_eq!(result.outputs, vec![40]);
    }

    #[test]
    fn single_block_single_slot() {
        let input = VecSource::new(vec![vec![1u32, 2, 3]]);
        let mapper = FnMapper::new(|i: &u32, emit: &mut dyn FnMut(u8, u32)| emit(0, *i));
        let config = JobConfig {
            map_slots: 1,
            ..Default::default()
        };
        let result = run_job(
            &input,
            &mapper,
            |_| GroupedReducer::new(|_: &u8, vs: &[u32]| Some(vs.iter().sum::<u32>())),
            config,
        )
        .unwrap();
        assert_eq!(result.outputs, vec![6]);
    }

    // ---- JobConfig::validate: one unit test per rejection ----

    fn rejects(config: JobConfig, what: &str) {
        let err = config.validate().expect_err(what);
        assert!(
            matches!(err, RuntimeError::InvalidJob { .. }),
            "{what}: unexpected error {err:?}"
        );
    }

    #[test]
    fn validate_rejects_zero_map_slots() {
        rejects(
            JobConfig {
                map_slots: 0,
                ..Default::default()
            },
            "map_slots = 0",
        );
    }

    #[test]
    fn validate_rejects_zero_servers() {
        rejects(
            JobConfig {
                servers: 0,
                ..Default::default()
            },
            "servers = 0",
        );
    }

    #[test]
    fn validate_rejects_zero_reduce_tasks() {
        rejects(
            JobConfig {
                reduce_tasks: 0,
                ..Default::default()
            },
            "reduce_tasks = 0",
        );
    }

    #[test]
    fn validate_rejects_zero_workers() {
        rejects(
            JobConfig {
                workers: 0,
                ..Default::default()
            },
            "workers = 0",
        );
    }

    #[test]
    fn validate_rejects_zero_shuffle_mem() {
        rejects(
            JobConfig {
                shuffle_mem_bytes: 0,
                ..Default::default()
            },
            "shuffle_mem_bytes = 0",
        );
    }

    #[test]
    fn validate_rejects_bad_sampling_ratios() {
        for bad in [0.0, -0.5, 1.5, f64::NAN] {
            rejects(
                JobConfig {
                    sampling_ratio: bad,
                    ..Default::default()
                },
                "bad sampling_ratio",
            );
        }
        assert!(JobConfig {
            sampling_ratio: 1.0,
            ..Default::default()
        }
        .validate()
        .is_ok());
    }

    #[test]
    fn validate_rejects_bad_drop_ratios() {
        for bad in [-0.1, 1.0, 1.5, f64::NAN] {
            rejects(
                JobConfig {
                    drop_ratio: bad,
                    ..Default::default()
                },
                "bad drop_ratio",
            );
        }
        assert!(JobConfig {
            drop_ratio: 0.0,
            ..Default::default()
        }
        .validate()
        .is_ok());
    }

    #[test]
    fn validate_rejects_bad_straggler_factor() {
        for bad in [0.5, 0.0, -1.0, f64::NAN, f64::INFINITY] {
            rejects(
                JobConfig {
                    straggler_factor: bad,
                    ..Default::default()
                },
                "bad straggler_factor",
            );
        }
        assert!(JobConfig {
            straggler_factor: 1.0,
            ..Default::default()
        }
        .validate()
        .is_ok());
    }

    #[test]
    fn validate_rejects_invalid_fault_plan() {
        rejects(
            JobConfig {
                fault_plan: Some(FaultPlan {
                    map_panic_prob: 1.5,
                    ..Default::default()
                }),
                ..Default::default()
            },
            "map_panic_prob out of range",
        );
    }

    #[test]
    fn validate_rejects_invalid_fault_policy() {
        let policy = crate::fault::FaultPolicy {
            max_degraded_bound: Some(-0.2),
            ..Default::default()
        };
        rejects(
            JobConfig {
                fault_policy: policy,
                ..Default::default()
            },
            "negative max_degraded_bound",
        );
    }

    // ---- entry points reject invalid configs identically ----

    #[test]
    fn zero_slots_rejected() {
        let input = VecSource::new(vec![vec![1u32]]);
        let mapper = FnMapper::new(|i: &u32, emit: &mut dyn FnMut(u8, u32)| emit(0, *i));
        let config = JobConfig {
            map_slots: 0,
            ..Default::default()
        };
        assert!(run_job(
            &input,
            &mapper,
            |_| GroupedReducer::new(|_: &u8, _: &[u32]| Some(())),
            config
        )
        .is_err());
    }

    #[test]
    fn zero_servers_rejected() {
        let input = VecSource::new(vec![vec![1u32]]);
        let mapper = FnMapper::new(|i: &u32, emit: &mut dyn FnMut(u8, u32)| emit(0, *i));
        let config = JobConfig {
            servers: 0,
            ..Default::default()
        };
        assert!(run_job(
            &input,
            &mapper,
            |_| GroupedReducer::new(|_: &u8, _: &[u32]| Some(())),
            config
        )
        .is_err());
    }

    #[test]
    fn bad_ratios_rejected() {
        let input = VecSource::new(vec![vec![1u32]]);
        let mapper = FnMapper::new(|i: &u32, emit: &mut dyn FnMut(u8, u32)| emit(0, *i));
        for (sampling, drop) in [(0.0, 0.0), (1.5, 0.0), (1.0, 1.0), (1.0, -0.1)] {
            let config = JobConfig {
                sampling_ratio: sampling,
                drop_ratio: drop,
                ..Default::default()
            };
            assert!(
                run_job(
                    &input,
                    &mapper,
                    |_| GroupedReducer::new(|_: &u8, _: &[u32]| Some(())),
                    config
                )
                .is_err(),
                "sampling={sampling} drop={drop} should be rejected"
            );
        }
    }
}
