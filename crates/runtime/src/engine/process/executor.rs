//! The parent side of the process backend: an [`Executor`] whose
//! "servers" are worker OS processes.
//!
//! Each worker holds one map slot; attempts travel to it as `Work`
//! frames and outcomes come back as `Done`/`Killed`/`Failed` frames
//! (with map output streamed ahead of `Done` in `Output` chunks). Kill
//! flags cannot cross the process boundary, so the executor forwards
//! them as `Kill` frames at the entry of every verb — safe because the
//! tracker raises kill flags exclusively from its own thread, the same
//! thread that calls these verbs.
//!
//! A worker that dies (crash, `abort`, kill -9) surfaces as a pipe EOF;
//! every attempt in flight on it is synthesized into a
//! [`RuntimeError::WorkerLost`] failure so the tracker's retry /
//! blacklist / degrade-to-drop machinery handles process loss exactly
//! like any other task failure. The dead worker is respawned on the
//! next dispatch to its slot.

use std::collections::{HashMap, VecDeque};
use std::io::BufReader;
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use approxhadoop_ipc::{read_frame, write_frame, Decoder, FrameError, Wire};
use approxhadoop_obs::{Counter, CounterDelta, Obs};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};

use crate::reducer::{MapOutputMeta, ReduceEvent};
use crate::types::{Key, TaskId, Value};
use crate::RuntimeError;

use super::super::attempt::{RemoteSpan, WorkItem, WorkerMsg};
use super::super::executor::{Executor, RecvOutcome};
use super::super::shuffle;
use super::wire::{FromWorker, ToWorker, WireWorkItem};

/// Transport counters, labelled per job. Spill counters live in the
/// worker's own registry (incremented when a spill actually happens)
/// and arrive via merged `Telemetry` deltas — but they are still
/// pre-registered here so `/metrics` renders them at 0 before the
/// first spill.
pub(super) struct ProcObs {
    frames_tx: Arc<Counter>,
    bytes_tx: Arc<Counter>,
    frames_rx: Arc<Counter>,
    bytes_rx: Arc<Counter>,
    restarts: Arc<Counter>,
}

impl ProcObs {
    pub(super) fn new(obs: &Obs, label: &str) -> Self {
        let c = |name: &str| obs.registry.counter(name, &[("job", label)]);
        c("approx_process_spill_runs_total");
        c("approx_process_spill_bytes_total");
        ProcObs {
            frames_tx: c("approx_process_frames_tx_total"),
            bytes_tx: c("approx_process_bytes_tx_total"),
            frames_rx: c("approx_process_frames_rx_total"),
            bytes_rx: c("approx_process_bytes_rx_total"),
            restarts: c("approx_process_worker_restarts_total"),
        }
    }
}

fn frame_io(e: FrameError) -> String {
    format!("pipe write failed: {e}")
}

/// Reader-thread events: a decoded worker frame (with its payload size
/// for the byte counters), an `Output` chunk decoded into typed pairs
/// **on the reader thread**, or the worker's pipe closing.
///
/// Decoding the (potentially large) output chunks reader-side keeps the
/// per-pair wire decode off the tracker thread and runs it in parallel
/// across workers — the process backend's share of the parallel reduce
/// drain (reduce partitions themselves each own a thread already).
enum ExecEvent<K, V> {
    Msg(FromWorker, u64),
    Output {
        task: u64,
        attempt: u32,
        partition: u32,
        /// The decoded chunk, or the wire error rendered reader-side.
        pairs: Result<Vec<(K, V)>, String>,
        bytes: u64,
    },
    Gone(usize),
}

struct WorkerHandle {
    child: Child,
    stdin: Option<ChildStdin>,
    reader: Option<std::thread::JoinHandle<()>>,
    dead: bool,
}

impl WorkerHandle {
    fn spawn<K, V>(
        bin: &Path,
        job_frame: &[u8],
        server: usize,
        tx: Sender<ExecEvent<K, V>>,
    ) -> Result<Self, String>
    where
        K: Key + Wire,
        V: Value + Wire,
    {
        let mut child = Command::new(bin)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()
            .map_err(|e| format!("failed to spawn worker {}: {e}", bin.display()))?;
        let mut stdin = child.stdin.take().expect("stdin piped");
        let stdout = child.stdout.take().expect("stdout piped");
        write_frame(&mut stdin, job_frame).map_err(frame_io)?;
        let reader = std::thread::spawn(move || {
            let mut r = BufReader::new(stdout);
            loop {
                match read_frame(&mut r) {
                    Ok(Some(frame)) => match FromWorker::from_bytes(&frame) {
                        Ok(FromWorker::Output {
                            task,
                            attempt,
                            partition,
                            pairs,
                        }) => {
                            let ev = ExecEvent::Output {
                                task,
                                attempt,
                                partition,
                                pairs: decode_pairs::<K, V>(&pairs)
                                    .map_err(|e| format!("corrupt output chunk: {e}")),
                                bytes: frame.len() as u64,
                            };
                            if tx.send(ev).is_err() {
                                break;
                            }
                        }
                        Ok(msg) => {
                            if tx.send(ExecEvent::Msg(msg, frame.len() as u64)).is_err() {
                                break;
                            }
                        }
                        Err(_) => {
                            let _ = tx.send(ExecEvent::Gone(server));
                            break;
                        }
                    },
                    _ => {
                        let _ = tx.send(ExecEvent::Gone(server));
                        break;
                    }
                }
            }
        });
        Ok(WorkerHandle {
            child,
            stdin: Some(stdin),
            reader: Some(reader),
            dead: false,
        })
    }

    /// Reaps the child: close stdin, escalate SIGTERM → SIGKILL if it
    /// doesn't exit, and always `wait()` so no zombie survives.
    fn reap(&mut self, grace: Duration) {
        self.stdin.take();
        let deadline = Instant::now() + grace;
        while Instant::now() < deadline {
            if matches!(self.child.try_wait(), Ok(Some(_))) {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        if !matches!(self.child.try_wait(), Ok(Some(_))) {
            approxhadoop_ipc::process::sigterm(self.child.id());
            let deadline = Instant::now() + Duration::from_millis(500);
            while Instant::now() < deadline {
                if matches!(self.child.try_wait(), Ok(Some(_))) {
                    break;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        }
        let _ = self.child.kill();
        let _ = self.child.wait();
        if let Some(r) = self.reader.take() {
            let _ = r.join();
        }
    }
}

struct Inflight {
    server: usize,
    kill: Arc<AtomicBool>,
    kill_sent: bool,
}

/// Decoded output partitions stashed per `(task, attempt)` until the
/// attempt's terminal frame arrives.
type OutputStash<K, V> = HashMap<(u64, u32), Vec<Vec<(K, V)>>>;

/// [`Executor`] backed by worker processes, one map slot each.
pub(super) struct ProcessExecutor<K: Key + Wire, V: Value + Wire> {
    bin: PathBuf,
    job_frame: Vec<u8>,
    workers: Vec<WorkerHandle>,
    ev_tx: Sender<ExecEvent<K, V>>,
    ev_rx: Receiver<ExecEvent<K, V>>,
    inflight: HashMap<(u64, u32), Inflight>,
    stash: OutputStash<K, V>,
    /// Worker spans stashed per `(task, attempt)` between the attempt's
    /// `Telemetry` frame and its `Done` frame.
    span_stash: HashMap<(u64, u32), Vec<RemoteSpan>>,
    pending: VecDeque<WorkerMsg>,
    reducer_txs: Vec<Sender<ReduceEvent<K, V>>>,
    obs: Option<ProcObs>,
    /// Parent registry worker counter deltas merge into; `Some` exactly
    /// when the job spec carries a telemetry label.
    merge_into: Option<Arc<Obs>>,
}

impl<K: Key + Wire, V: Value + Wire> ProcessExecutor<K, V> {
    pub(super) fn new(
        bin: &Path,
        job_frame: Vec<u8>,
        workers: usize,
        reducer_txs: Vec<Sender<ReduceEvent<K, V>>>,
        obs: Option<ProcObs>,
        merge_into: Option<Arc<Obs>>,
    ) -> crate::Result<Self> {
        let (ev_tx, ev_rx) = unbounded();
        let mut handles = Vec::with_capacity(workers);
        for server in 0..workers {
            match WorkerHandle::spawn(bin, &job_frame, server, ev_tx.clone()) {
                Ok(h) => handles.push(h),
                Err(what) => {
                    for mut h in handles {
                        h.reap(Duration::from_millis(100));
                    }
                    return Err(RuntimeError::WorkerLost { what });
                }
            }
        }
        if let Some(o) = &obs {
            o.frames_tx.add(workers as u64);
            o.bytes_tx.add(workers as u64 * job_frame.len() as u64);
        }
        Ok(ProcessExecutor {
            bin: bin.to_path_buf(),
            job_frame,
            workers: handles,
            ev_tx,
            ev_rx,
            inflight: HashMap::new(),
            stash: HashMap::new(),
            span_stash: HashMap::new(),
            pending: VecDeque::new(),
            reducer_txs,
            obs,
            merge_into,
        })
    }

    /// Writes one frame to `server`'s worker, respawning it first when
    /// `respawn` is set and the previous incarnation died.
    fn send_to(&mut self, server: usize, frame: &[u8], respawn: bool) -> Result<(), String> {
        if self.workers[server].dead {
            if !respawn {
                return Ok(());
            }
            let mut fresh =
                WorkerHandle::spawn(&self.bin, &self.job_frame, server, self.ev_tx.clone())
                    .map_err(|e| format!("respawn failed: {e}"))?;
            std::mem::swap(&mut self.workers[server], &mut fresh);
            fresh.reap(Duration::from_millis(100));
            if let Some(o) = &self.obs {
                o.restarts.inc();
                o.frames_tx.inc();
                o.bytes_tx.add(self.job_frame.len() as u64);
            }
        }
        let handle = &mut self.workers[server];
        let Some(stdin) = handle.stdin.as_mut() else {
            return Err("worker stdin already closed".into());
        };
        match write_frame(stdin, frame) {
            Ok(()) => {
                if let Some(o) = &self.obs {
                    o.frames_tx.inc();
                    o.bytes_tx.add(frame.len() as u64);
                }
                Ok(())
            }
            Err(e) => {
                handle.dead = true;
                Err(frame_io(e))
            }
        }
    }

    /// Synthesizes a [`RuntimeError::WorkerLost`] failure for an
    /// attempt whose worker can no longer report it.
    fn fail_attempt(&mut self, key: (u64, u32), what: String) {
        if self.inflight.remove(&key).is_none() {
            return;
        }
        self.stash.remove(&key);
        self.span_stash.remove(&key);
        self.pending.push_back(WorkerMsg::Failed {
            task: TaskId(key.0 as usize),
            attempt: key.1,
            error: RuntimeError::WorkerLost { what },
        });
    }

    /// Forwards freshly raised kill flags as `Kill` frames. Sound
    /// without polling because only the tracker thread raises kill
    /// flags, and it calls an executor verb immediately afterwards.
    fn forward_kills(&mut self) {
        let mut kills = Vec::new();
        for (key, e) in self.inflight.iter_mut() {
            if !e.kill_sent && e.kill.load(Ordering::SeqCst) {
                e.kill_sent = true;
                kills.push((e.server, key.0, key.1));
            }
        }
        for (server, task, attempt) in kills {
            let frame = ToWorker::Kill { task, attempt }.to_bytes();
            // A failed write means the worker died; its Gone event will
            // synthesize the terminal message for this attempt.
            let _ = self.send_to(server, &frame, false);
        }
    }

    fn handle(&mut self, ev: ExecEvent<K, V>) {
        match ev {
            ExecEvent::Msg(msg, bytes) => {
                if let Some(o) = &self.obs {
                    o.frames_rx.inc();
                    o.bytes_rx.add(bytes);
                }
                self.handle_msg(msg);
            }
            ExecEvent::Output {
                task,
                attempt,
                partition,
                pairs,
                bytes,
            } => {
                if let Some(o) = &self.obs {
                    o.frames_rx.inc();
                    o.bytes_rx.add(bytes);
                }
                let key = (task, attempt);
                if !self.inflight.contains_key(&key) {
                    return;
                }
                let partitions = self.reducer_txs.len();
                match pairs {
                    Ok(decoded) if (partition as usize) < partitions => {
                        self.stash
                            .entry(key)
                            .or_insert_with(|| (0..partitions).map(|_| Vec::new()).collect())
                            [partition as usize]
                            .extend(decoded);
                    }
                    Ok(_) => self.fail_attempt(
                        key,
                        format!("worker sent output for unknown partition {partition}"),
                    ),
                    Err(e) => self.fail_attempt(key, e),
                }
            }
            ExecEvent::Gone(server) => {
                self.workers[server].dead = true;
                let lost: Vec<(u64, u32)> = self
                    .inflight
                    .iter()
                    .filter(|(_, e)| e.server == server)
                    .map(|(k, _)| *k)
                    .collect();
                for key in lost {
                    self.fail_attempt(
                        key,
                        format!(
                            "worker process for server {server} exited while running {} (attempt {})",
                            TaskId(key.0 as usize),
                            key.1
                        ),
                    );
                }
            }
        }
    }

    fn handle_msg(&mut self, msg: FromWorker) {
        match msg {
            FromWorker::Ready => {}
            // Output chunks are decoded reader-side and arrive as
            // `ExecEvent::Output`; one reaching this path would mean the
            // reader forwarded it undecoded, which it never does.
            FromWorker::Output { .. } => unreachable!("Output frames are decoded reader-side"),
            FromWorker::Done {
                attempt,
                stats,
                // Spill totals now originate on the worker's registry at
                // actual spill time and arrive merged via the attempt's
                // Telemetry frame (which precedes Done); the Done copy
                // is kept as the attempt's drain report, not re-counted
                // here — adding it too would double the totals.
                spill_runs: _,
                spill_bytes: _,
            } => {
                let key = (stats.task, attempt);
                if self.inflight.remove(&key).is_none() {
                    return;
                }
                let partitions = self.reducer_txs.len();
                let parts = self
                    .stash
                    .remove(&key)
                    .unwrap_or_else(|| (0..partitions).map(|_| Vec::new()).collect());
                let stats: crate::metrics::MapStats = stats.into();
                let meta = MapOutputMeta {
                    task: stats.task,
                    dataset: stats.dataset,
                    total_records: stats.total_records,
                    sampled_records: stats.sampled_records,
                    duration_secs: stats.duration_secs,
                };
                // One MapOutput per reducer even when the batch is
                // empty — identical to `shuffle::ship_outputs`.
                for (p, pairs) in parts.into_iter().enumerate() {
                    let _ = self.reducer_txs[p].send(ReduceEvent::MapOutput { meta, pairs });
                }
                let spans = self.span_stash.remove(&key).unwrap_or_default();
                self.pending.push_back(WorkerMsg::Completed {
                    stats,
                    attempt,
                    spans,
                });
            }
            FromWorker::Killed { task, attempt } => {
                let key = (task, attempt);
                if self.inflight.remove(&key).is_none() {
                    return;
                }
                self.stash.remove(&key);
                self.span_stash.remove(&key);
                self.pending.push_back(WorkerMsg::Killed {
                    task: TaskId(task as usize),
                    attempt,
                });
            }
            FromWorker::Failed {
                task,
                attempt,
                error,
            } => {
                let key = (task, attempt);
                if self.inflight.remove(&key).is_none() {
                    return;
                }
                self.stash.remove(&key);
                self.span_stash.remove(&key);
                self.pending.push_back(WorkerMsg::Failed {
                    task: TaskId(task as usize),
                    attempt,
                    error: error.into_error(),
                });
            }
            FromWorker::Telemetry {
                task,
                attempt,
                counters,
                spans,
            } => {
                let key = (task, attempt);
                if !self.inflight.contains_key(&key) {
                    return;
                }
                let Some(obs) = &self.merge_into else { return };
                // Counters merge immediately — a live /metrics scrape
                // should reflect worker activity without waiting for the
                // tracker to consume the attempt's Completed message.
                let deltas: Vec<CounterDelta> = counters
                    .into_iter()
                    .map(|(name, labels, delta)| CounterDelta {
                        name,
                        labels,
                        delta,
                    })
                    .collect();
                obs.registry.merge_delta(&deltas);
                // Spans wait for Done: they ride on the Completed message
                // so the tracker can graft them under the attempt's span.
                self.span_stash
                    .entry(key)
                    .or_default()
                    .extend(
                        spans
                            .into_iter()
                            .map(|(name, category, rel_ts_us, dur_us)| RemoteSpan {
                                name,
                                category,
                                rel_ts_us,
                                dur_us,
                            }),
                    );
            }
        }
    }
}

impl<K: Key + Wire, V: Value + Wire> Executor for ProcessExecutor<K, V> {
    fn dispatch(&mut self, server: usize, work: WorkItem) -> bool {
        self.forward_kills();
        let key = (work.task.0 as u64, work.attempt);
        let frame = ToWorker::Work(WireWorkItem {
            task: key.0,
            dataset: work.dataset.0,
            attempt: work.attempt,
            sampling_ratio: work.sampling_ratio,
            seed: work.seed,
            combining: work.combining,
            fault: work.fault.as_deref().cloned(),
            span: work.span,
        })
        .to_bytes();
        self.inflight.insert(
            key,
            Inflight {
                server,
                kill: Arc::clone(&work.kill),
                kill_sent: false,
            },
        );
        if let Err(what) = self.send_to(server, &frame, true) {
            // Dispatch itself always "succeeds": the attempt is
            // registered and immediately failed with WorkerLost, which
            // feeds the tracker's retry path instead of failing the job.
            self.fail_attempt(key, what);
        }
        true
    }

    fn recv(&mut self, timeout: Duration) -> RecvOutcome {
        self.forward_kills();
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(msg) = self.pending.pop_front() {
                return RecvOutcome::Msg(msg);
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            match self.ev_rx.recv_timeout(remaining) {
                Ok(ev) => self.handle(ev),
                Err(RecvTimeoutError::Timeout) => return RecvOutcome::Timeout,
                // Unreachable in practice: this executor holds `ev_tx`.
                Err(RecvTimeoutError::Disconnected) => return RecvOutcome::Closed,
            }
        }
    }

    fn try_recv(&mut self) -> Option<WorkerMsg> {
        self.forward_kills();
        loop {
            if let Some(msg) = self.pending.pop_front() {
                return Some(msg);
            }
            match self.ev_rx.try_recv() {
                Ok(ev) => self.handle(ev),
                Err(_) => return None,
            }
        }
    }

    fn notify_drop(&mut self, task: usize) {
        shuffle::broadcast_drop(&self.reducer_txs, task);
    }
}

impl<K: Key + Wire, V: Value + Wire> Drop for ProcessExecutor<K, V> {
    /// Graceful worker shutdown: Shutdown frame + stdin EOF, a short
    /// grace period, then SIGTERM and finally SIGKILL — and always a
    /// `wait()`, so no worker outlives the job as an orphan or zombie.
    fn drop(&mut self) {
        let bye = ToWorker::Shutdown.to_bytes();
        for w in &mut self.workers {
            if !w.dead {
                if let Some(stdin) = w.stdin.as_mut() {
                    let _ = write_frame(stdin, &bye);
                }
            }
        }
        for w in &mut self.workers {
            w.reap(Duration::from_secs(2));
        }
    }
}

/// Decodes a chunk of back-to-back `(key, value)` encodings.
fn decode_pairs<K: Wire, V: Wire>(buf: &[u8]) -> Result<Vec<(K, V)>, approxhadoop_ipc::WireError> {
    let mut d = Decoder::new(buf);
    let mut out = Vec::new();
    while d.remaining() > 0 {
        let k = K::decode(&mut d)?;
        let v = V::decode(&mut d)?;
        out.push((k, v));
    }
    Ok(out)
}
