//! The process backend's wire protocol: typed frames exchanged between
//! the parent (scheduler side) and a worker process over the worker's
//! stdin/stdout pipes.
//!
//! Every frame is a length-prefixed byte payload
//! ([`approxhadoop_ipc::write_frame`]) whose body is the
//! [`Wire`] encoding of [`ToWorker`]
//! (parent → worker) or [`FromWorker`] (worker → parent). Map output
//! pairs travel as opaque byte chunks inside [`FromWorker::Output`] —
//! the parent decodes them with the job's key/value types, so the
//! protocol layer itself stays generic-free, mirroring how
//! [`WorkItem`](crate::engine::WorkItem) /
//! [`WorkerMsg`](crate::engine::WorkerMsg) keep the scheduler
//! generic-free in process.

use approxhadoop_ipc::{Decoder, Wire, WireError};

use crate::fault::FaultPlan;
use crate::metrics::MapStats;
use crate::types::TaskId;
use crate::RuntimeError;

impl Wire for FaultPlan {
    fn encode(&self, out: &mut Vec<u8>) {
        self.seed.encode(out);
        self.map_panic_prob.encode(out);
        self.map_io_error_prob.encode(out);
        self.dead_datanodes.encode(out);
        self.replica_error_prob.encode(out);
        self.slow_replica_prob.encode(out);
        self.slow_replica_delay.encode(out);
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(FaultPlan {
            seed: Wire::decode(d)?,
            map_panic_prob: Wire::decode(d)?,
            map_io_error_prob: Wire::decode(d)?,
            dead_datanodes: Wire::decode(d)?,
            replica_error_prob: Wire::decode(d)?,
            slow_replica_prob: Wire::decode(d)?,
            slow_replica_delay: Wire::decode(d)?,
        })
    }
}

/// Everything a worker needs to set itself up for one job; sent as the
/// first frame after spawn.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerJobSpec {
    /// Registry name of the job to run (see
    /// [`JobRegistry`](super::JobRegistry)).
    pub job: String,
    /// Opaque job parameters, decoded by the registered builder.
    pub params: Vec<u8>,
    /// Path of the input spool file
    /// ([`approxhadoop_dfs::FileStore`]) holding one block per map task.
    pub spool: String,
    /// Number of reduce partitions.
    pub num_reducers: u32,
    /// In-memory shuffle budget in bytes before spilling.
    pub shuffle_mem_bytes: u64,
    /// Directory for spill run files.
    pub spill_dir: String,
    /// Job label for worker-side telemetry (`job` label on worker
    /// counters). Empty means telemetry is disabled and the worker
    /// sends no [`FromWorker::Telemetry`] frames.
    pub telemetry_label: String,
    /// The job's dataset table: `(dataset id, split count)` per dataset,
    /// in dataset order. Empty means a single-input job (every work item
    /// must be tagged dataset 0). Workers validate incoming
    /// [`WireWorkItem::dataset`] tags against this table and reject
    /// mismatches as job errors rather than aborting the process.
    pub datasets: Vec<(u32, u64)>,
}

impl WorkerJobSpec {
    /// Whether `dataset` is admissible under this spec's dataset table:
    /// an empty table admits only dataset 0 (single-input job), a
    /// non-empty table admits exactly its listed ids.
    pub fn admits_dataset(&self, dataset: u32) -> bool {
        if self.datasets.is_empty() {
            dataset == 0
        } else {
            self.datasets.iter().any(|&(d, _)| d == dataset)
        }
    }
}

impl Wire for WorkerJobSpec {
    fn encode(&self, out: &mut Vec<u8>) {
        self.job.encode(out);
        self.params.encode(out);
        self.spool.encode(out);
        self.num_reducers.encode(out);
        self.shuffle_mem_bytes.encode(out);
        self.spill_dir.encode(out);
        self.telemetry_label.encode(out);
        self.datasets.encode(out);
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(WorkerJobSpec {
            job: Wire::decode(d)?,
            params: Wire::decode(d)?,
            spool: Wire::decode(d)?,
            num_reducers: Wire::decode(d)?,
            shuffle_mem_bytes: Wire::decode(d)?,
            spill_dir: Wire::decode(d)?,
            telemetry_label: Wire::decode(d)?,
            datasets: Wire::decode(d)?,
        })
    }
}

/// The plain-data fields of a [`WorkItem`](crate::engine::WorkItem),
/// serializable across the process boundary. The in-process kill flag
/// is replaced by explicit [`ToWorker::Kill`] frames.
#[derive(Debug, Clone, PartialEq)]
pub struct WireWorkItem {
    /// Map task index.
    pub task: u64,
    /// Dataset tag of the task's split (0 for single-input jobs).
    pub dataset: u32,
    /// Attempt number.
    pub attempt: u32,
    /// Input sampling ratio for this attempt.
    pub sampling_ratio: f64,
    /// Per-task read seed (attempt-independent).
    pub seed: u64,
    /// Whether map-side combining is enabled.
    pub combining: bool,
    /// Deterministic fault-injection plan, if any.
    pub fault: Option<FaultPlan>,
    /// Parent-allocated span id of the task attempt (0 when tracing is
    /// off); worker spans from this attempt are parented under it.
    pub span: u64,
}

impl Wire for WireWorkItem {
    fn encode(&self, out: &mut Vec<u8>) {
        self.task.encode(out);
        self.dataset.encode(out);
        self.attempt.encode(out);
        self.sampling_ratio.encode(out);
        self.seed.encode(out);
        self.combining.encode(out);
        self.fault.encode(out);
        self.span.encode(out);
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(WireWorkItem {
            task: Wire::decode(d)?,
            dataset: Wire::decode(d)?,
            attempt: Wire::decode(d)?,
            sampling_ratio: Wire::decode(d)?,
            seed: Wire::decode(d)?,
            combining: Wire::decode(d)?,
            fault: Wire::decode(d)?,
            span: Wire::decode(d)?,
        })
    }
}

/// Frames the parent sends to a worker.
#[derive(Debug, Clone, PartialEq)]
pub enum ToWorker {
    /// Job setup; always the first frame.
    Job(WorkerJobSpec),
    /// Run one map attempt.
    Work(WireWorkItem),
    /// Abort a previously dispatched attempt (the wire form of raising
    /// the in-process kill flag).
    Kill {
        /// Task of the attempt to abort.
        task: u64,
        /// Attempt number to abort.
        attempt: u32,
    },
    /// Exit cleanly; no further frames follow.
    Shutdown,
}

impl Wire for ToWorker {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ToWorker::Job(spec) => {
                0u8.encode(out);
                spec.encode(out);
            }
            ToWorker::Work(work) => {
                1u8.encode(out);
                work.encode(out);
            }
            ToWorker::Kill { task, attempt } => {
                2u8.encode(out);
                task.encode(out);
                attempt.encode(out);
            }
            ToWorker::Shutdown => 3u8.encode(out),
        }
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        match u8::decode(d)? {
            0 => Ok(ToWorker::Job(Wire::decode(d)?)),
            1 => Ok(ToWorker::Work(Wire::decode(d)?)),
            2 => Ok(ToWorker::Kill {
                task: Wire::decode(d)?,
                attempt: Wire::decode(d)?,
            }),
            3 => Ok(ToWorker::Shutdown),
            _ => Err(WireError::Corrupt {
                what: "ToWorker frame tag",
            }),
        }
    }
}

/// [`MapStats`] in wire form.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireMapStats {
    /// Map task index.
    pub task: u64,
    /// Dataset tag of the task's split.
    pub dataset: u32,
    /// `M_i` — total records in the task's block.
    pub total_records: u64,
    /// `m_i` — records processed after sampling.
    pub sampled_records: u64,
    /// Pairs emitted by the map function (pre-combining).
    pub emitted: u64,
    /// Pairs shipped to reducers (post-combining).
    pub shuffled: u64,
    /// Wall-clock duration of the attempt in seconds.
    pub duration_secs: f64,
    /// Portion spent reading the block in seconds.
    pub read_secs: f64,
}

impl From<WireMapStats> for MapStats {
    fn from(w: WireMapStats) -> Self {
        MapStats {
            task: TaskId(w.task as usize),
            dataset: crate::input::DatasetId(w.dataset),
            total_records: w.total_records,
            sampled_records: w.sampled_records,
            emitted: w.emitted,
            shuffled: w.shuffled,
            duration_secs: w.duration_secs,
            read_secs: w.read_secs,
        }
    }
}

impl Wire for WireMapStats {
    fn encode(&self, out: &mut Vec<u8>) {
        self.task.encode(out);
        self.dataset.encode(out);
        self.total_records.encode(out);
        self.sampled_records.encode(out);
        self.emitted.encode(out);
        self.shuffled.encode(out);
        self.duration_secs.encode(out);
        self.read_secs.encode(out);
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(WireMapStats {
            task: Wire::decode(d)?,
            dataset: Wire::decode(d)?,
            total_records: Wire::decode(d)?,
            sampled_records: Wire::decode(d)?,
            emitted: Wire::decode(d)?,
            shuffled: Wire::decode(d)?,
            duration_secs: Wire::decode(d)?,
            read_secs: Wire::decode(d)?,
        })
    }
}

/// A [`RuntimeError`] crossing the process boundary.
///
/// The two failure shapes the scheduler's event stream renders —
/// injected faults and user-code panics — are reconstructed as their
/// original variants so retry/degrade event payloads are byte-identical
/// to the in-process backends; anything else is carried as its
/// `Display` output and resurfaces as [`RuntimeError::Remote`].
#[derive(Debug, Clone, PartialEq)]
pub struct WireJobError {
    /// 0 = `InjectedFault`, 1 = `TaskPanicked`, 2 = other.
    pub kind: u8,
    /// The variant's description (`what` for 0/1, full `Display` for 2).
    pub what: String,
}

impl WireJobError {
    /// Encodes a worker-side error for the wire.
    pub fn from_error(e: &RuntimeError) -> Self {
        match e {
            RuntimeError::InjectedFault { what } => WireJobError {
                kind: 0,
                what: what.clone(),
            },
            RuntimeError::TaskPanicked { what } => WireJobError {
                kind: 1,
                what: what.clone(),
            },
            other => WireJobError {
                kind: 2,
                what: other.to_string(),
            },
        }
    }

    /// Reconstructs the parent-side [`RuntimeError`].
    pub fn into_error(self) -> RuntimeError {
        match self.kind {
            0 => RuntimeError::InjectedFault { what: self.what },
            1 => RuntimeError::TaskPanicked { what: self.what },
            _ => RuntimeError::Remote { display: self.what },
        }
    }
}

impl Wire for WireJobError {
    fn encode(&self, out: &mut Vec<u8>) {
        self.kind.encode(out);
        self.what.encode(out);
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        let kind = u8::decode(d)?;
        if kind > 2 {
            return Err(WireError::Corrupt {
                what: "WireJobError kind",
            });
        }
        Ok(WireJobError {
            kind,
            what: Wire::decode(d)?,
        })
    }
}

/// A completed worker-side span in wire form:
/// `(name, category, rel_ts_us, dur_us)`. Timestamps are relative to
/// the start of the attempt that produced them — the parent re-bases
/// them into the task-attempt span's window, so worker/parent clock
/// skew never shows in the merged trace.
pub type WireSpan = (String, String, u64, u64);

/// A counter delta in wire form: `(name, labels, delta)`.
pub type WireCounterDelta = (String, Vec<(String, String)>, u64);

/// Frames a worker sends to the parent.
#[derive(Debug, Clone, PartialEq)]
pub enum FromWorker {
    /// Job setup succeeded; the worker is accepting work.
    Ready,
    /// One chunk of map output for a single reduce partition. Chunks
    /// for an attempt arrive in partition order and are terminated by
    /// the attempt's [`FromWorker::Done`] frame; `pairs` is a
    /// back-to-back sequence of `(key, value)` encodings.
    Output {
        /// Task that produced the chunk.
        task: u64,
        /// Attempt number.
        attempt: u32,
        /// Destination reduce partition.
        partition: u32,
        /// Encoded `(key, value)` pairs, back to back.
        pairs: Vec<u8>,
    },
    /// The attempt completed; all of its `Output` chunks precede this
    /// frame on the pipe.
    Done {
        /// Attempt number that completed.
        attempt: u32,
        /// Execution statistics.
        stats: WireMapStats,
        /// Spill runs written while buffering this attempt's output.
        spill_runs: u64,
        /// Total bytes of spill runs written.
        spill_bytes: u64,
    },
    /// The attempt observed a kill request and aborted.
    Killed {
        /// The killed task.
        task: u64,
        /// Attempt number.
        attempt: u32,
    },
    /// The attempt failed.
    Failed {
        /// The failed task.
        task: u64,
        /// Attempt number.
        attempt: u32,
        /// The error, in wire form.
        error: WireJobError,
    },
    /// Compact telemetry piggybacked on the attempt's frame stream:
    /// counter deltas since the worker's last report plus the spans the
    /// attempt completed. Sent after the attempt's `Output` chunks and
    /// before its `Done` frame, and only when the job spec carried a
    /// non-empty `telemetry_label`.
    Telemetry {
        /// Task that produced the telemetry.
        task: u64,
        /// Attempt number.
        attempt: u32,
        /// Counter deltas since the worker's previous Telemetry frame.
        counters: Vec<WireCounterDelta>,
        /// Spans completed during the attempt, timestamps relative to
        /// the attempt start.
        spans: Vec<WireSpan>,
    },
}

impl Wire for FromWorker {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            FromWorker::Ready => 0u8.encode(out),
            FromWorker::Output {
                task,
                attempt,
                partition,
                pairs,
            } => {
                1u8.encode(out);
                task.encode(out);
                attempt.encode(out);
                partition.encode(out);
                pairs.encode(out);
            }
            FromWorker::Done {
                attempt,
                stats,
                spill_runs,
                spill_bytes,
            } => {
                2u8.encode(out);
                attempt.encode(out);
                stats.encode(out);
                spill_runs.encode(out);
                spill_bytes.encode(out);
            }
            FromWorker::Killed { task, attempt } => {
                3u8.encode(out);
                task.encode(out);
                attempt.encode(out);
            }
            FromWorker::Failed {
                task,
                attempt,
                error,
            } => {
                4u8.encode(out);
                task.encode(out);
                attempt.encode(out);
                error.encode(out);
            }
            FromWorker::Telemetry {
                task,
                attempt,
                counters,
                spans,
            } => {
                5u8.encode(out);
                task.encode(out);
                attempt.encode(out);
                counters.encode(out);
                spans.encode(out);
            }
        }
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        match u8::decode(d)? {
            0 => Ok(FromWorker::Ready),
            1 => Ok(FromWorker::Output {
                task: Wire::decode(d)?,
                attempt: Wire::decode(d)?,
                partition: Wire::decode(d)?,
                pairs: Wire::decode(d)?,
            }),
            2 => Ok(FromWorker::Done {
                attempt: Wire::decode(d)?,
                stats: Wire::decode(d)?,
                spill_runs: Wire::decode(d)?,
                spill_bytes: Wire::decode(d)?,
            }),
            3 => Ok(FromWorker::Killed {
                task: Wire::decode(d)?,
                attempt: Wire::decode(d)?,
            }),
            4 => Ok(FromWorker::Failed {
                task: Wire::decode(d)?,
                attempt: Wire::decode(d)?,
                error: Wire::decode(d)?,
            }),
            5 => Ok(FromWorker::Telemetry {
                task: Wire::decode(d)?,
                attempt: Wire::decode(d)?,
                counters: Wire::decode(d)?,
                spans: Wire::decode(d)?,
            }),
            _ => Err(WireError::Corrupt {
                what: "FromWorker frame tag",
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn work_item_roundtrips_with_fault_plan() {
        let w = WireWorkItem {
            task: 9,
            dataset: 1,
            attempt: 2,
            sampling_ratio: 0.25,
            seed: 0xDEAD_BEEF,
            combining: true,
            fault: Some(FaultPlan {
                seed: 7,
                map_panic_prob: 0.1,
                map_io_error_prob: 0.2,
                dead_datanodes: vec![1, 3],
                replica_error_prob: 0.3,
                slow_replica_prob: 0.4,
                slow_replica_delay: Duration::from_millis(12),
            }),
            span: 41,
        };
        let back = WireWorkItem::from_bytes(&ToWorker::Work(w.clone()).to_bytes()[1..]).unwrap();
        assert_eq!(back, w);
    }

    #[test]
    fn telemetry_frame_roundtrips() {
        let t = FromWorker::Telemetry {
            task: 4,
            attempt: 1,
            counters: vec![(
                "approx_process_spill_runs_total".to_string(),
                vec![("job".to_string(), "job_0003".to_string())],
                2,
            )],
            spans: vec![("read block".to_string(), "worker".to_string(), 10, 250)],
        };
        let back = FromWorker::from_bytes(&t.to_bytes()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn error_reconstruction_preserves_display() {
        for e in [
            RuntimeError::InjectedFault { what: "x".into() },
            RuntimeError::TaskPanicked { what: "y".into() },
            RuntimeError::invalid("z"),
        ] {
            let display = e.to_string();
            let back = WireJobError::from_bytes(&WireJobError::from_error(&e).to_bytes())
                .unwrap()
                .into_error();
            assert_eq!(back.to_string(), display);
        }
    }

    #[test]
    fn job_spec_dataset_table_roundtrips_and_gates() {
        let spec = WorkerJobSpec {
            job: "join".into(),
            params: vec![1, 2, 3],
            spool: "/tmp/spool".into(),
            num_reducers: 2,
            shuffle_mem_bytes: 1 << 20,
            spill_dir: "/tmp/spill".into(),
            telemetry_label: String::new(),
            datasets: vec![(0, 24), (1, 3)],
        };
        let back = match ToWorker::from_bytes(&ToWorker::Job(spec.clone()).to_bytes()).unwrap() {
            ToWorker::Job(s) => s,
            other => panic!("wrong frame: {other:?}"),
        };
        assert_eq!(back, spec);
        assert!(spec.admits_dataset(0));
        assert!(spec.admits_dataset(1));
        assert!(!spec.admits_dataset(2));
        // Legacy single-input spec: empty table admits only dataset 0.
        let legacy = WorkerJobSpec {
            datasets: vec![],
            ..spec
        };
        assert!(legacy.admits_dataset(0));
        assert!(!legacy.admits_dataset(1));
    }

    #[test]
    fn frame_tags_are_validated() {
        assert!(ToWorker::from_bytes(&[9]).is_err());
        assert!(FromWorker::from_bytes(&[9]).is_err());
        assert!(WireJobError::from_bytes(&[3, 0, 0, 0, 0]).is_err());
    }
}
