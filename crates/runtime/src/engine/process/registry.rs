//! The worker process side of the backend: a by-name job registry and
//! the [`worker_main`] frame loop a worker binary runs.
//!
//! Closures cannot cross a process boundary, so process-backend jobs
//! are **named**: a worker binary registers each job's mapper under a
//! string name (plus a params decoder), and the parent ships only the
//! name and an opaque params blob in the
//! [`WorkerJobSpec`](super::wire::WorkerJobSpec). Both sides of a job
//! must agree on the item/key/value `Wire` encodings — in practice the
//! worker binary lives in the same crate as the code submitting the
//! job, so the types are literally shared.

use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use approxhadoop_dfs::{BlockId, FileStore};
use approxhadoop_ipc::{read_frame, write_frame, Decoder, Wire};
use approxhadoop_obs::{DeltaCursor, Obs};

use crate::fault::FaultDecision;
use crate::input::{sample_systematic_indices, DatasetId};
use crate::mapper::{MapTaskContext, Mapper};
use crate::types::{fx_hash, Partitioner, TaskId};

use super::spill::SpillShuffle;
use super::wire::{FromWorker, ToWorker, WireJobError, WireMapStats, WireWorkItem, WorkerJobSpec};

/// Kill flags of in-flight attempts, shared with the frame-reader
/// thread and keyed by `(task, attempt)`.
type KillMap = Arc<Mutex<HashMap<(u64, u32), Arc<AtomicBool>>>>;

/// Map-output chunks are flushed to the pipe at roughly this size.
const CHUNK_BYTES: usize = 1 << 20;

/// The per-job environment a worker builds from its
/// [`WorkerJobSpec`](super::wire::WorkerJobSpec).
struct WorkerEnv {
    spool: FileStore,
    num_reducers: usize,
    shuffle_mem_bytes: usize,
    spill_dir: PathBuf,
    datasets: Vec<(u32, u64)>,
    telemetry: Option<WorkerTelemetry>,
}

impl WorkerEnv {
    /// Whether a work item tagged `dataset` is admitted by the job
    /// spec's dataset table (an empty table admits only dataset 0).
    fn admits_dataset(&self, dataset: u32) -> bool {
        if self.datasets.is_empty() {
            dataset == 0
        } else {
            self.datasets.iter().any(|&(d, _)| d == dataset)
        }
    }
}

/// The worker's own observability context, present when the job spec
/// carried a non-empty `telemetry_label`. Counters accumulate in the
/// local registry and flow back as high-water-marked deltas; spans
/// accumulate in the local tracer ring and are drained per attempt.
struct WorkerTelemetry {
    obs: Arc<Obs>,
    cursor: Mutex<DeltaCursor>,
    label: String,
}

/// The worker process's single observability context.
///
/// [`Obs::shared`] creates a *fresh* context per call, so a job builder
/// and the frame loop's telemetry would otherwise hold two unrelated
/// registries — and builder-attached counters (e.g. a join mapper's
/// Bloom discard counts) would never reach the parent. Everything in a
/// worker binary that wants its metrics piggybacked to the parent's
/// registry must attach them here.
pub fn worker_obs() -> Arc<Obs> {
    static OBS: std::sync::OnceLock<Arc<Obs>> = std::sync::OnceLock::new();
    Arc::clone(OBS.get_or_init(Obs::shared))
}

/// Object-safe attempt runner; one per registered job, erased over the
/// job's item/key/value types.
trait RunnableJob: Send + Sync {
    fn run_attempt(
        &self,
        env: &WorkerEnv,
        work: &WireWorkItem,
        kill: &AtomicBool,
        send: &mut dyn FnMut(FromWorker) -> std::io::Result<()>,
    ) -> std::io::Result<()>;
}

type JobBuilder = Box<dyn Fn(&[u8]) -> Result<Box<dyn RunnableJob>, String> + Send + Sync>;

/// Maps job names to mapper builders inside a worker binary.
///
/// ```
/// use approxhadoop_runtime::engine::process::JobRegistry;
/// use approxhadoop_runtime::mapper::FnMapper;
///
/// let mut registry = JobRegistry::new();
/// registry.register("mod8-count", |_params: &[u8]| {
///     Ok(FnMapper::new(|v: &u32, emit: &mut dyn FnMut(u8, u64)| {
///         emit((*v % 8) as u8, 1)
///     }))
/// });
/// assert!(registry.contains("mod8-count"));
/// ```
#[derive(Default)]
pub struct JobRegistry {
    builders: HashMap<String, JobBuilder>,
}

impl JobRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `build` under `name`. The builder decodes the job's
    /// params blob into a mapper; its item, key and value types must
    /// implement [`Wire`] identically on the submitting side.
    pub fn register<I, M, F>(&mut self, name: &str, build: F)
    where
        I: Wire + Clone + Send + Sync + 'static,
        M: Mapper<Item = I> + 'static,
        M::Key: Wire,
        M::Value: Wire,
        F: Fn(&[u8]) -> Result<M, String> + Send + Sync + 'static,
    {
        self.builders.insert(
            name.to_string(),
            Box::new(move |params| {
                let mapper = build(params)?;
                Ok(Box::new(TypedJob { mapper }) as Box<dyn RunnableJob>)
            }),
        );
    }

    /// Whether `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.builders.contains_key(name)
    }

    fn build(&self, name: &str, params: &[u8]) -> Result<Box<dyn RunnableJob>, String> {
        match self.builders.get(name) {
            Some(b) => b(params),
            None => Err(format!("job {name:?} is not registered in this worker")),
        }
    }
}

struct TypedJob<M> {
    mapper: M,
}

impl<I, M> RunnableJob for TypedJob<M>
where
    I: Wire + Clone + Send + Sync + 'static,
    M: Mapper<Item = I>,
    M::Key: Wire,
    M::Value: Wire,
{
    /// Replicates `run_map_attempt` exactly — same fault decisions, same
    /// kill points, same panic containment, same metadata — with the
    /// shuffle buffer swapped for the spill-capable one and outputs
    /// shipped as chunked frames instead of channel sends.
    fn run_attempt(
        &self,
        env: &WorkerEnv,
        work: &WireWorkItem,
        kill: &AtomicBool,
        send: &mut dyn FnMut(FromWorker) -> std::io::Result<()>,
    ) -> std::io::Result<()> {
        let task = TaskId(work.task as usize);
        let fail = |send: &mut dyn FnMut(FromWorker) -> std::io::Result<()>,
                    error: WireJobError| {
            send(FromWorker::Failed {
                task: work.task,
                attempt: work.attempt,
                error,
            })
        };
        if kill.load(Ordering::SeqCst) {
            return send(FromWorker::Killed {
                task: work.task,
                attempt: work.attempt,
            });
        }
        // A work item tagged with a dataset the job spec never declared
        // means the parent and worker disagree about the dataset table.
        // That is a job error, not a worker crash: fail the attempt so
        // the parent's retry/degrade machinery sees it, instead of
        // aborting the process mid-job.
        if !env.admits_dataset(work.dataset) {
            return fail(
                send,
                WireJobError {
                    kind: 2,
                    what: format!(
                        "work item for {task} tagged {} but the job spec's dataset table does not admit it",
                        DatasetId(work.dataset)
                    ),
                },
            );
        }
        // Telemetry setup: stamp the attempt's epoch in the local
        // tracer's clock and discard spans left over from attempts that
        // failed before reporting (their kill/fail paths skip the
        // Telemetry frame), so nothing is misattributed.
        let attempt_epoch_us = env.telemetry.as_ref().map(|t| {
            let _ = t.obs.tracer.drain();
            t.obs
                .registry
                .counter("approx_worker_attempts_total", &[("job", &t.label)])
                .inc();
            t.obs.tracer.now_us()
        });
        let span = |name: &str, from_us: u64| {
            if let (Some(t), Some(_)) = (&env.telemetry, attempt_epoch_us) {
                let now = t.obs.tracer.now_us();
                t.obs.tracer.complete(
                    name,
                    "worker",
                    from_us,
                    now.saturating_sub(from_us).max(1),
                    0,
                    0,
                    None,
                    vec![],
                );
            }
        };
        let tracer_now = || {
            env.telemetry
                .as_ref()
                .map(|t| t.obs.tracer.now_us())
                .unwrap_or(0)
        };
        let decision = work
            .fault
            .as_ref()
            .map(|f| f.decide(work.task as usize, work.attempt))
            .unwrap_or(FaultDecision::None);
        if decision == FaultDecision::IoError {
            return fail(
                send,
                WireJobError {
                    kind: 0,
                    what: format!("input read of {} (attempt {})", task, work.attempt),
                },
            );
        }
        let t0 = Instant::now();
        let read_from_us = tracer_now();
        let (items, total_records) = match read_block(&env.spool, work) {
            Ok(r) => r,
            Err(what) => return fail(send, WireJobError { kind: 2, what }),
        };
        span("read block", read_from_us);
        let read_secs = t0.elapsed().as_secs_f64();
        let sampled_records = items.len() as u64;
        if let Some(t) = &env.telemetry {
            t.obs
                .registry
                .counter("approx_worker_records_total", &[("job", &t.label)])
                .add(sampled_records);
        }
        let num_reducers = env.num_reducers;
        let combiner = if work.combining {
            self.mapper.combiner()
        } else {
            None
        };
        let spill_dir = env
            .spill_dir
            .join(format!("attempt-{}-{}", work.task, work.attempt));
        let spill_counters = env.telemetry.as_ref().map(|t| {
            (
                t.obs
                    .registry
                    .counter("approx_process_spill_runs_total", &[("job", &t.label)]),
                t.obs
                    .registry
                    .counter("approx_process_spill_bytes_total", &[("job", &t.label)]),
            )
        });
        let map_from_us = tracer_now();
        let partitioner = Partitioner::new(num_reducers);
        // Same containment as the in-process attempt body: user map code
        // may panic, and the injected MapPanic fault panics on purpose.
        let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if decision == FaultDecision::MapPanic {
                panic!("injected map panic in {task}");
            }
            let mut shuffle =
                SpillShuffle::new(num_reducers, combiner, env.shuffle_mem_bytes, spill_dir);
            if let Some((runs, bytes)) = &spill_counters {
                shuffle = shuffle.with_counters(Arc::clone(runs), Arc::clone(bytes));
            }
            let mut emitted = 0u64;
            let mut spill_err: Option<String> = None;
            let ctx = MapTaskContext {
                task,
                dataset: DatasetId(work.dataset),
                sampling_ratio: work.sampling_ratio,
                attempt: work.attempt,
            };
            let mut state = self.mapper.begin_task(&ctx);
            let mut killed = false;
            for item in items {
                if kill.load(Ordering::Relaxed) {
                    killed = true;
                    break;
                }
                if spill_err.is_some() {
                    break;
                }
                self.mapper.map(&mut state, item, &mut |k, v| {
                    emitted += 1;
                    let h = fx_hash(&k);
                    let p = partitioner.partition_of_hash(h);
                    if spill_err.is_none() {
                        if let Err(e) = shuffle.emit(p, h, k, v) {
                            spill_err = Some(e);
                        }
                    }
                });
            }
            if !killed && spill_err.is_none() {
                self.mapper.end_task(state, &mut |k, v| {
                    emitted += 1;
                    let h = fx_hash(&k);
                    let p = partitioner.partition_of_hash(h);
                    if spill_err.is_none() {
                        if let Err(e) = shuffle.emit(p, h, k, v) {
                            spill_err = Some(e);
                        }
                    }
                });
            }
            (shuffle, emitted, killed, spill_err)
        }));
        let (mut shuffle, emitted, killed, spill_err) = match run {
            Ok(r) => r,
            Err(_) => {
                return fail(
                    send,
                    WireJobError {
                        kind: 1,
                        what: format!("user map code in {task}"),
                    },
                );
            }
        };
        if killed {
            return send(FromWorker::Killed {
                task: work.task,
                attempt: work.attempt,
            });
        }
        if let Some(what) = spill_err {
            return fail(send, WireJobError { kind: 2, what });
        }
        span("map+combine", map_from_us);
        let drain_from_us = tracer_now();
        // Drain the (possibly spilled) buffer into chunked Output
        // frames: one partition at a time, flushing ~1 MiB of encoded
        // pairs per frame so a huge shuffle never materialises in the
        // worker.
        let mut shuffled = 0u64;
        let mut chunk: Vec<u8> = Vec::new();
        let mut chunk_partition = 0usize;
        let mut io_err: Option<std::io::Error> = None;
        let drained = shuffle.drain(|p, k, v| {
            if p != chunk_partition && !chunk.is_empty() {
                let pairs = std::mem::take(&mut chunk);
                if let Err(e) = send(FromWorker::Output {
                    task: work.task,
                    attempt: work.attempt,
                    partition: chunk_partition as u32,
                    pairs,
                }) {
                    io_err = Some(e);
                    return Err("pipe closed".into());
                }
            }
            chunk_partition = p;
            k.encode(&mut chunk);
            v.encode(&mut chunk);
            shuffled += 1;
            if chunk.len() >= CHUNK_BYTES {
                let pairs = std::mem::take(&mut chunk);
                if let Err(e) = send(FromWorker::Output {
                    task: work.task,
                    attempt: work.attempt,
                    partition: p as u32,
                    pairs,
                }) {
                    io_err = Some(e);
                    return Err("pipe closed".into());
                }
            }
            Ok(())
        });
        if let Some(e) = io_err {
            return Err(e);
        }
        let report = match drained {
            Ok(r) => r,
            Err(what) => return fail(send, WireJobError { kind: 2, what }),
        };
        if !chunk.is_empty() {
            send(FromWorker::Output {
                task: work.task,
                attempt: work.attempt,
                partition: chunk_partition as u32,
                pairs: chunk,
            })?;
        }
        span("drain shuffle", drain_from_us);
        // Telemetry rides between the last Output chunk and the Done
        // frame; span timestamps are re-based to the attempt epoch so
        // the parent can graft them into the task-attempt span's window
        // regardless of clock skew.
        if let Some(tel) = &env.telemetry {
            let epoch = attempt_epoch_us.unwrap_or(0);
            let counters = tel
                .obs
                .registry
                .counter_deltas(&mut tel.cursor.lock().expect("cursor poisoned"))
                .into_iter()
                .map(|d| (d.name, d.labels, d.delta))
                .collect();
            let spans = tel
                .obs
                .tracer
                .drain()
                .into_iter()
                .filter(|e| e.phase == 'X')
                .map(|e| (e.name, e.category, e.ts_us.saturating_sub(epoch), e.dur_us))
                .collect();
            send(FromWorker::Telemetry {
                task: work.task,
                attempt: work.attempt,
                counters,
                spans,
            })?;
        }
        send(FromWorker::Done {
            attempt: work.attempt,
            stats: WireMapStats {
                task: work.task,
                dataset: work.dataset,
                total_records,
                sampled_records,
                emitted,
                shuffled,
                duration_secs: t0.elapsed().as_secs_f64(),
                read_secs,
            },
            spill_runs: report.runs,
            spill_bytes: report.bytes,
        })
    }
}

/// Decodes the attempt's block from the spool and applies systematic
/// sampling with the same `(total, ratio, seed)` draw as the in-process
/// input sources, so every backend processes the identical sample.
fn read_block<I: Wire + Clone>(
    spool: &FileStore,
    work: &WireWorkItem,
) -> Result<(Vec<I>, u64), String> {
    let id = BlockId(work.task);
    let buf = spool
        .slice(id)
        .ok_or_else(|| format!("spool has no block for task {}", work.task))?;
    let total = spool
        .records(id)
        .ok_or_else(|| format!("spool has no record count for task {}", work.task))?;
    let mut d = Decoder::new(buf);
    let mut items = Vec::with_capacity(total as usize);
    for _ in 0..total {
        items.push(I::decode(&mut d).map_err(|e| format!("spool block corrupt: {e}"))?);
    }
    d.finish()
        .map_err(|e| format!("spool block has trailing bytes: {e}"))?;
    match sample_systematic_indices(total as usize, work.sampling_ratio, work.seed) {
        None => Ok((items, total)),
        Some(idx) => {
            let sampled = idx
                .into_iter()
                .map(|i| {
                    items
                        .get(i)
                        .cloned()
                        .ok_or_else(|| format!("sample index {i} out of range"))
                })
                .collect::<Result<Vec<I>, String>>()?;
            Ok((sampled, total))
        }
    }
}

/// Runs the worker frame loop against the process's stdin/stdout until
/// the parent sends `Shutdown` or closes the pipe, then exits the
/// process. This is the entire body of a worker binary's `main`:
///
/// ```no_run
/// use approxhadoop_runtime::engine::process::{worker_main, JobRegistry};
///
/// let mut registry = JobRegistry::new();
/// // registry.register(...)
/// worker_main(registry);
/// ```
pub fn worker_main(registry: JobRegistry) -> ! {
    let code = worker_loop(
        registry,
        BufReader::new(std::io::stdin()),
        BufWriter::new(std::io::stdout()),
    );
    std::process::exit(code)
}

/// The loop behind [`worker_main`], testable over arbitrary streams.
/// Returns the process exit code.
fn worker_loop<R, W>(registry: JobRegistry, reader: R, writer: W) -> i32
where
    R: Read + Send + 'static,
    W: Write + Send + 'static,
{
    let mut reader = reader;
    let spec: WorkerJobSpec = match read_frame(&mut reader) {
        Ok(Some(frame)) => match ToWorker::from_bytes(&frame) {
            Ok(ToWorker::Job(spec)) => spec,
            _ => {
                eprintln!("approx-worker: first frame was not a Job spec");
                return 1;
            }
        },
        _ => return 1,
    };
    let job = match registry.build(&spec.job, &spec.params) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("approx-worker: {e}");
            return 1;
        }
    };
    let spool = match FileStore::open(Path::new(&spec.spool)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("approx-worker: {e}");
            return 1;
        }
    };
    let env = WorkerEnv {
        spool,
        num_reducers: spec.num_reducers as usize,
        shuffle_mem_bytes: spec.shuffle_mem_bytes as usize,
        spill_dir: PathBuf::from(&spec.spill_dir),
        datasets: spec.datasets.clone(),
        telemetry: if spec.telemetry_label.is_empty() {
            None
        } else {
            Some(WorkerTelemetry {
                obs: worker_obs(),
                cursor: Mutex::new(DeltaCursor::new()),
                label: spec.telemetry_label.clone(),
            })
        },
    };

    let writer = Arc::new(Mutex::new(writer));
    let send_frame = |fw: &FromWorker| -> std::io::Result<()> {
        let mut w = writer.lock().expect("writer poisoned");
        write_frame(&mut *w, &fw.to_bytes()).map_err(std::io::Error::other)?;
        w.flush()
    };
    if send_frame(&FromWorker::Ready).is_err() {
        return 1;
    }

    // Kill frames must land while an attempt is running, so frame
    // reading happens on a side thread: it forwards Work to the main
    // thread over a channel and flips kill flags in place. Shutdown and
    // pipe EOF exit the process immediately — the parent has already
    // discarded this worker's in-flight work.
    let kills: KillMap = Arc::new(Mutex::new(HashMap::new()));
    let (work_tx, work_rx) = std::sync::mpsc::channel::<(WireWorkItem, Arc<AtomicBool>)>();
    let reader_kills = Arc::clone(&kills);
    std::thread::spawn(move || loop {
        match read_frame(&mut reader) {
            Ok(Some(frame)) => match ToWorker::from_bytes(&frame) {
                Ok(ToWorker::Work(work)) => {
                    let kill = Arc::new(AtomicBool::new(false));
                    reader_kills
                        .lock()
                        .expect("kills poisoned")
                        .insert((work.task, work.attempt), Arc::clone(&kill));
                    if work_tx.send((work, kill)).is_err() {
                        std::process::exit(1);
                    }
                }
                Ok(ToWorker::Kill { task, attempt }) => {
                    if let Some(flag) = reader_kills
                        .lock()
                        .expect("kills poisoned")
                        .get(&(task, attempt))
                    {
                        flag.store(true, Ordering::SeqCst);
                    }
                }
                Ok(ToWorker::Shutdown) | Ok(ToWorker::Job(_)) => std::process::exit(0),
                Err(e) => {
                    eprintln!("approx-worker: corrupt frame: {e}");
                    std::process::exit(1);
                }
            },
            Ok(None) => std::process::exit(0),
            Err(e) => {
                eprintln!("approx-worker: pipe error: {e}");
                std::process::exit(1);
            }
        }
    });

    for (work, kill) in work_rx {
        let key = (work.task, work.attempt);
        let result = job.run_attempt(&env, &work, &kill, &mut |fw| send_frame(&fw));
        kills.lock().expect("kills poisoned").remove(&key);
        if result.is_err() {
            // The parent end of the pipe is gone; nothing left to serve.
            return 1;
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapper::FnMapper;

    #[test]
    fn registry_builds_registered_jobs_only() {
        let mut r = JobRegistry::new();
        r.register("count", |_p: &[u8]| {
            Ok(FnMapper::new(|v: &u32, emit: &mut dyn FnMut(u8, u64)| {
                emit((*v % 8) as u8, 1)
            }))
        });
        assert!(r.contains("count"));
        assert!(!r.contains("other"));
        assert!(r.build("count", &[]).is_ok());
        assert!(r.build("other", &[]).is_err());
    }

    #[test]
    fn builder_params_errors_propagate() {
        let mut r = JobRegistry::new();
        r.register("strict", |p: &[u8]| {
            if p.is_empty() {
                return Err("params required".to_string());
            }
            Ok(FnMapper::new(|v: &u32, emit: &mut dyn FnMut(u8, u64)| {
                emit(0, *v as u64)
            }))
        });
        assert!(r.build("strict", &[]).is_err());
        assert!(r.build("strict", &[1]).is_ok());
    }
}
